"""CI smoke: zero-downtime reload under live load (DESIGN.md §13).

End-to-end over real processes and sockets:

1. Start ``repro serve`` as a subprocess on a temp catalog.
2. Attach one live subscriber and a steady closed-loop query stream.
3. Overwrite the catalog entry from *outside* the server (as a second
   process would), then reload it with the ``repro reload`` CLI verb
   while the stream keeps running.
4. Assert the contract: **zero dropped queries** (every request before,
   during, and after the swap is served — no retries configured, so a
   single shed or error fails the run), the subscriber receives its
   epoch-boundary delta **exactly once** with the exact set difference
   (no lost, no duplicated events), and post-reload queries serve the
   new graph.
5. ``repro drain`` stops the server; both verbs must exit 0 and the
   server process itself must exit 0.

The server's stdout/stderr land in ``reload-smoke-server.log`` (the CI
job uploads it when the smoke fails).  Exit 0 = pass, 1 = any broken
invariant.

Run: ``PYTHONPATH=src python scripts/reload_under_load_smoke.py``
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
for entry in (str(SRC), str(ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.graph.builder import graph_from_adjacency  # noqa: E402
from repro.service.catalog import GraphCatalog  # noqa: E402
from repro.service.client import ServiceClient, ServiceUnavailable  # noqa: E402

LOG_PATH = ROOT / "reload-smoke-server.log"
QUERY_SECONDS = 6.0  # how long the steady stream runs in total

AB_V1 = {(0, 1), (2, 1)}
AB_V2 = {(0, 1), (2, 1), (2, 3)}


def world_v1():
    return graph_from_adjacency(
        ["A", "B", "A", "C", "D", "C"],
        [(0, 1), (1, 2), (3, 4), (4, 5)],
    )


def world_v2():
    return graph_from_adjacency(
        ["A", "B", "A", "B"],
        [(0, 1), (1, 2), (2, 3)],
    )


def ab_query():
    return graph_from_adjacency(["A", "B"], [(0, 1)])


def cli(*args, timeout=60):
    """Run a ``repro`` CLI verb; returns (returncode, stdout, stderr)."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=timeout,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    return proc.returncode, proc.stdout, proc.stderr


class QueryStream:
    """Closed-loop query thread; any shed/error/drop fails the smoke."""

    def __init__(self, port: int) -> None:
        self.port = port
        self.served = 0
        self.failures = []
        self.epochs_seen = set()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        query = ab_query()
        with ServiceClient(port=self.port, timeout=60) as client:
            while not self._stop.is_set():
                try:
                    reply = client.query(query, "g", cache=False)
                except Exception as exc:  # noqa: BLE001 - any drop fails
                    self.failures.append(repr(exc))
                    return
                got = set(reply.embeddings)
                if got == AB_V1:
                    self.epochs_seen.add("v1")
                elif got == AB_V2:
                    self.epochs_seen.add("v2")
                else:
                    self.failures.append(f"mixed-epoch result {sorted(got)}")
                    return
                self.served += 1
                time.sleep(0.005)

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=30)


def fail(message: str) -> int:
    print(f"FAIL: {message}")
    print(f"server log: {LOG_PATH}")
    return 1


def run_smoke(root: Path) -> int:
    GraphCatalog(root).add("g", world_v1())

    log = LOG_PATH.open("w", encoding="utf-8")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--root", str(root),
         "--port", "0", "--drain-timeout", "15"],
        stdout=subprocess.PIPE, stderr=log, text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    try:
        banner = proc.stdout.readline()
        log.write(banner)
        log.flush()
        if not banner:
            return fail("server printed no banner")
        port = int(banner.rsplit(":", 1)[1])

        with ServiceClient(port=port, timeout=60) as subscriber:
            sub = subscriber.subscribe(ab_query(), "g")
            if set(sub.embeddings) != AB_V1:
                return fail(f"bad initial standing set {sub.embeddings}")

            stream = QueryStream(port)
            stream.start()
            time.sleep(QUERY_SECONDS / 3)  # steady state on epoch 1

            # The "other process" changes the entry on disk...
            GraphCatalog(root).add("g", world_v2(), overwrite=True)
            code, out, err = cli("reload", "127.0.0.1", str(port))
            if code != 0:
                return fail(f"repro reload exited {code}: {err.strip()}")
            if "g: reloaded" not in out:
                return fail(f"unexpected reload report: {out.strip()}")
            print(out.strip())

            time.sleep(QUERY_SECONDS / 3)  # steady state on epoch 2
            stream.stop()
            if stream.failures:
                return fail(
                    f"query stream dropped a request: {stream.failures[0]} "
                    f"(after {stream.served} served)"
                )
            if stream.epochs_seen != {"v1", "v2"}:
                return fail(
                    f"stream saw epochs {sorted(stream.epochs_seen)}; "
                    "expected clean v1 -> v2 handoff"
                )
            print(
                f"query stream: {stream.served} served, 0 dropped, "
                "epochs v1 -> v2"
            )

            # Exactly one boundary delta: the exact set difference, once.
            event = subscriber.next_event(timeout=30)
            if event.get("event") != "delta" or not event.get("reload"):
                return fail(f"expected one reload delta, got {event}")
            replayed = (
                AB_V1 - set(event["removed"])
            ) | set(event["added"])
            if replayed != AB_V2:
                return fail(f"boundary delta is not exact: {event}")
            try:
                extra = subscriber.next_event(timeout=1.0)
            except ServiceUnavailable:
                pass  # no second event — exactly-once holds
            else:
                return fail(f"duplicate subscription event: {extra}")
            print("subscriber: exactly one exact boundary delta")

        code, out, err = cli("drain", "127.0.0.1", str(port))
        if code != 0:
            return fail(f"repro drain exited {code}: {err.strip()}")
        print(out.strip())

        stdout, _ = proc.communicate(timeout=60)
        log.write(stdout)
        log.flush()
        if proc.returncode != 0:
            return fail(f"server exited {proc.returncode}")
        print("PASS: reload under load (0 dropped, exactly-once replay)")
        return 0
    finally:
        log.close()
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-reload-smoke-") as tmp:
        return run_smoke(Path(tmp) / "catalog")


if __name__ == "__main__":
    raise SystemExit(main())
