"""CI smoke: query a live server, then scrape and reconcile /metrics.

Starts a real :class:`MatchingServer` over a throwaway catalog with a
path-backed structured request log, drives a query round-trip through
:class:`ServiceClient`, and then checks the observability surfaces:

* the ``metrics`` op and a raw HTTP ``GET /metrics`` on the same port
  return the same exposition (modulo scrape-time gauges);
* every required metric family is present;
* the ``stats`` op's server counters equal their ``/metrics``
  counterparts (reconciliation-by-construction, spot-checked end to
  end);
* the request log holds a ``query`` line whose trace id matches the
  one the reply header carried;
* one ``explain="analyze"`` round-trip returns the attribution report,
  and the Chrome trace exported from that request's span records is
  well-formed: every span's parent exists, the single root is the
  client attempt, and the procpool worker spans nest under the
  ``engine.search`` phase span.

Exits nonzero with a message on the first violated check.  The request
log is written to ``service-smoke-requests.jsonl`` and the trace
export to ``service-smoke-trace.json`` in the working directory so CI
can upload them as artifacts when this script fails.

Run: ``PYTHONPATH=src python scripts/service_smoke_scrape.py``
"""

from __future__ import annotations

import json
import socket
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.graph.builder import graph_from_adjacency  # noqa: E402
from repro.obs import Observability, StructuredLog, parse_exposition  # noqa: E402
from repro.obs.spans import (  # noqa: E402
    build_chrome_trace,
    spans_for_trace,
    validate_span_tree,
)
from repro.service.catalog import GraphCatalog  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.server import ServerThread  # noqa: E402

LOG_PATH = "service-smoke-requests.jsonl"
TRACE_PATH = "service-smoke-trace.json"

REQUIRED_FAMILIES = (
    "repro_server_queries_total",
    "repro_server_served_total",
    "repro_server_rejected_total",
    "repro_server_errors_total",
    "repro_server_events_dropped_total",
    "repro_server_phase_seconds_bucket",
    "repro_server_phase_seconds_count",
    "repro_server_request_seconds_count",
    "repro_server_active",
    "repro_server_capacity",
    "repro_catalog_engine_hits_total",
    "repro_catalog_engine_misses_total",
    "repro_pool_respawns_total",
    "repro_qcache_hits_total",
    "repro_qcache_misses_total",
)

# stats-op server counter -> metric family name
RECONCILED = {
    "queries": "repro_server_queries_total",
    "served": "repro_server_served_total",
    "rejected": "repro_server_rejected_total",
    "errors": "repro_server_errors_total",
    "events_dropped": "repro_server_events_dropped_total",
}


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def http_get(host: str, port: int, path: str) -> str:
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(f"GET {path} HTTP/1.0\r\n\r\n".encode("ascii"))
        raw = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            raw += chunk
    head, _, body = raw.partition(b"\r\n\r\n")
    status = head.split(b"\r\n", 1)[0].decode("ascii", "replace")
    if " 200 " not in f" {status} ":
        fail(f"GET {path}: expected 200, got {status!r}")
    return body.decode("utf-8")


def main() -> int:
    data = graph_from_adjacency(
        ["A", "B", "A", "C", "D", "C"],
        [(0, 1), (1, 2), (3, 4), (4, 5)],
    )
    query = graph_from_adjacency(["A", "B"], [(0, 1)])
    Path(LOG_PATH).unlink(missing_ok=True)
    Path(TRACE_PATH).unlink(missing_ok=True)
    obs = Observability(log=StructuredLog(path=LOG_PATH))

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        GraphCatalog(tmp).add("g", data)
        with ServerThread(GraphCatalog(tmp), obs=obs) as thread:
            host, port = thread.address
            # The client shares the server's path-backed log so its
            # client.attempt span lands in the same file the server's
            # phase spans do — the export below must see one tree.
            with ServiceClient(host, port, log=obs.log) as client:
                reply = client.query(query, "g")
                if reply.num_embeddings != 2:
                    fail(f"expected 2 embeddings, got {reply.num_embeddings}")
                if not reply.trace:
                    fail("reply header carried no trace id")
                analyzed = client.query(
                    query, "g", workers=2, cache=False, explain="analyze"
                )
                if analyzed.num_embeddings != 2:
                    fail(
                        "analyze changed the result: "
                        f"{analyzed.num_embeddings} embeddings"
                    )
                if not analyzed.explain or \
                        analyzed.explain.get("mode") != "analyze":
                    fail(f"no analyze report in reply: {analyzed.explain!r}")
                stats = client.stats()
                op_text = client.metrics()
            http_text = http_get(host, port, "/metrics")
            health = http_get(host, port, "/healthz")

    if '"status"' not in health:
        fail(f"/healthz returned no status: {health[:200]!r}")

    for text, surface in ((op_text, "metrics op"), (http_text, "GET /metrics")):
        families = {name for name, _ in parse_exposition(text)}
        missing = [f for f in REQUIRED_FAMILIES if f not in families]
        if missing:
            fail(f"{surface} is missing families: {missing}")

    exposed = parse_exposition(http_text)
    flat = {}
    for (name, labels), value in exposed.items():
        flat[name] = flat.get(name, 0) + value
    for counter, family in RECONCILED.items():
        if stats["server"][counter] != flat.get(family):
            fail(
                f"stats server.{counter}={stats['server'][counter]} but "
                f"{family}={flat.get(family)}"
            )

    records = StructuredLog(path=LOG_PATH).read_records()
    served = [
        r for r in records
        if r.get("event") == "query" and r.get("outcome") == "served"
    ]
    if not served:
        fail(f"no served query line in {LOG_PATH} ({len(records)} records)")
    if served[0].get("trace") != reply.trace:
        fail(
            f"log trace {served[0].get('trace')} != header trace "
            f"{reply.trace}"
        )

    spans = spans_for_trace(records, analyzed.trace)
    problems = validate_span_tree(spans)
    if problems:
        fail(f"span tree for trace {analyzed.trace}: {problems}")
    by_id = {r["span"]: r for r in spans}
    roots = [r for r in spans if r.get("parent") is None]
    if roots[0].get("name") != "client.attempt":
        fail(f"trace root is {roots[0].get('name')}, not client.attempt")
    search = [r for r in spans if r.get("name") == "engine.search"]
    if len(search) != 1:
        fail(f"expected one engine.search span, got {len(search)}")
    workers = [r for r in spans if r.get("name") == "worker.task"]
    if not workers:
        fail("no worker.task spans despite workers=2")
    for record in workers:
        if record.get("parent") != search[0]["span"]:
            fail(
                f"worker span {record['span']} parents under "
                f"{by_id.get(record.get('parent'), {}).get('name')}, "
                "not engine.search"
            )

    export = build_chrome_trace(spans)
    Path(TRACE_PATH).write_text(
        json.dumps(export, indent=2) + "\n", encoding="utf-8"
    )
    parsed = json.loads(Path(TRACE_PATH).read_text(encoding="utf-8"))
    if len(parsed.get("traceEvents", [])) != len(spans):
        fail(
            f"{TRACE_PATH} holds {len(parsed.get('traceEvents', []))} "
            f"events for {len(spans)} spans"
        )

    print(
        f"ok: {len(REQUIRED_FAMILIES)} families on both surfaces, "
        f"{len(RECONCILED)} counters reconciled, trace {reply.trace} "
        f"in {LOG_PATH}, {len(spans)} spans ({len(workers)} worker tasks) "
        f"exported to {TRACE_PATH}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
