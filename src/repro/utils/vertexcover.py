"""Vertex cover routines.

Two users in this repository:

* :func:`approx_vertex_cover` — the textbook 2-approximation (repeatedly
  take an uncovered edge and add both endpoints).  The VC matching order
  seeds itself with a cover of the query graph.
* :func:`constrained_vertex_cover` — Algorithm 1, line 5 of the paper:
  find a vertex cover ``S`` of the reservation graph ``G_R`` such that
  ``|S| <= size_limit`` and ``S`` stays *matchable* (Lemma 3.7) at every
  step.  Matchability is anti-monotone (supersets of an unmatchable set
  stay unmatchable), so a greedy that keeps the invariant and fails early
  is sound.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

Edge = Tuple[Hashable, Hashable]


def approx_vertex_cover(edges: Iterable[Edge]) -> Set[Hashable]:
    """Classic 2-approximate vertex cover.

    Iterates the edges in the given order; whenever an edge is uncovered,
    both endpoints join the cover.
    """
    cover: Set[Hashable] = set()
    for a, b in edges:
        if a not in cover and b not in cover:
            cover.add(a)
            cover.add(b)
    return cover


def constrained_vertex_cover(
    edges: Iterable[Edge],
    size_limit: Optional[int],
    is_admissible: Callable[[FrozenSet[Hashable]], bool],
) -> Optional[Set[Hashable]]:
    """Greedy vertex cover under a size cap and an admissibility predicate.

    Walks the edges once.  For each uncovered edge ``(a, b)`` it tries, in
    order: adding only ``a``, adding only ``b``, adding both endpoints —
    accepting the first choice whose resulting set ``is_admissible`` and
    within ``size_limit``.  Returns ``None`` when the edge cannot be
    covered admissibly (the reservation guard candidate is then undefined
    for this forward neighbor, Definition 3.9).

    Preferring single endpoints departs from the textbook both-endpoints
    2-approximation the paper cites, but produces smaller covers in
    practice — and smaller reservation guards are matched by more partial
    embeddings (§3.2.2's own design goal).  Soundness only needs *a*
    vertex cover, which every accepted choice maintains.

    ``size_limit=None`` means unbounded (the paper's ``r = inf``).

    The predicate must be anti-monotone in the set argument (true sets
    stay true for subsets); Lemma 3.7 matchability satisfies this because
    both failure conditions are existential over elements/subsets of S.
    """
    cover: Set[Hashable] = set()
    for a, b in edges:
        if a in cover or b in cover:
            continue
        placed = False
        for addition in ((a,), (b,), (a, b)):
            candidate = cover.union(addition)
            if size_limit is not None and len(candidate) > size_limit:
                continue
            if is_admissible(frozenset(candidate)):
                cover = candidate
                placed = True
                break
        if not placed:
            return None
    return cover


def exact_vertex_cover(edges: List[Edge], max_size: int) -> Optional[Set[Hashable]]:
    """Smallest vertex cover up to ``max_size`` by bounded branching.

    Exponential in ``max_size`` only; used by tests as an oracle and by
    the VC matching order on (small) query graphs.
    """
    remaining = [tuple(e) for e in edges]

    def solve(uncovered: List[Edge], budget: int) -> Optional[Set[Hashable]]:
        if not uncovered:
            return set()
        if budget == 0:
            return None
        a, b = uncovered[0]
        best: Optional[Set[Hashable]] = None
        for pick in (a, b):
            rest = [e for e in uncovered if pick not in e]
            sub = solve(rest, budget - 1)
            if sub is not None:
                sub = sub | {pick}
                if best is None or len(sub) < len(best):
                    best = sub
        return best

    for budget in range(max_size + 1):
        result = solve(remaining, budget)
        if result is not None:
            return result
    return None
