"""Wall-clock helpers: stopwatches and soft deadlines.

The paper's harness kills a query after a per-query time limit and a
query-set after a per-subgroup budget (§4.1).  Backtracking cannot be
preempted from outside in pure Python, so matchers poll a
:class:`Deadline` every few thousand recursions.
"""

from __future__ import annotations

import time
from typing import Optional


class Stopwatch:
    """Simple monotonic stopwatch.

    >>> sw = Stopwatch()
    >>> sw.elapsed() >= 0.0
    True
    """

    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def restart(self) -> None:
        """Reset the start time to now."""
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction or the last :meth:`restart`."""
        return time.perf_counter() - self._start


class Deadline:
    """A soft deadline polled cooperatively by long-running searches.

    ``Deadline(None)`` never expires.  ``check_every`` controls how many
    :meth:`poll` calls are skipped between actual clock reads, keeping the
    cost negligible inside hot loops.
    """

    __slots__ = ("_expires_at", "_check_every", "_countdown", "_expired")

    def __init__(self, seconds: Optional[float], check_every: int = 2048) -> None:
        if seconds is None:
            self._expires_at: Optional[float] = None
        else:
            self._expires_at = time.perf_counter() + seconds
        self._check_every = max(1, check_every)
        self._countdown = self._check_every
        self._expired = False

    @property
    def expired(self) -> bool:
        """Whether a past :meth:`poll` observed expiry (sticky)."""
        return self._expired

    def poll(self) -> bool:
        """Cheaply check the deadline; returns ``True`` once expired."""
        if self._expired:
            return True
        if self._expires_at is None:
            return False
        self._countdown -= 1
        if self._countdown > 0:
            return False
        self._countdown = self._check_every
        if time.perf_counter() >= self._expires_at:
            self._expired = True
        return self._expired

    def check_now(self) -> bool:
        """Force an immediate clock read (used at recursion entry points)."""
        if self._expired:
            return True
        if self._expires_at is None:
            return False
        if time.perf_counter() >= self._expires_at:
            self._expired = True
        return self._expired

    def remaining(self) -> Optional[float]:
        """Seconds left, or ``None`` for a non-expiring deadline."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - time.perf_counter())
