"""Bitmask helpers over query-vertex sets.

GuP's complexity analysis (§3.6) assumes a query-vertex set fits in a
machine word and supports O(1) union/intersection.  Python ints give us
exactly that (arbitrary width, C-speed bit ops), so masks, bounding sets,
and nogood domains are all plain ``int`` bitmasks where bit ``i`` stands
for query vertex ``u_i``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.utils.words import EmptyMaskError

__all__ = [
    "EmptyMaskError",
    "mask_of",
    "mask_below",
    "iter_bits",
    "bits_of",
    "bit_count",
    "highest_bit",
    "lowest_bit",
]


def mask_of(vertices: Iterable[int]) -> int:
    """Bitmask with a bit set for each query-vertex id in ``vertices``."""
    mask = 0
    for v in vertices:
        mask |= 1 << v
    return mask


def mask_below(i: int) -> int:
    """Bitmask of all query vertices with id < ``i`` (the paper's ``[:i]``)."""
    return (1 << i) - 1


def iter_bits(mask: int) -> Iterator[int]:
    """Iterate over set bit positions in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bits_of(mask: int) -> List[int]:
    """Set bit positions as a list (ascending)."""
    return list(iter_bits(mask))


def bit_count(mask: int) -> int:
    """Number of set bits (population count)."""
    return mask.bit_count()


def highest_bit(mask: int) -> int:
    """Position of the highest set bit.

    Raises :class:`EmptyMaskError` on the zero mask — the same typed
    error the words backend raises, so the "no such bit" case is
    representation-independent instead of a sentinel in one backend and
    an exception in the other.
    """
    if mask == 0:
        raise EmptyMaskError("highest_bit of the zero mask")
    return mask.bit_length() - 1


def lowest_bit(mask: int) -> int:
    """Position of the lowest set bit.

    Raises :class:`EmptyMaskError` on the zero mask (see
    :func:`highest_bit`).
    """
    if mask == 0:
        raise EmptyMaskError("lowest_bit of the zero mask")
    return (mask & -mask).bit_length() - 1
