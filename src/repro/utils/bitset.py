"""Bitmask helpers over query-vertex sets.

GuP's complexity analysis (§3.6) assumes a query-vertex set fits in a
machine word and supports O(1) union/intersection.  Python ints give us
exactly that (arbitrary width, C-speed bit ops), so masks, bounding sets,
and nogood domains are all plain ``int`` bitmasks where bit ``i`` stands
for query vertex ``u_i``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List


def mask_of(vertices: Iterable[int]) -> int:
    """Bitmask with a bit set for each query-vertex id in ``vertices``."""
    mask = 0
    for v in vertices:
        mask |= 1 << v
    return mask


def mask_below(i: int) -> int:
    """Bitmask of all query vertices with id < ``i`` (the paper's ``[:i]``)."""
    return (1 << i) - 1


def iter_bits(mask: int) -> Iterator[int]:
    """Iterate over set bit positions in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bits_of(mask: int) -> List[int]:
    """Set bit positions as a list (ascending)."""
    return list(iter_bits(mask))


def bit_count(mask: int) -> int:
    """Number of set bits (population count)."""
    return mask.bit_count()


def highest_bit(mask: int) -> int:
    """Position of the highest set bit; -1 for the empty mask."""
    return mask.bit_length() - 1


def lowest_bit(mask: int) -> int:
    """Position of the lowest set bit; -1 for the empty mask."""
    if mask == 0:
        return -1
    return (mask & -mask).bit_length() - 1
