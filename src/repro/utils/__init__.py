"""Small shared utilities: query-vertex bitmasks, timers, vertex cover."""

from repro.utils.bitset import (
    bit_count,
    bits_of,
    iter_bits,
    mask_below,
    mask_of,
)
from repro.utils.timer import Deadline, Stopwatch
from repro.utils.vertexcover import approx_vertex_cover, constrained_vertex_cover

__all__ = [
    "Deadline",
    "Stopwatch",
    "approx_vertex_cover",
    "bit_count",
    "bits_of",
    "constrained_vertex_cover",
    "iter_bits",
    "mask_below",
    "mask_of",
]
