"""Counting injective assignments (systems of distinct representatives).

Used by DAF-style leaf decomposition: once only degree-1 query leaves
remain, the number of completions of a partial embedding equals the
number of ways to pick *distinct* data vertices, one from each leaf's
candidate set — the permanent of the leaf/candidate bipartite matrix.

For few leaves (the realistic case) we evaluate it exactly with the
Möbius inversion over the partition lattice:

    #injective = sum over set partitions P of the leaves of
                 prod_{block B in P} (-1)^(|B|-1) * (|B|-1)! * |inter_B|

where ``inter_B`` is the intersection of the block's candidate sets
(merging a block means forcing those leaves onto one shared vertex).
Bell(9) = 21147 terms at most; beyond ``exact_limit`` leaves we fall
back to plain backtracking counting.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence, Set


def _partitions(items: List[int]):
    """Yield all set partitions of ``items`` (each a list of lists)."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _partitions(rest):
        # first joins an existing block...
        for i in range(len(partition)):
            yield partition[:i] + [partition[i] + [first]] + partition[i + 1 :]
        # ...or opens its own.
        yield partition + [[first]]


def _factorial(n: int) -> int:
    out = 1
    for i in range(2, n + 1):
        out *= i
    return out


def _count_by_partitions(candidate_sets: Sequence[Set[int]]) -> int:
    indices = list(range(len(candidate_sets)))
    total = 0
    for partition in _partitions(indices):
        term = 1
        for block in partition:
            inter = set(candidate_sets[block[0]])
            for i in block[1:]:
                inter &= candidate_sets[i]
                if not inter:
                    break
            size = len(inter)
            if size == 0:
                term = 0
                break
            sign = -1 if (len(block) - 1) % 2 else 1
            term *= sign * _factorial(len(block) - 1) * size
        total += term
    return total


def _count_by_backtracking(candidate_sets: Sequence[Set[int]]) -> int:
    # Order by ascending candidate count: fail early.
    order = sorted(range(len(candidate_sets)), key=lambda i: len(candidate_sets[i]))
    used: Set[int] = set()

    def recurse(position: int) -> int:
        if position == len(order):
            return 1
        total = 0
        for v in candidate_sets[order[position]]:
            if v not in used:
                used.add(v)
                total += recurse(position + 1)
                used.discard(v)
        return total

    return recurse(0)


def count_injective_assignments(
    candidate_sets: Sequence[Set[int]],
    exact_limit: int = 8,
) -> int:
    """Number of ways to choose distinct representatives, one per set.

    Uses the partition-lattice formula up to ``exact_limit`` sets and
    backtracking beyond; both are exact — the limit only selects the
    cheaper evaluation.
    """
    if not candidate_sets:
        return 1
    if any(not s for s in candidate_sets):
        return 0
    if len(candidate_sets) <= exact_limit:
        return _count_by_partitions(candidate_sets)
    return _count_by_backtracking(candidate_sets)
