"""Bipartite matching via augmenting paths.

Two users:

* GraphQL's pseudo-matching filter — a candidate survives when the
  bipartite graph between query neighbors and data neighbors admits a
  matching saturating the query side;
* Lemma 3.7 condition (ii) — a reservation guard ``S`` is matchable only
  if no subset ``S'`` exceeds ``|C^{-1}(S')[:i]|``; by Hall's theorem this
  holds iff ``S`` can be matched into distinct earlier query vertices.

Left sides are tiny (query degrees / guard sizes), so the simple
O(V * E) augmenting-path routine is the right tool.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Sequence, Set


def has_saturating_matching(
    left: Sequence[Hashable],
    right_of: Callable[[Hashable], Iterable[Hashable]],
) -> bool:
    """Whether a matching saturating every ``left`` vertex exists.

    ``right_of(l)`` yields the right-side vertices available to ``l``.
    """
    match_right: Dict[Hashable, Hashable] = {}

    def augment(l: Hashable, visited: Set[Hashable]) -> bool:
        for r in right_of(l):
            if r in visited:
                continue
            visited.add(r)
            if r not in match_right or augment(match_right[r], visited):
                match_right[r] = l
                return True
        return False

    for l in left:
        if not augment(l, set()):
            return False
    return True


def maximum_matching_size(
    left: Sequence[Hashable],
    right_of: Callable[[Hashable], Iterable[Hashable]],
) -> int:
    """Size of a maximum matching (left side driven)."""
    match_right: Dict[Hashable, Hashable] = {}

    def augment(l: Hashable, visited: Set[Hashable]) -> bool:
        for r in right_of(l):
            if r in visited:
                continue
            visited.add(r)
            if r not in match_right or augment(match_right[r], visited):
                match_right[r] = l
                return True
        return False

    size = 0
    for l in left:
        if augment(l, set()):
            size += 1
    return size
