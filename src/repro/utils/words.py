"""Fixed-width 64-bit-word mask representation (DESIGN.md §11).

The repo's canonical mask representation is the arbitrary-precision
Python int (:mod:`repro.utils.bitset`): bit ``i`` stands for vertex
``i``, serialization and equality are trivial, and single AND/OR ops run
at C speed.  What ints cannot do is *vectorize*: every per-bit decode,
popcount-over-many, or gather-and-test loop runs one Python iteration
per bit.  This module provides the twin representation behind
``GuPConfig.mask_backend = "words"``: a mask is a **fixed-width array of
64-bit words** (``array('Q')``, little-endian word order — word ``w``
holds bits ``64*w .. 64*w+63``), with an optional numpy fast path
auto-detected at import (``HAVE_NUMPY``).

Layout invariants:

* width is explicit — every words value knows its word count, and
  binary kernels demand *equal* widths (:class:`WordWidthError`
  otherwise; silent zero-extension would let a stale narrow mask alias
  a wider universe);
* the words value of an int is exactly its little-endian 64-bit limbs:
  ``from_words(to_words(m, nwords)) == m`` for every ``m`` with
  ``m.bit_length() <= 64 * nwords`` (the round-trip the property suite
  pins);
* all kernels return canonical Python ints / lists of Python ints at
  their boundaries, so results — and anything serialized from them —
  are byte-identical to the int backend's.

The pure-``array('Q')`` kernels are the reference lowering (and the
fallback when numpy is absent); the numpy kernels must agree bit for
bit, which ``tests/test_mask_kernels.py`` proves against the int oracle
for both paths.
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Optional, Sequence

try:  # optional fast path, auto-detected at import
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image bundles numpy
    _np = None

HAVE_NUMPY = _np is not None

WORD_BITS = 64
WORD_MASK = (1 << WORD_BITS) - 1


class EmptyMaskError(ValueError):
    """A bit-position query (lowest/highest set bit) hit the zero mask.

    Raised by both the int backend (:mod:`repro.utils.bitset`) and the
    words backend, so callers see one typed error regardless of the
    mask representation.
    """


class WordWidthError(ValueError):
    """Binary word-mask operands have different widths.

    Width is part of a words value's identity (it pins the universe
    size); mixing widths is always a caller bug, never something to
    paper over by zero-extension.
    """


def nwords_for(nbits: int) -> int:
    """Words needed for a universe of ``nbits`` bits (at least 1)."""
    if nbits < 0:
        raise ValueError(f"negative universe size {nbits}")
    return max(1, (nbits + WORD_BITS - 1) // WORD_BITS)


def to_words(mask: int, nwords: int) -> array:
    """Lower an int mask to its little-endian 64-bit limbs.

    Raises :class:`WordWidthError` when ``mask`` does not fit in
    ``nwords`` words and :class:`ValueError` on negative masks.
    """
    if mask < 0:
        raise ValueError(f"negative mask {mask}")
    try:
        raw = mask.to_bytes(nwords * 8, "little")
    except OverflowError:
        raise WordWidthError(
            f"mask of {mask.bit_length()} bits does not fit in "
            f"{nwords} x {WORD_BITS}-bit words"
        )
    words = array("Q")
    words.frombytes(raw)
    return words


def from_words(words: Sequence[int]) -> int:
    """Inverse of :func:`to_words`: reassemble the canonical int."""
    if isinstance(words, array):
        return int.from_bytes(words.tobytes(), "little")
    if HAVE_NUMPY and isinstance(words, _np.ndarray):
        return int.from_bytes(words.astype("<u8").tobytes(), "little")
    value = 0
    for w, word in enumerate(words):
        value |= (word & WORD_MASK) << (w * WORD_BITS)
    return value


def zero_words(nwords: int) -> array:
    """The all-zero mask of the given width."""
    return array("Q", bytes(nwords * 8))


def _check_widths(a: Sequence[int], b: Sequence[int]) -> None:
    if len(a) != len(b):
        raise WordWidthError(
            f"word-mask width mismatch: {len(a)} words vs {len(b)} words"
        )


# ----------------------------------------------------------------------
# Pure array('Q') kernels — the reference lowering
# ----------------------------------------------------------------------


def words_and(a: array, b: array) -> array:
    _check_widths(a, b)
    return array("Q", (x & y for x, y in zip(a, b)))


def words_or(a: array, b: array) -> array:
    _check_widths(a, b)
    return array("Q", (x | y for x, y in zip(a, b)))


def words_andnot(a: array, b: array) -> array:
    """``a & ~b`` without materializing the complement."""
    _check_widths(a, b)
    return array("Q", (x & (y ^ WORD_MASK) for x, y in zip(a, b)))


def words_eq(a: array, b: array) -> bool:
    _check_widths(a, b)
    return a == b


def words_any(words: Sequence[int]) -> bool:
    """Whether any bit is set (nonzero test)."""
    return any(words)


def words_popcount(words: Sequence[int]) -> int:
    total = 0
    for word in words:
        total += word.bit_count()
    return total


def words_iter_bits(words: Sequence[int]) -> Iterator[int]:
    """Set bit positions in ascending order (per-word lowbit decode)."""
    base = 0
    for word in words:
        while word:
            low = word & -word
            yield base + low.bit_length() - 1
            word ^= low
        base += WORD_BITS


def words_lowest_bit(words: Sequence[int]) -> int:
    for w, word in enumerate(words):
        if word:
            return w * WORD_BITS + (word & -word).bit_length() - 1
    raise EmptyMaskError("lowest_bit of the zero mask")


def words_highest_bit(words: Sequence[int]) -> int:
    for w in range(len(words) - 1, -1, -1):
        word = words[w]
        if word:
            return w * WORD_BITS + word.bit_length() - 1
    raise EmptyMaskError("highest_bit of the zero mask")


def words_test_bit(words: Sequence[int], i: int) -> bool:
    w, r = divmod(i, WORD_BITS)
    if not 0 <= w < len(words):
        raise WordWidthError(f"bit {i} outside a {len(words)}-word mask")
    return bool(words[w] >> r & 1)


def words_set_bit(words: array, i: int) -> None:
    w, r = divmod(i, WORD_BITS)
    if not 0 <= w < len(words):
        raise WordWidthError(f"bit {i} outside a {len(words)}-word mask")
    words[w] |= 1 << r


def words_clear_bit(words: array, i: int) -> None:
    w, r = divmod(i, WORD_BITS)
    if not 0 <= w < len(words):
        raise WordWidthError(f"bit {i} outside a {len(words)}-word mask")
    words[w] &= (1 << r) ^ WORD_MASK


# ----------------------------------------------------------------------
# numpy fast path (agrees bit for bit with the pure kernels)
# ----------------------------------------------------------------------

# Masks narrower than this decode faster with the int lowbit loop than
# through a numpy round-trip (per-call overhead dominates tiny arrays).
_NP_DECODE_MIN_BITS = 512


def np_words(mask: int, nwords: int):
    """Int mask -> writable numpy ``uint64[nwords]`` (little-endian limbs)."""
    if mask < 0:
        raise ValueError(f"negative mask {mask}")
    try:
        raw = mask.to_bytes(nwords * 8, "little")
    except OverflowError:
        raise WordWidthError(
            f"mask of {mask.bit_length()} bits does not fit in "
            f"{nwords} x {WORD_BITS}-bit words"
        )
    return _np.frombuffer(raw, dtype="<u8").copy()


def np_positions(mask: int, _out_list: bool = True):
    """Set bit positions of an int mask, ascending, as Python ints.

    Vectorized decode: bytes -> ``unpackbits(bitorder='little')`` ->
    ``flatnonzero``; falls back to the int lowbit loop for narrow masks
    where numpy's fixed per-call cost loses.
    """
    if mask.bit_length() < _NP_DECODE_MIN_BITS:
        out: List[int] = []
        while mask:
            low = mask & -mask
            out.append(low.bit_length() - 1)
            mask ^= low
        return out
    raw = mask.to_bytes((mask.bit_length() + 7) // 8, "little")
    bits = _np.unpackbits(_np.frombuffer(raw, dtype=_np.uint8), bitorder="little")
    idx = _np.flatnonzero(bits)
    return idx.tolist() if _out_list else idx


def np_pack_positions(ids, nbits: int) -> int:
    """Inverse of :func:`np_positions`: ids -> canonical int mask."""
    nbytes = (nbits + 7) // 8 or 1
    bits = _np.zeros(nbytes * 8, dtype=_np.uint8)
    bits[ids] = 1
    return int.from_bytes(
        _np.packbits(bits, bitorder="little").tobytes(), "little"
    )


def pack_indices(ids: Sequence[int], nbits: Optional[int] = None) -> int:
    """``mask_of`` twin with the numpy fast path.

    ``ids`` must be nonnegative; ``nbits`` (when known) lets the numpy
    path skip a max() scan.  Output is the identical canonical int the
    per-id OR loop produces.
    """
    ids = list(ids)
    if not ids:
        return 0
    if HAVE_NUMPY and len(ids) >= 64:
        return np_pack_positions(ids, nbits if nbits is not None else max(ids) + 1)
    mask = 0
    for i in ids:
        mask |= 1 << i
    return mask
