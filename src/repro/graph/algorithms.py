"""Classical graph algorithms used as substrates by the matchers.

* k-core decomposition — GuP restricts nogood guards on edges to the 2-core
  of the query graph (§3.3.3): the part of the query outside the 2-core is a
  forest, where edge guards cannot capture cycle conflicts.
* BFS orders/levels — query DAG construction for DAG-graph DP filtering.
* connected components / connectivity — query generators must emit
  connected queries; matching orders must be *connected orders* (§2.2).
* degeneracy order — used by the RI-style matching order.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Set, Tuple

from repro.graph.graph import Graph


def bfs_order(graph: Graph, root: int) -> List[int]:
    """Vertices in BFS order from ``root`` (only the reachable ones)."""
    seen = [False] * graph.num_vertices
    seen[root] = True
    order = [root]
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for w in graph.neighbors(u):
            if not seen[w]:
                seen[w] = True
                order.append(w)
                queue.append(w)
    return order


def bfs_levels(graph: Graph, root: int) -> Dict[int, int]:
    """Map from reachable vertex to its BFS depth from ``root``."""
    levels = {root: 0}
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for w in graph.neighbors(u):
            if w not in levels:
                levels[w] = levels[u] + 1
                queue.append(w)
    return levels


def connected_components(graph: Graph) -> List[List[int]]:
    """Connected components as sorted vertex lists, largest first."""
    seen = [False] * graph.num_vertices
    components: List[List[int]] = []
    for start in graph.vertices():
        if seen[start]:
            continue
        seen[start] = True
        component = [start]
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for w in graph.neighbors(u):
                if not seen[w]:
                    seen[w] = True
                    component.append(w)
                    queue.append(w)
        components.append(sorted(component))
    components.sort(key=len, reverse=True)
    return components


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (the empty graph counts as connected)."""
    if graph.num_vertices == 0:
        return True
    return len(bfs_order(graph, 0)) == graph.num_vertices


def core_numbers(graph: Graph) -> List[int]:
    """Core number of every vertex (Batagelj–Zaversnik peeling, O(V + E)).

    The core number of ``v`` is the largest ``k`` such that ``v`` belongs
    to the k-core (maximal subgraph of minimum degree ``k``).
    """
    n = graph.num_vertices
    if n == 0:
        return []
    degree = [graph.degree(v) for v in range(n)]
    max_degree = max(degree)

    # Vertices sorted by degree via counting sort, with position tracking
    # so a vertex can be swapped toward the front when its degree drops.
    bin_start = [0] * (max_degree + 2)
    for d in degree:
        bin_start[d + 1] += 1
    for d in range(1, max_degree + 2):
        bin_start[d] += bin_start[d - 1]
    next_free = list(bin_start[: max_degree + 1])
    position = [0] * n
    ordered = [0] * n
    for v in range(n):
        position[v] = next_free[degree[v]]
        ordered[position[v]] = v
        next_free[degree[v]] += 1

    core = list(degree)
    for i in range(n):
        v = ordered[i]
        for w in graph.neighbors(v):
            if core[w] > core[v]:
                # Swap w with the first vertex of its degree bucket, then
                # shrink w's bucket boundary and decrement its degree.
                dw = core[w]
                pw = position[w]
                ps = bin_start[dw]
                s = ordered[ps]
                if s != w:
                    ordered[pw], ordered[ps] = s, w
                    position[w], position[s] = ps, pw
                bin_start[dw] += 1
                core[w] -= 1
    return core


def k_core_vertices(graph: Graph, k: int) -> Set[int]:
    """Vertices of the k-core (possibly empty)."""
    return {v for v, c in enumerate(core_numbers(graph)) if c >= k}


def two_core_edges(graph: Graph) -> Set[Tuple[int, int]]:
    """Edges with both endpoints in the 2-core, as ``(min, max)`` pairs.

    GuP generates nogood guards only for candidate edges whose query edge
    lies in the 2-core (§3.3.3); everything outside is a forest.
    """
    core = k_core_vertices(graph, 2)
    return {(u, v) for u, v in graph.edges() if u in core and v in core}


def degeneracy_order(graph: Graph) -> List[int]:
    """Vertices in degeneracy (smallest-last) order.

    Repeatedly removes a vertex of minimum remaining degree; the reverse
    of the removal order is returned, so vertices that survive longest
    (densest region) come first.
    """
    n = graph.num_vertices
    degree = [graph.degree(v) for v in range(n)]
    removed = [False] * n
    removal: List[int] = []
    for _ in range(n):
        v = min(
            (u for u in range(n) if not removed[u]),
            key=lambda u: (degree[u], u),
        )
        removed[v] = True
        removal.append(v)
        for w in graph.neighbors(v):
            if not removed[w]:
                degree[w] -= 1
    removal.reverse()
    return removal


def triangle_count(graph: Graph) -> int:
    """Total number of triangles (used by workload statistics)."""
    count = 0
    for u, v in graph.edges():
        smaller, larger = (u, v) if graph.degree(u) <= graph.degree(v) else (v, u)
        larger_nbrs = graph.neighbor_set(larger)
        for w in graph.neighbors(smaller):
            if w > v and w in larger_nbrs:
                count += 1
    return count


def shortest_path_lengths(graph: Graph, root: int) -> Dict[int, int]:
    """Alias of :func:`bfs_levels` under its conventional name."""
    return bfs_levels(graph, root)
