"""Seeded random graph generators.

These produce the synthetic data graphs the workloads are built on (the
paper's real datasets are not redistributable / not available offline; see
DESIGN.md §2).  All generators take an explicit ``random.Random`` seed or
instance so every experiment in this repository is deterministic.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Union

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph

RandomLike = Union[int, random.Random, None]


def _rng(seed: RandomLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def random_labels(
    num_vertices: int,
    num_labels: int,
    seed: RandomLike = None,
    skew: float = 0.0,
) -> List[int]:
    """Random label assignment over ``range(num_labels)``.

    ``skew = 0`` draws labels uniformly (as Sun et al. did for Patents);
    ``skew > 0`` draws from a Zipf-like distribution with that exponent,
    mimicking the label skew of protein graphs such as Yeast.
    """
    if num_labels <= 0:
        raise ValueError("num_labels must be positive")
    rng = _rng(seed)
    if skew <= 0.0:
        return [rng.randrange(num_labels) for _ in range(num_vertices)]
    weights = [1.0 / (rank + 1) ** skew for rank in range(num_labels)]
    return rng.choices(range(num_labels), weights=weights, k=num_vertices)


def erdos_renyi_graph(
    num_vertices: int,
    num_edges: int,
    num_labels: int = 1,
    seed: RandomLike = None,
    labels: Optional[Sequence[object]] = None,
    label_skew: float = 0.0,
) -> Graph:
    """G(n, m) random graph with random labels.

    Exactly ``num_edges`` distinct edges are sampled uniformly (capped by
    the complete-graph maximum).
    """
    rng = _rng(seed)
    if labels is None:
        labels = random_labels(num_vertices, num_labels, rng, skew=label_skew)
    builder = GraphBuilder()
    builder.add_vertices(labels)

    max_edges = num_vertices * (num_vertices - 1) // 2
    target = min(num_edges, max_edges)
    added = 0
    # Rejection sampling is fine while the graph is sparse (our use case).
    while added < target:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u != v and builder.add_edge(u, v):
            added += 1
    return builder.build()


def random_tree(
    num_vertices: int,
    num_labels: int = 1,
    seed: RandomLike = None,
    labels: Optional[Sequence[object]] = None,
) -> Graph:
    """Uniform random recursive tree with random labels."""
    rng = _rng(seed)
    if labels is None:
        labels = random_labels(num_vertices, num_labels, rng)
    builder = GraphBuilder()
    builder.add_vertices(labels)
    for v in range(1, num_vertices):
        builder.add_edge(v, rng.randrange(v))
    return builder.build()


def random_connected_graph(
    num_vertices: int,
    num_edges: int,
    num_labels: int = 1,
    seed: RandomLike = None,
    labels: Optional[Sequence[object]] = None,
    label_skew: float = 0.0,
) -> Graph:
    """Connected random graph: random tree plus extra random edges."""
    if num_vertices > 0 and num_edges < num_vertices - 1:
        raise ValueError("a connected graph needs at least n - 1 edges")
    rng = _rng(seed)
    if labels is None:
        labels = random_labels(num_vertices, num_labels, rng, skew=label_skew)
    builder = GraphBuilder()
    builder.add_vertices(labels)
    for v in range(1, num_vertices):
        builder.add_edge(v, rng.randrange(v))
    added = num_vertices - 1 if num_vertices > 1 else 0
    max_edges = num_vertices * (num_vertices - 1) // 2
    target = min(num_edges, max_edges)
    while added < target:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u != v and builder.add_edge(u, v):
            added += 1
    return builder.build()


def powerlaw_cluster_graph(
    num_vertices: int,
    edges_per_vertex: int,
    triangle_probability: float = 0.3,
    num_labels: int = 1,
    seed: RandomLike = None,
    labels: Optional[Sequence[object]] = None,
    label_skew: float = 0.0,
) -> Graph:
    """Holme–Kim powerlaw graph with tunable clustering.

    Grows the graph by preferential attachment (``edges_per_vertex`` links
    per new vertex); each link closes a triangle with probability
    ``triangle_probability``.  This reproduces the heavy-tailed degrees and
    local clustering of real networks (WordNet/Patents stand-ins).
    """
    m = max(1, edges_per_vertex)
    if num_vertices < m + 1:
        raise ValueError("num_vertices must exceed edges_per_vertex")
    rng = _rng(seed)
    if labels is None:
        labels = random_labels(num_vertices, num_labels, rng, skew=label_skew)
    builder = GraphBuilder()
    builder.add_vertices(labels)

    # Repeated endpoints in this list implement preferential attachment.
    attachment: List[int] = []
    for v in range(m):
        if v > 0:
            builder.add_edge(v, v - 1)
            attachment.extend((v, v - 1))
    if m == 1:
        attachment.append(0)

    for v in range(m, num_vertices):
        targets: List[int] = []
        last_target: Optional[int] = None
        while len(targets) < m:
            if (
                last_target is not None
                and rng.random() < triangle_probability
            ):
                # Triangle step: attach to a neighbor of the last target.
                nbrs = [
                    w
                    for w in builder.neighbors(last_target)
                    if w != v and w not in targets
                ]
                if nbrs:
                    candidate = rng.choice(nbrs)
                    targets.append(candidate)
                    last_target = candidate
                    continue
            candidate = attachment[rng.randrange(len(attachment))]
            if candidate != v and candidate not in targets:
                targets.append(candidate)
                last_target = candidate
        for t in targets:
            builder.add_edge(v, t)
            attachment.extend((v, t))
    return builder.build()
