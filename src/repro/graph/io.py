"""Readers and writers for graph text formats.

The subgraph-matching literature (DAF, GQL, RapidMatch, GuP) shares a
single plain-text format, usually with a ``.graph`` extension::

    t <num_vertices> <num_edges>
    v <vertex_id> <label> <degree>
    ...
    e <src> <dst>
    ...

Vertex lines must cover ids ``0 .. n-1``; the degree column is redundant
and is validated but not required to be correct by all tools — we check it
only in ``strict`` mode.  Labels are parsed as ints when possible and kept
as strings otherwise.
"""

from __future__ import annotations

import hashlib
import io as _io
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph

PathLike = Union[str, Path]


class GraphFormatError(ValueError):
    """Raised when a graph file violates the ``.graph`` format."""


def _parse_label(token: str) -> object:
    try:
        return int(token)
    except ValueError:
        return token


def loads_graph(text: str, strict: bool = False) -> Graph:
    """Parse a graph from ``.graph``-format text.

    Parameters
    ----------
    text:
        The file contents.
    strict:
        When true, validate the declared vertex/edge counts and per-vertex
        degrees against the actual data.
    """
    declared_n: int = -1
    declared_m: int = -1
    labels: Dict[int, object] = {}
    declared_degrees: Dict[int, int] = {}
    edges: List[Tuple[int, int]] = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith("%"):
            continue
        parts = line.split()
        kind = parts[0]
        if kind == "t":
            if len(parts) < 3:
                raise GraphFormatError(f"line {lineno}: malformed header {line!r}")
            declared_n = int(parts[1])
            declared_m = int(parts[2])
        elif kind == "v":
            if len(parts) < 3:
                raise GraphFormatError(f"line {lineno}: malformed vertex {line!r}")
            vid = int(parts[1])
            if vid in labels:
                raise GraphFormatError(f"line {lineno}: duplicate vertex id {vid}")
            labels[vid] = _parse_label(parts[2])
            if len(parts) >= 4:
                declared_degrees[vid] = int(parts[3])
        elif kind == "e":
            if len(parts) < 3:
                raise GraphFormatError(f"line {lineno}: malformed edge {line!r}")
            edges.append((int(parts[1]), int(parts[2])))
        else:
            raise GraphFormatError(f"line {lineno}: unknown record kind {kind!r}")

    n = len(labels)
    if sorted(labels) != list(range(n)):
        raise GraphFormatError("vertex ids must be exactly 0 .. n-1")

    builder = GraphBuilder()
    builder.add_vertices(labels[v] for v in range(n))
    for u, v in edges:
        if not (0 <= u < n and 0 <= v < n):
            raise GraphFormatError(f"edge ({u}, {v}) references unknown vertex")
        builder.add_edge(u, v)
    graph = builder.build()

    if strict:
        if declared_n >= 0 and declared_n != graph.num_vertices:
            raise GraphFormatError(
                f"header declares {declared_n} vertices, file has {graph.num_vertices}"
            )
        if declared_m >= 0 and declared_m != graph.num_edges:
            raise GraphFormatError(
                f"header declares {declared_m} edges, file has {graph.num_edges}"
            )
        for vid, deg in declared_degrees.items():
            if graph.degree(vid) != deg:
                raise GraphFormatError(
                    f"vertex {vid} declares degree {deg}, actual {graph.degree(vid)}"
                )
    return graph


def load_graph(path: PathLike, strict: bool = False) -> Graph:
    """Load a graph from a ``.graph`` file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads_graph(handle.read(), strict=strict)


def saves_graph(graph: Graph) -> str:
    """Serialize a graph to ``.graph``-format text."""
    out = _io.StringIO()
    out.write(f"t {graph.num_vertices} {graph.num_edges}\n")
    for v in graph.vertices():
        out.write(f"v {v} {graph.label(v)} {graph.degree(v)}\n")
    for u, v in graph.edges():
        out.write(f"e {u} {v}\n")
    return out.getvalue()


def save_graph(graph: Graph, path: PathLike) -> None:
    """Write a graph to disk in ``.graph`` format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(saves_graph(graph))


def graph_checksum(graph: Graph) -> str:
    """Content checksum of a graph: SHA-256 over its canonical text form.

    Two graphs have equal checksums iff they are equal as labeled graphs
    under the *same* vertex numbering (``saves_graph`` is deterministic:
    vertices in id order, neighbor lists sorted).  The service catalog
    stores this in each entry's sidecar to detect stale artifacts after
    the graph file changes.

    Computed once per instance and cached on it (graphs are immutable),
    so the service paths that hash the same graph repeatedly — catalog
    ``add``/``info``, epoch metadata on ``update`` — re-serialize
    nothing after the first call.
    """
    cached = graph._checksum
    if cached is None:
        cached = hashlib.sha256(
            saves_graph(graph).encode("utf-8")
        ).hexdigest()
        graph._checksum = cached
    return cached


def graph_from_edge_list(
    edges: Iterable[Tuple[int, int]],
    labels: Union[Dict[int, object], List[object], None] = None,
    default_label: object = 0,
) -> Graph:
    """Build a graph from an edge list, inferring the vertex count.

    Isolated vertices can only appear through an explicit ``labels``
    mapping/list whose length exceeds the max endpoint.
    """
    edge_list = [(int(u), int(v)) for u, v in edges]
    max_vertex = -1
    for u, v in edge_list:
        max_vertex = max(max_vertex, u, v)
    if isinstance(labels, dict):
        if labels:
            max_vertex = max(max_vertex, max(labels))
        n = max_vertex + 1
        label_seq = [labels.get(v, default_label) for v in range(n)]
    elif labels is not None:
        label_seq = list(labels)
        if len(label_seq) <= max_vertex:
            raise ValueError(
                f"labels cover {len(label_seq)} vertices but edges reference {max_vertex}"
            )
    else:
        label_seq = [default_label] * (max_vertex + 1)

    builder = GraphBuilder()
    builder.add_vertices(label_seq)
    builder.add_edges(edge_list)
    return builder.build()
