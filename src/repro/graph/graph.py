"""Immutable vertex-labeled simple undirected graph.

The :class:`Graph` class is the single graph representation shared by the
query side and the data side of every matcher in this repository.  It is
deliberately simple and read-optimized:

* adjacency is stored CSR-style (one flat array of neighbor ids plus an
  offset array), with neighbor lists sorted ascending;
* a per-vertex ``frozenset`` mirror of each adjacency list gives O(1)
  ``has_edge`` tests, which backtracking matchers perform constantly;
* a label index maps each label to the sorted tuple of vertices carrying
  it, which is the seed of candidate filtering (LDF);
* per-vertex neighbor label frequency tables back the NLF filter.

Instances are immutable: all mutation happens in
:class:`~repro.graph.builder.GraphBuilder`, which validates input (no
self-loops, no duplicate edges, labels hashable) and then freezes.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)


class Graph:
    """A vertex-labeled simple undirected graph.

    Vertices are the integers ``0 .. num_vertices - 1``.  Labels may be any
    hashable value (the paper and the standard datasets use small ints).

    Do not call this constructor with unsanitized input; use
    :class:`~repro.graph.builder.GraphBuilder` instead, which checks all the
    invariants this class assumes (sorted, deduplicated, loop-free
    adjacency).

    Parameters
    ----------
    labels:
        Sequence of per-vertex labels; ``len(labels)`` defines the vertex
        count.
    adjacency:
        Per-vertex sorted sequences of neighbor ids.  Must be symmetric
        (``v in adjacency[u]`` iff ``u in adjacency[v]``) and loop-free.
    """

    __slots__ = (
        "_labels",
        "_offsets",
        "_neighbors_flat",
        "_neighbor_sets",
        "_label_index",
        "_num_edges",
        "_nlf",
        "_checksum",
    )

    def __init__(
        self,
        labels: Sequence[object],
        adjacency: Sequence[Sequence[int]],
    ) -> None:
        if len(labels) != len(adjacency):
            raise ValueError(
                "labels and adjacency must have the same length: "
                f"{len(labels)} != {len(adjacency)}"
            )
        self._labels: Tuple[object, ...] = tuple(labels)

        offsets: List[int] = [0]
        flat: List[int] = []
        neighbor_sets: List[FrozenSet[int]] = []
        for u, nbrs in enumerate(adjacency):
            sorted_nbrs = sorted(nbrs)
            flat.extend(sorted_nbrs)
            offsets.append(len(flat))
            nbr_set = frozenset(sorted_nbrs)
            if len(nbr_set) != len(sorted_nbrs):
                raise ValueError(f"duplicate neighbor in adjacency of vertex {u}")
            if u in nbr_set:
                raise ValueError(f"self-loop at vertex {u}")
            neighbor_sets.append(nbr_set)
        self._offsets: Tuple[int, ...] = tuple(offsets)
        self._neighbors_flat: Tuple[int, ...] = tuple(flat)
        self._neighbor_sets: Tuple[FrozenSet[int], ...] = tuple(neighbor_sets)
        if len(flat) % 2 != 0:
            raise ValueError("adjacency is not symmetric (odd half-edge count)")
        self._num_edges: int = len(flat) // 2

        label_index: Dict[object, List[int]] = {}
        for v, label in enumerate(self._labels):
            label_index.setdefault(label, []).append(v)
        self._label_index: Dict[object, Tuple[int, ...]] = {
            label: tuple(vs) for label, vs in label_index.items()
        }

        # Neighbor label frequency (NLF) tables, computed lazily.
        self._nlf: List[Dict[object, int]] = []
        # Content checksum, computed lazily by repro.graph.io.graph_checksum
        # (instances are immutable, so one hash serves every caller).
        self._checksum: Optional[str] = None

    @classmethod
    def _from_sorted_rows(
        cls,
        labels: Sequence[object],
        rows: Sequence[Tuple[int, ...]],
        neighbor_sets: Sequence[FrozenSet[int]],
        nlf: Optional[List[Dict[object, int]]] = None,
    ) -> "Graph":
        """Assemble a graph from already-validated per-vertex rows.

        The delta-application path (:mod:`repro.dynamic.delta`) reuses
        the untouched rows of an existing graph verbatim — ``rows[v]``
        and ``neighbor_sets[v]`` may be the *same objects* as the source
        graph's — so this constructor performs no per-row sorting,
        deduplication, or loop checks.  Callers guarantee every row is
        sorted, loop-free, and symmetric.  ``nlf``, when given, installs
        a prebuilt neighbor-label-frequency cache (all rows or none).
        """
        graph = cls.__new__(cls)
        graph._labels = tuple(labels)
        offsets: List[int] = [0]
        flat: List[int] = []
        for row in rows:
            flat.extend(row)
            offsets.append(len(flat))
        graph._offsets = tuple(offsets)
        graph._neighbors_flat = tuple(flat)
        graph._neighbor_sets = tuple(neighbor_sets)
        graph._num_edges = len(flat) // 2
        label_index: Dict[object, List[int]] = {}
        for v, label in enumerate(graph._labels):
            label_index.setdefault(label, []).append(v)
        graph._label_index = {
            label: tuple(vs) for label, vs in label_index.items()
        }
        graph._nlf = nlf if nlf is not None else []
        graph._checksum = None
        return graph

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of (undirected) edges."""
        return self._num_edges

    @property
    def labels(self) -> Tuple[object, ...]:
        """Per-vertex label tuple."""
        return self._labels

    def label(self, v: int) -> object:
        """Label of vertex ``v``."""
        return self._labels[v]

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return self._offsets[v + 1] - self._offsets[v]

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Sorted tuple of neighbors of ``v``."""
        return self._neighbors_flat[self._offsets[v] : self._offsets[v + 1]]

    def neighbor_set(self, v: int) -> FrozenSet[int]:
        """Frozen set of neighbors of ``v`` (O(1) membership)."""
        return self._neighbor_sets[v]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge ``(u, v)`` exists."""
        return v in self._neighbor_sets[u]

    def vertices(self) -> range:
        """Iterable over all vertex ids."""
        return range(len(self._labels))

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over edges as ``(u, v)`` pairs with ``u < v``."""
        for u in range(len(self._labels)):
            for v in self.neighbors(u):
                if u < v:
                    yield (u, v)

    # ------------------------------------------------------------------
    # Label machinery
    # ------------------------------------------------------------------

    @property
    def label_set(self) -> FrozenSet[object]:
        """The set of labels present in the graph."""
        return frozenset(self._label_index)

    def vertices_with_label(self, label: object) -> Tuple[int, ...]:
        """Sorted tuple of vertices carrying ``label`` (empty if absent)."""
        return self._label_index.get(label, ())

    def neighbor_label_frequency(self, v: int) -> Dict[object, int]:
        """NLF table of ``v``: label -> number of neighbors with that label.

        Used by :func:`repro.filtering.nlf.nlf_candidates`.  Computed once
        per graph on first access and cached.
        """
        if not self._nlf:
            nlf: List[Dict[object, int]] = []
            for u in range(len(self._labels)):
                freq: Dict[object, int] = {}
                for w in self.neighbors(u):
                    lbl = self._labels[w]
                    freq[lbl] = freq.get(lbl, 0) + 1
                nlf.append(freq)
            self._nlf = nlf
        return self._nlf[v]

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def induced_subgraph(self, vertices: Iterable[int]) -> Tuple["Graph", Dict[int, int]]:
        """Subgraph induced by ``vertices``.

        Returns the new graph and the mapping from old vertex ids to new
        (contiguous) vertex ids.  Vertices keep their labels; only edges
        with both endpoints in ``vertices`` survive.
        """
        kept = sorted(set(vertices))
        old_to_new = {old: new for new, old in enumerate(kept)}
        labels = [self._labels[old] for old in kept]
        adjacency: List[List[int]] = [[] for _ in kept]
        for old in kept:
            new = old_to_new[old]
            for w in self.neighbors(old):
                if w in old_to_new:
                    adjacency[new].append(old_to_new[w])
        return Graph(labels, adjacency), old_to_new

    def relabeled(self, permutation: Sequence[int]) -> "Graph":
        """Renumber vertices so that new id ``i`` is old id ``permutation[i]``.

        ``permutation`` must be a permutation of ``range(num_vertices)``.
        Matching orders are applied to query graphs through this method
        (the paper assumes the matching order *is* ascending vertex id,
        §2.2).
        """
        n = self.num_vertices
        if sorted(permutation) != list(range(n)):
            raise ValueError("permutation must be a permutation of all vertex ids")
        old_to_new = [0] * n
        for new, old in enumerate(permutation):
            old_to_new[old] = new
        labels = [self._labels[old] for old in permutation]
        adjacency: List[List[int]] = [[] for _ in range(n)]
        for new, old in enumerate(permutation):
            adjacency[new] = [old_to_new[w] for w in self.neighbors(old)]
        return Graph(labels, adjacency)

    def degree_sequence(self) -> List[int]:
        """List of vertex degrees indexed by vertex id."""
        return [self.degree(v) for v in range(self.num_vertices)]

    def average_degree(self) -> float:
        """Average degree (``2 |E| / |V|``); 0.0 for the empty graph."""
        if self.num_vertices == 0:
            return 0.0
        return 2.0 * self._num_edges / self.num_vertices

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._labels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._labels == other._labels
            and self._offsets == other._offsets
            and self._neighbors_flat == other._neighbors_flat
        )

    def __hash__(self) -> int:
        return hash((self._labels, self._offsets, self._neighbors_flat))

    def __repr__(self) -> str:
        return (
            f"Graph(num_vertices={self.num_vertices}, num_edges={self.num_edges}, "
            f"num_labels={len(self._label_index)})"
        )
