"""Mutable accumulator for constructing :class:`~repro.graph.graph.Graph`.

``GraphBuilder`` is the only supported way to construct graphs from code:
it validates vertex ids, rejects self-loops, silently deduplicates repeated
edges (the ``.graph`` datasets in the literature occasionally contain both
directions of an edge), and freezes into an immutable ``Graph``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.graph.graph import Graph


class GraphBuilder:
    """Incrementally build a vertex-labeled simple undirected graph.

    Example
    -------
    >>> b = GraphBuilder()
    >>> a = b.add_vertex("A")
    >>> c = b.add_vertex("B")
    >>> b.add_edge(a, c)
    True
    >>> g = b.build()
    >>> g.num_vertices, g.num_edges
    (2, 1)
    """

    def __init__(self) -> None:
        self._labels: List[object] = []
        self._adjacency: List[Set[int]] = []

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_vertex(self, label: object) -> int:
        """Add a vertex with ``label``; returns its id."""
        hash(label)  # labels must be hashable; fail fast
        self._labels.append(label)
        self._adjacency.append(set())
        return len(self._labels) - 1

    def add_vertices(self, labels: Iterable[object]) -> List[int]:
        """Add several vertices; returns their ids in order."""
        return [self.add_vertex(label) for label in labels]

    def add_edge(self, u: int, v: int) -> bool:
        """Add undirected edge ``(u, v)``.

        Returns ``True`` if the edge was new, ``False`` if it already
        existed.  Raises on self-loops or unknown vertex ids.
        """
        n = len(self._labels)
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"edge ({u}, {v}) references unknown vertex (n={n})")
        if u == v:
            raise ValueError(f"self-loop at vertex {u} is not allowed")
        if v in self._adjacency[u]:
            return False
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        return True

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> int:
        """Add several edges; returns how many were new."""
        return sum(1 for u, v in edges if self.add_edge(u, v))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adjacency) // 2

    def has_edge(self, u: int, v: int) -> bool:
        return 0 <= u < len(self._adjacency) and v in self._adjacency[u]

    def degree(self, v: int) -> int:
        return len(self._adjacency[v])

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Snapshot of the current neighbors of ``v`` (sorted)."""
        return tuple(sorted(self._adjacency[v]))

    # ------------------------------------------------------------------
    # Freezing
    # ------------------------------------------------------------------

    def build(self) -> Graph:
        """Freeze into an immutable :class:`Graph`."""
        return Graph(self._labels, [sorted(nbrs) for nbrs in self._adjacency])


def graph_from_adjacency(
    labels: Iterable[object],
    edges: Iterable[Tuple[int, int]],
) -> Graph:
    """Convenience one-shot construction from labels and an edge list."""
    builder = GraphBuilder()
    builder.add_vertices(labels)
    builder.add_edges(edges)
    return builder.build()


def complete_graph(labels: Iterable[object]) -> Graph:
    """Complete graph over the given labels (used in tests)."""
    builder = GraphBuilder()
    ids = builder.add_vertices(labels)
    for i, u in enumerate(ids):
        for v in ids[i + 1 :]:
            builder.add_edge(u, v)
    return builder.build()


def path_graph(labels: Iterable[object]) -> Graph:
    """Path graph visiting the labels in order (used in tests)."""
    builder = GraphBuilder()
    ids = builder.add_vertices(labels)
    for u, v in zip(ids, ids[1:]):
        builder.add_edge(u, v)
    return builder.build()


def cycle_graph(labels: Iterable[object]) -> Graph:
    """Cycle graph over the given labels (>= 3 vertices)."""
    builder = GraphBuilder()
    ids = builder.add_vertices(labels)
    if len(ids) < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    for u, v in zip(ids, ids[1:]):
        builder.add_edge(u, v)
    builder.add_edge(ids[-1], ids[0])
    return builder.build()


def star_graph(center_label: object, leaf_labels: Iterable[object]) -> Graph:
    """Star graph: one center connected to every leaf (used in tests)."""
    builder = GraphBuilder()
    center = builder.add_vertex(center_label)
    for label in leaf_labels:
        leaf = builder.add_vertex(label)
        builder.add_edge(center, leaf)
    return builder.build()
