"""Vertex-labeled undirected graph substrate.

This package provides the graph data structures and algorithms that every
matcher in :mod:`repro` is built on:

* :class:`~repro.graph.graph.Graph` — an immutable vertex-labeled simple
  undirected graph with CSR-style adjacency, constant-time neighbor tests,
  and a label index.
* :class:`~repro.graph.builder.GraphBuilder` — a mutable accumulator that
  validates and deduplicates input before freezing it into a ``Graph``.
* :mod:`~repro.graph.io` — readers/writers for the ``.graph`` text format
  used by the subgraph-matching literature, plus edge-list formats.
* :mod:`~repro.graph.algorithms` — k-core decomposition (GuP restricts
  nogood guards on edges to the query 2-core), connected components, BFS,
  and degeneracy ordering.
* :mod:`~repro.graph.generators` — seeded random graph generators used by
  the synthetic workloads.
"""

from repro.graph.algorithms import (
    bfs_levels,
    bfs_order,
    connected_components,
    core_numbers,
    degeneracy_order,
    is_connected,
    k_core_vertices,
    two_core_edges,
)
from repro.graph.builder import GraphBuilder
from repro.graph.generators import (
    erdos_renyi_graph,
    powerlaw_cluster_graph,
    random_connected_graph,
    random_labels,
    random_tree,
)
from repro.graph.graph import Graph
from repro.graph.io import (
    graph_from_edge_list,
    load_graph,
    loads_graph,
    save_graph,
    saves_graph,
)

__all__ = [
    "Graph",
    "GraphBuilder",
    "bfs_levels",
    "bfs_order",
    "connected_components",
    "core_numbers",
    "degeneracy_order",
    "erdos_renyi_graph",
    "graph_from_edge_list",
    "is_connected",
    "k_core_vertices",
    "load_graph",
    "loads_graph",
    "powerlaw_cluster_graph",
    "random_connected_graph",
    "random_labels",
    "random_tree",
    "save_graph",
    "saves_graph",
    "two_core_edges",
]
