"""Edge-labeled matching through a vertex-labeled reduction.

Reduction: every undirected edge ``{u, v}`` with label ``l`` becomes a
midpoint vertex ``m`` labeled ``("e", l)`` with edges ``u - m - v``;
original vertices keep their labels under a ``("v", label)`` namespace
and their ids.

Exactness: a query midpoint is adjacent to exactly the two endpoints of
its edge; its image must be a data midpoint adjacent to both endpoint
images — in a simple graph that midpoint is unique (the midpoint of the
data edge ``{image(u), image(v)}``), and label equality forces equal
edge labels.  Hence edge-labeled embeddings and reduced embeddings are
in bijection (midpoint assignments are determined by the endpoints).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import GuPConfig
from repro.core.engine import match as vertex_labeled_match
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.matching.limits import SearchLimits
from repro.matching.result import MatchResult, TerminationStatus

LabeledEdge = Tuple[int, int, object]


class EdgeLabeledGraph:
    """A vertex- and edge-labeled simple undirected graph."""

    __slots__ = ("_labels", "_adjacency", "_edge_labels")

    def __init__(
        self,
        labels: Sequence[object],
        edges: Iterable[LabeledEdge],
    ) -> None:
        n = len(labels)
        self._labels: Tuple[object, ...] = tuple(labels)
        adjacency: List[set] = [set() for _ in range(n)]
        edge_labels: Dict[Tuple[int, int], object] = {}
        for u, v, label in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u}, {v}) references unknown vertex")
            if u == v:
                raise ValueError(f"self-loop at vertex {u}")
            key = (min(u, v), max(u, v))
            if key in edge_labels and edge_labels[key] != label:
                raise ValueError(f"conflicting labels for edge {key}")
            edge_labels[key] = label
            adjacency[u].add(v)
            adjacency[v].add(u)
        self._adjacency: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(a)) for a in adjacency
        )
        self._edge_labels = edge_labels

    @property
    def num_vertices(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return len(self._edge_labels)

    def label(self, v: int) -> object:
        return self._labels[v]

    def neighbors(self, v: int) -> Tuple[int, ...]:
        return self._adjacency[v]

    def edge_label(self, u: int, v: int) -> object:
        return self._edge_labels[(min(u, v), max(u, v))]

    def has_edge(self, u: int, v: int) -> bool:
        return (min(u, v), max(u, v)) in self._edge_labels

    def edges(self) -> Iterable[LabeledEdge]:
        for (u, v), label in sorted(self._edge_labels.items()):
            yield (u, v, label)

    def vertices(self) -> range:
        return range(len(self._labels))

    def __repr__(self) -> str:
        return (
            f"EdgeLabeledGraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )


def edge_labeled_to_vertex_labeled(graph: EdgeLabeledGraph) -> Graph:
    """The midpoint reduction; original vertices keep ids 0..n-1."""
    builder = GraphBuilder()
    for v in graph.vertices():
        builder.add_vertex(("v", graph.label(v)))
    for u, v, label in graph.edges():
        midpoint = builder.add_vertex(("e", label))
        builder.add_edge(u, midpoint)
        builder.add_edge(midpoint, v)
    return builder.build()


def match_edge_labeled(
    query: EdgeLabeledGraph,
    data: EdgeLabeledGraph,
    config: Optional[GuPConfig] = None,
    limits: Optional[SearchLimits] = None,
) -> MatchResult:
    """Edge-labeled subgraph matching via the midpoint reduction."""
    if query.num_vertices == 0:
        return MatchResult(
            embeddings=[()],
            num_embeddings=1,
            status=TerminationStatus.COMPLETE,
            elapsed_seconds=0.0,
            method="GuP-edge-labeled",
        )
    reduced_query = edge_labeled_to_vertex_labeled(query)
    reduced_data = edge_labeled_to_vertex_labeled(data)
    result = vertex_labeled_match(
        reduced_query, reduced_data, config=config, limits=limits
    )
    result.embeddings = [
        e[: query.num_vertices] for e in result.embeddings
    ]
    result.method = "GuP-edge-labeled"
    return result


def enumerate_edge_labeled_embeddings(
    query: EdgeLabeledGraph,
    data: EdgeLabeledGraph,
    max_embeddings: Optional[int] = None,
) -> List[Tuple[int, ...]]:
    """Brute-force edge-labeled subgraph isomorphism (the oracle)."""
    n = query.num_vertices
    if n == 0:
        return [()]
    results: List[Tuple[int, ...]] = []
    assignment = [-1] * n
    used = set()

    def backtrack(i: int) -> bool:
        if i == n:
            results.append(tuple(assignment))
            return max_embeddings is None or len(results) < max_embeddings
        for v in data.vertices():
            if v in used or data.label(v) != query.label(i):
                continue
            ok = True
            for j in query.neighbors(i):
                if j < i:
                    if not data.has_edge(assignment[j], v):
                        ok = False
                        break
                    if data.edge_label(assignment[j], v) != query.edge_label(j, i):
                        ok = False
                        break
            if ok:
                assignment[i] = v
                used.add(v)
                keep = backtrack(i + 1)
                used.discard(v)
                assignment[i] = -1
                if not keep:
                    return False
        return True

    backtrack(0)
    return results
