"""Minimal vertex-labeled simple directed graph + brute-force matcher.

Kept deliberately small: the directed matching path goes through the
reduction in :mod:`repro.adapters.directed`; this class only stores the
instance and powers the test oracle.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple


class DiGraph:
    """A vertex-labeled simple directed graph (no loops, no parallels)."""

    __slots__ = ("_labels", "_successors", "_predecessors")

    def __init__(
        self,
        labels: Sequence[object],
        edges: Iterable[Tuple[int, int]],
    ) -> None:
        n = len(labels)
        self._labels: Tuple[object, ...] = tuple(labels)
        succ: List[set] = [set() for _ in range(n)]
        pred: List[set] = [set() for _ in range(n)]
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u}, {v}) references unknown vertex")
            if u == v:
                raise ValueError(f"self-loop at vertex {u}")
            succ[u].add(v)
            pred[v].add(u)
        self._successors: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(s)) for s in succ
        )
        self._predecessors: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(p)) for p in pred
        )

    @property
    def num_vertices(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return sum(len(s) for s in self._successors)

    def label(self, v: int) -> object:
        return self._labels[v]

    @property
    def labels(self) -> Tuple[object, ...]:
        return self._labels

    def successors(self, v: int) -> Tuple[int, ...]:
        return self._successors[v]

    def predecessors(self, v: int) -> Tuple[int, ...]:
        return self._predecessors[v]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the *directed* edge ``u -> v`` exists."""
        return v in self._successors[u]

    def edges(self) -> Iterable[Tuple[int, int]]:
        for u in range(len(self._labels)):
            for v in self._successors[u]:
                yield (u, v)

    def vertices(self) -> range:
        return range(len(self._labels))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self._labels == other._labels
            and self._successors == other._successors
        )

    def __hash__(self) -> int:
        return hash((self._labels, self._successors))

    def __repr__(self) -> str:
        return (
            f"DiGraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )


def enumerate_directed_embeddings(
    query: DiGraph,
    data: DiGraph,
    max_embeddings: Optional[int] = None,
) -> List[Tuple[int, ...]]:
    """Brute-force directed subgraph isomorphism (the adapter oracle).

    An embedding maps query vertices to distinct, label-equal data
    vertices such that every directed query edge maps to a directed data
    edge with the same orientation.
    """
    n = query.num_vertices
    results: List[Tuple[int, ...]] = []
    if n == 0:
        return [()]
    assignment = [-1] * n
    used = set()

    def backtrack(i: int) -> bool:
        if i == n:
            results.append(tuple(assignment))
            return max_embeddings is None or len(results) < max_embeddings
        for v in data.vertices():
            if v in used or data.label(v) != query.label(i):
                continue
            ok = True
            for j in query.successors(i):
                if j < i and not data.has_edge(v, assignment[j]):
                    ok = False
                    break
            if ok:
                for j in query.predecessors(i):
                    if j < i and not data.has_edge(assignment[j], v):
                        ok = False
                        break
            if ok:
                assignment[i] = v
                used.add(v)
                keep = backtrack(i + 1)
                used.discard(v)
                assignment[i] = -1
                if not keep:
                    return False
        return True

    backtrack(0)
    return results
