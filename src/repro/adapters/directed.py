"""Directed matching through a vertex-labeled undirected reduction.

Reduction (standard edge-gadget construction): every directed edge
``u -> v`` becomes a two-vertex gadget chain

::

    u --- s --- t --- v        l(s) = ("dir", "src"), l(t) = ("dir", "dst")

while original vertices keep their labels under a ``("v", label)``
namespace.  Original vertices are numbered first, so embeddings project
back by truncation.

Why the reduction is exact (both directions):

* *Directed => reduced.*  A directed embedding extends uniquely to the
  reduced graphs: each query edge's gadget maps to the gadget of its
  (unique) image edge.
* *Reduced => directed.*  Labels separate original vertices from gadget
  vertices.  A query ``s``-vertex is adjacent to one original vertex
  ``u`` and one ``t``-vertex; its image must be a data ``s``-vertex,
  whose neighbors are exactly the source of one data edge and that
  edge's ``t``-vertex.  The query edges ``(u, s)``, ``(s, t)``,
  ``(t, v)`` therefore force ``image(u)`` to be the data edge's source
  and ``image(v)`` its target — orientation is preserved.  Injectivity
  of gadget vertices is implied by injectivity of the original vertices
  (each data gadget belongs to one vertex pair).

The reduction multiplies the instance by O(|E|) vertices, which is the
price of reusing the vertex-labeled machinery unchanged — matching the
paper's remark that the adaptation is easy, not free.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.adapters.digraph import DiGraph
from repro.core.config import GuPConfig
from repro.core.engine import match as vertex_labeled_match
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.matching.limits import SearchLimits
from repro.matching.result import MatchResult, TerminationStatus

SRC_LABEL = ("dir", "src")
DST_LABEL = ("dir", "dst")


def directed_to_undirected(graph: DiGraph) -> Graph:
    """The edge-gadget reduction; original vertices keep ids 0..n-1."""
    builder = GraphBuilder()
    for v in graph.vertices():
        builder.add_vertex(("v", graph.label(v)))
    for u, v in graph.edges():
        s = builder.add_vertex(SRC_LABEL)
        t = builder.add_vertex(DST_LABEL)
        builder.add_edge(u, s)
        builder.add_edge(s, t)
        builder.add_edge(t, v)
    return builder.build()


def project_embedding(
    embedding: Tuple[int, ...],
    num_query_vertices: int,
) -> Tuple[int, ...]:
    """Restrict a reduced embedding to the original query vertices."""
    return embedding[:num_query_vertices]


def match_directed(
    query: DiGraph,
    data: DiGraph,
    config: Optional[GuPConfig] = None,
    limits: Optional[SearchLimits] = None,
) -> MatchResult:
    """Directed subgraph matching via the reduction + any GuP config.

    Returns a :class:`MatchResult` whose embeddings are tuples over the
    *original* directed query vertices.  The embedding count is exact:
    directed embeddings and reduced embeddings are in bijection.
    """
    if query.num_vertices == 0:
        return MatchResult(
            embeddings=[()],
            num_embeddings=1,
            status=TerminationStatus.COMPLETE,
            elapsed_seconds=0.0,
            method="GuP-directed",
        )
    reduced_query = directed_to_undirected(query)
    reduced_data = directed_to_undirected(data)
    result = vertex_labeled_match(
        reduced_query, reduced_data, config=config, limits=limits
    )
    projected: List[Tuple[int, ...]] = [
        project_embedding(e, query.num_vertices) for e in result.embeddings
    ]
    result.embeddings = projected
    result.method = "GuP-directed"
    return result
