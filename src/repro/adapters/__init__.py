"""Adapters: other graph kinds reduced to vertex-labeled matching.

The paper (§2.2) focuses on vertex-labeled simple undirected graphs and
notes that "our method can easily adapt to other kinds of graphs, such
as directed graphs and edge-labeled graphs".  This package realizes
that claim through *sound reductions*: directed or edge-labeled
instances are translated into vertex-labeled undirected ones (edge
gadgets carrying direction/label information as fresh vertex labels),
matched with any engine in the repository, and the embeddings are
projected back.  Each reduction comes with a brute-force oracle and
property tests establishing the exact embedding correspondence.

* :class:`~repro.adapters.digraph.DiGraph` +
  :func:`~repro.adapters.directed.match_directed`
* :class:`~repro.adapters.edge_labels.EdgeLabeledGraph` +
  :func:`~repro.adapters.edge_labels.match_edge_labeled`
"""

from repro.adapters.digraph import DiGraph, enumerate_directed_embeddings
from repro.adapters.directed import (
    directed_to_undirected,
    match_directed,
)
from repro.adapters.edge_labels import (
    EdgeLabeledGraph,
    edge_labeled_to_vertex_labeled,
    enumerate_edge_labeled_embeddings,
    match_edge_labeled,
)

__all__ = [
    "DiGraph",
    "EdgeLabeledGraph",
    "directed_to_undirected",
    "edge_labeled_to_vertex_labeled",
    "enumerate_directed_embeddings",
    "enumerate_edge_labeled_embeddings",
    "match_directed",
    "match_edge_labeled",
]
