"""RI's matching order (Bonnici et al. [5]): structure only (GQL-R, §4.1).

RI ignores the data graph entirely.  It starts from a maximum-degree
query vertex and greedily appends the vertex with (1) the most neighbors
already placed, (2) the most neighbors adjacent to the placed set's
frontier (lookahead), (3) the highest degree.  Sun & Luo's GQL-R baseline
combines this order with GraphQL's filter.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.graph.graph import Graph
from repro.ordering.base import register_ordering


@register_ordering("ri")
def ri_order(query: Graph, candidates: Sequence[Sequence[int]]) -> List[int]:
    """RI structural order; ``candidates`` is accepted but unused."""
    n = query.num_vertices
    if n == 0:
        return []

    start = max(query.vertices(), key=lambda u: (query.degree(u), -u))
    order = [start]
    placed: Set[int] = {start}

    while len(order) < n:
        frontier = {
            w
            for u in placed
            for w in query.neighbors(u)
            if w not in placed
        }
        if not frontier:
            frontier = {u for u in range(n) if u not in placed}
        unplaced_adjacent_to_placed = frontier

        def key(u: int) -> tuple:
            backward = sum(1 for w in query.neighbors(u) if w in placed)
            lookahead = sum(
                1
                for w in query.neighbors(u)
                if w not in placed and w in unplaced_adjacent_to_placed
            )
            return (backward, lookahead, query.degree(u), -u)

        nxt = max(frontier, key=key)
        order.append(nxt)
        placed.add(nxt)
    return order
