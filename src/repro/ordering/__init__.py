"""Matching-order optimizers (§2.1 "Optimization of matching order").

A matching order is a permutation of the query vertices; all engines here
assume (like the paper, §2.2) that after reordering, the order is simply
ascending vertex id and is a *connected order* — every vertex except the
first has a backward neighbor.

* :func:`~repro.ordering.vc.vc_order` — vertex-cover-seeded greedy order
  (the order GuP uses, after Sun & Luo [36]).
* :func:`~repro.ordering.gql.gql_order` — GraphQL's candidate-count
  greedy order (GQL-G baseline).
* :func:`~repro.ordering.ri.ri_order` — RI's structure-only order
  (GQL-R baseline).
"""

from repro.ordering.base import (
    ORDERINGS,
    apply_matching_order,
    is_connected_order,
    make_order,
    repair_connected_order,
)
from repro.ordering.gql import gql_order
from repro.ordering.ri import ri_order
from repro.ordering.vc import vc_order

__all__ = [
    "ORDERINGS",
    "apply_matching_order",
    "gql_order",
    "is_connected_order",
    "make_order",
    "repair_connected_order",
    "ri_order",
    "vc_order",
]
