"""Matching-order plumbing shared by all order optimizers.

The crucial invariant is the *connected order* property (§2.2): every
query vertex except the first must have a neighbor earlier in the order.
Under it, every partial embedding of length ``k`` covers exactly
``u_0 .. u_{k-1}`` and each new assignment is constrained by at least one
backward edge.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Set, Tuple

from repro.graph.graph import Graph


def is_connected_order(query: Graph, order: Sequence[int]) -> bool:
    """Whether ``order`` is a connected matching order for ``query``."""
    if sorted(order) != list(range(query.num_vertices)):
        return False
    placed: Set[int] = set()
    for position, u in enumerate(order):
        if position > 0 and not any(w in placed for w in query.neighbors(u)):
            return False
        placed.add(u)
    return True


def repair_connected_order(query: Graph, order: Sequence[int]) -> List[int]:
    """Stable-repair an order into a connected order.

    Greedily emits the earliest-ranked vertex that is adjacent to the
    emitted prefix (the first vertex is kept).  For connected queries the
    result is always a valid connected order that deviates minimally from
    the requested ranking.
    """
    n = query.num_vertices
    if n == 0:
        return []
    rank = {u: position for position, u in enumerate(order)}
    emitted: List[int] = [order[0]]
    placed = {order[0]}
    frontier: Set[int] = set(query.neighbors(order[0]))
    while len(emitted) < n:
        available = frontier - placed
        if not available:
            # Disconnected query: fall back to the next unplaced vertex.
            available = {u for u in range(n) if u not in placed}
        nxt = min(available, key=lambda u: rank.get(u, n))
        emitted.append(nxt)
        placed.add(nxt)
        frontier.update(query.neighbors(nxt))
    return emitted


def apply_matching_order(query: Graph, order: Sequence[int]) -> Tuple[Graph, List[int]]:
    """Renumber ``query`` so the matching order becomes ``0, 1, 2, ...``.

    Returns the reordered graph and the order itself (new id ``i`` is old
    id ``order[i]``).  Embeddings of the reordered query map back to the
    original through the same permutation.
    """
    return query.relabeled(list(order)), list(order)


OrderFn = Callable[[Graph, Sequence[Sequence[int]]], List[int]]

ORDERINGS: Dict[str, OrderFn] = {}


def register_ordering(name: str) -> Callable[[OrderFn], OrderFn]:
    """Decorator adding an order optimizer to the registry."""

    def deco(fn: OrderFn) -> OrderFn:
        ORDERINGS[name] = fn
        return fn

    return deco


def make_order(
    name: str,
    query: Graph,
    candidates: Sequence[Sequence[int]],
) -> List[int]:
    """Dispatch to a registered order optimizer by name."""
    try:
        fn = ORDERINGS[name]
    except KeyError:
        raise ValueError(
            f"unknown ordering {name!r}; expected one of {sorted(ORDERINGS)}"
        ) from None
    return fn(query, candidates)
