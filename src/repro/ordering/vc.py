"""VC matching order (Sun & Luo [36]) — the order GuP uses (§3.1).

The published idea: cover the query's edges with a (small) vertex cover;
matching the cover vertices first constrains every query edge as early as
possible, shrinking the search space for the remaining vertices.  Our
implementation seeds a minimum vertex cover (exact for the small query
graphs used throughout, greedy 2-approx beyond that), then grows a
connected order that prefers cover vertices and, among those, vertices
with few candidates and many backward neighbors.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.graph.graph import Graph
from repro.ordering.base import register_ordering
from repro.utils.vertexcover import approx_vertex_cover, exact_vertex_cover

_EXACT_COVER_LIMIT = 12  # branching budget; queries here are 8-32 vertices


def _query_vertex_cover(query: Graph) -> Set[int]:
    edges = list(query.edges())
    if not edges:
        return set()
    exact = exact_vertex_cover(edges, max_size=min(_EXACT_COVER_LIMIT, query.num_vertices))
    if exact is not None:
        return set(exact)
    return set(approx_vertex_cover(edges))


@register_ordering("vc")
def vc_order(query: Graph, candidates: Sequence[Sequence[int]]) -> List[int]:
    """Vertex-cover-first connected order.

    Selection key for the next vertex (most important first):

    1. cover membership — cover vertices before non-cover vertices;
    2. more backward neighbors already placed (tighter constraints);
    3. fewer candidates;
    4. higher degree;
    5. vertex id (determinism).
    """
    n = query.num_vertices
    if n == 0:
        return []
    cover = _query_vertex_cover(query)
    sizes = [len(c) for c in candidates]

    def start_key(u: int) -> tuple:
        return (u not in cover, sizes[u], -query.degree(u), u)

    start = min(query.vertices(), key=start_key)
    order = [start]
    placed = {start}

    def next_key(u: int) -> tuple:
        backward = sum(1 for w in query.neighbors(u) if w in placed)
        return (u not in cover, -backward, sizes[u], -query.degree(u), u)

    while len(order) < n:
        frontier = {
            w
            for u in placed
            for w in query.neighbors(u)
            if w not in placed
        }
        if not frontier:
            frontier = {u for u in range(n) if u not in placed}
        nxt = min(frontier, key=next_key)
        order.append(nxt)
        placed.add(nxt)
    return order
