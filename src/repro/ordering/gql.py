"""GraphQL's matching order [16]: candidate-count greedy (GQL-G, §4.1).

Pick the query vertex with the fewest candidates first, then repeatedly
pick the connected unplaced vertex with the fewest candidates — a
left-deep greedy that keeps the estimated branching factor small.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.graph.graph import Graph
from repro.ordering.base import register_ordering


@register_ordering("gql")
def gql_order(query: Graph, candidates: Sequence[Sequence[int]]) -> List[int]:
    """Connected order by ascending candidate count."""
    n = query.num_vertices
    if n == 0:
        return []
    sizes = [len(c) for c in candidates]

    start = min(query.vertices(), key=lambda u: (sizes[u], -query.degree(u), u))
    order = [start]
    placed = {start}
    while len(order) < n:
        frontier = {
            w
            for u in placed
            for w in query.neighbors(u)
            if w not in placed
        }
        if not frontier:
            frontier = {u for u in range(n) if u not in placed}
        nxt = min(frontier, key=lambda u: (sizes[u], -query.degree(u), u))
        order.append(nxt)
        placed.add(nxt)
    return order
