"""Baseline subgraph matchers (§4.1) and the method registry.

The paper compares GuP against DAF [14], GQL-G / GQL-R [35], and
RapidMatch [37]; our differential tests additionally use a VF2-style
brute-force oracle.  All engines speak the shared
:class:`~repro.matching.result.MatchResult` vocabulary, and
:data:`~repro.baselines.registry.MATCHERS` maps the paper's method names
to runnable engines for the benchmark harness.
"""

from repro.baselines.backtracking import BacktrackingMatcher
from repro.baselines.daf import DafMatcher
from repro.baselines.gql import GqlGMatcher, GqlRMatcher
from repro.baselines.joins import RapidMatchStyleMatcher
from repro.baselines.registry import MATCHERS, get_matcher
from repro.baselines.vf2 import Vf2Matcher, enumerate_embeddings_bruteforce

__all__ = [
    "BacktrackingMatcher",
    "DafMatcher",
    "GqlGMatcher",
    "GqlRMatcher",
    "MATCHERS",
    "RapidMatchStyleMatcher",
    "Vf2Matcher",
    "enumerate_embeddings_bruteforce",
    "get_matcher",
]
