"""Generic candidate-space backtracking with optional failing-set pruning.

This engine is the common chassis of the paper's baselines: a filtering
pipeline builds a candidate space, an order optimizer renumbers the
query, and a backtracking search enumerates embeddings, computing local
candidates lazily by intersecting candidate-edge lists of backward
neighbors.  With ``use_failing_set=True`` it additionally performs DAF's
failing-set pruning [14] (§2.1 "Use of nogoods"): every deadend returns
a *failing set* of query vertices, and a node whose child's failing set
does not contain the node's own vertex backjumps immediately.

Failing-set rules (after Han et al. [14], in connected-order form):

* ancestor closure ``anc(u)`` = ``{u}`` plus the closure over backward
  neighbors (computed once per query);
* injectivity conflict between ``u_k`` and ``u_i`` →
  ``anc(u_k) ∪ anc(u_i)``;
* empty local candidate set of ``u_k`` → ``anc(u_k)``;
* interior node: if some child found an embedding, no failing set; if
  some child's failing set omits ``u_k``, that set (and the remaining
  siblings are pruned); otherwise the union of the children's sets.

The contrast the paper draws (§3.4): the failing set is built from
ancestor closures, so it is typically *larger* than GuP's deadend mask,
and DAF discards it after one backjump instead of recording it.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Set, Tuple

from repro.filtering.candidate_space import CandidateSpace, build_candidate_space
from repro.filtering.nlf import nlf_candidates
from repro.graph.graph import Graph
from repro.matching.limits import SearchLimits
from repro.matching.result import MatchResult, SearchStats, TerminationStatus
from repro.ordering.base import make_order
from repro.utils.bitset import iter_bits
from repro.utils.counting import count_injective_assignments


def ancestor_closures(query: Graph) -> List[int]:
    """DAF ancestor closures as bitmasks over a connected-order query.

    ``anc[i]`` = bit ``i`` plus the union of ``anc[j]`` over backward
    neighbors ``j < i``.
    """
    anc: List[int] = []
    for i in query.vertices():
        mask = 1 << i
        for j in query.neighbors(i):
            if j < i:
                mask |= anc[j]
        anc.append(mask)
    return anc


class BacktrackingMatcher:
    """CS-based backtracking baseline.

    Parameters
    ----------
    name:
        Method name reported in results.
    filter_method:
        Candidate filter (see :func:`build_candidate_space`).
    ordering:
        Matching-order optimizer name (see :mod:`repro.ordering`).
    use_failing_set:
        Enable DAF-style failing-set pruning and backjumping.
    """

    def __init__(
        self,
        name: str = "Baseline",
        filter_method: str = "dagdp",
        ordering: str = "gql",
        use_failing_set: bool = False,
        leaf_decomposition: bool = False,
    ) -> None:
        self.name = name
        self.filter_method = filter_method
        self.ordering = ordering
        self.use_failing_set = use_failing_set
        self.leaf_decomposition = leaf_decomposition

    # ------------------------------------------------------------------

    def prepare(self, query: Graph, data: Graph) -> Tuple[Graph, List[int], CandidateSpace]:
        """Filter + order + renumber; shared with the benchmark harness."""
        initial = nlf_candidates(query, data)
        if self.leaf_decomposition:
            from repro.baselines.leaf_decomposition import leaf_last_order

            order = leaf_last_order(query, initial)
        else:
            order = make_order(self.ordering, query, initial)
        reordered = query.relabeled(order)
        cs = build_candidate_space(reordered, data, method=self.filter_method)
        return reordered, order, cs

    def match(
        self,
        query: Graph,
        data: Graph,
        limits: Optional[SearchLimits] = None,
    ) -> MatchResult:
        limits = limits or SearchLimits()
        stats = SearchStats()
        prep_start = time.perf_counter()
        n = query.num_vertices
        if n == 0:
            return MatchResult(
                embeddings=[()],
                num_embeddings=1,
                status=TerminationStatus.COMPLETE,
                elapsed_seconds=0.0,
                stats=stats,
                method=self.name,
            )
        reordered, order, cs = self.prepare(query, data)
        preprocessing = time.perf_counter() - prep_start
        stats.candidate_vertices = cs.total_candidates()
        stats.candidate_edges = cs.num_candidate_edges

        started = time.perf_counter()
        status = TerminationStatus.COMPLETE
        results: List[Tuple[int, ...]] = []

        leaf_start = None
        if self.leaf_decomposition:
            from repro.baselines.leaf_decomposition import query_leaves

            num_leaves = len(query_leaves(query))
            if num_leaves:
                leaf_start = n - num_leaves

        if not cs.is_empty():
            searcher = _Search(
                cs,
                limits,
                stats,
                use_failing_set=self.use_failing_set,
                anc=ancestor_closures(reordered) if self.use_failing_set else None,
                leaf_start=leaf_start,
            )
            raw, status = searcher.run()
            for e in raw:
                out = [0] * n
                for position, v in enumerate(e):
                    out[order[position]] = v
                results.append(tuple(out))

        return MatchResult(
            embeddings=results,
            num_embeddings=stats.embeddings_found,
            status=status,
            elapsed_seconds=time.perf_counter() - started,
            stats=stats,
            preprocessing_seconds=preprocessing,
            method=self.name,
        )


class _Search:
    """The recursive search over a prepared candidate space."""

    def __init__(
        self,
        cs: CandidateSpace,
        limits: SearchLimits,
        stats: SearchStats,
        use_failing_set: bool,
        anc: Optional[List[int]],
        leaf_start: Optional[int] = None,
    ) -> None:
        self.cs = cs
        self.limits = limits
        self.stats = stats
        self.use_failing_set = use_failing_set
        self.anc = anc or []
        # Leaf decomposition: from this depth on, every remaining query
        # vertex is a degree-<=1 leaf; in counting mode the completions
        # are counted combinatorially instead of enumerated.
        self.leaf_start = leaf_start
        query = cs.query
        self._n = query.num_vertices
        self._backward: List[Tuple[int, ...]] = [
            tuple(j for j in query.neighbors(i) if j < i) for i in query.vertices()
        ]
        self._data = cs.data
        self._deadline = limits.make_deadline()
        self._embedding: List[int] = []
        self._image: Set[int] = set()
        self._assigner = {}  # data vertex -> query index (failing sets)
        self._results: List[Tuple[int, ...]] = []
        self._aborted = False
        self._status = TerminationStatus.COMPLETE

    def run(self) -> Tuple[List[Tuple[int, ...]], TerminationStatus]:
        self._recurse(0)
        return self._results, self._status

    def _local_candidates(self, k: int) -> Sequence[int]:
        """Lazy local candidates: intersect backward candidate edges.

        Dense-index form: each backward neighbor contributes its
        candidate-edge bitmap over positions of ``C(u_k)``, so the whole
        intersection is ``len(backward)`` big-int ANDs instead of
        per-candidate ``has_edge`` probes; surviving positions decode in
        ascending candidate order (identical to the sorted edge lists).
        """
        backward = self._backward[k]
        cs = self.cs
        if not backward:
            return cs.candidates[k]
        embedding = self._embedding
        mask = -1
        for j in backward:
            mask &= cs.edge_bitmap(j, embedding[j], k)
            if not mask:
                return ()
        cands_k = cs.candidates[k]
        return [cands_k[p] for p in iter_bits(mask)]

    def _recurse(self, k: int) -> Tuple[bool, int]:
        """Returns (found_any, failing_set_mask)."""
        stats = self.stats
        stats.recursions += 1
        if self._deadline.poll() or self.limits.recursions_exhausted(
            stats.recursions
        ):
            self._aborted = True
            self._status = TerminationStatus.TIMEOUT
        if self._aborted:
            return (False, 0)
        if k == self._n:
            stats.embeddings_found += 1
            if self.limits.collect:
                self._results.append(tuple(self._embedding))
            if self.limits.embeddings_reached(stats.embeddings_found):
                self._aborted = True
                self._status = TerminationStatus.EMBEDDING_LIMIT
            return (True, 0)
        if (
            self.leaf_start is not None
            and k == self.leaf_start
            and not self.limits.collect
        ):
            return self._count_leaf_completions(k)

        use_fs = self.use_failing_set
        k_bit = 1 << k
        candidates = self._local_candidates(k)
        found_any = False
        union_fs = 0
        empty = True

        for v in candidates:
            stats.local_candidates_seen += 1
            empty = False
            if v in self._image:
                stats.pruned_injectivity += 1
                if use_fs:
                    union_fs |= self.anc[k] | self.anc[self._assigner[v]]
                continue
            self._embedding.append(v)
            self._image.add(v)
            if use_fs:
                self._assigner[v] = k
            child_found, child_fs = self._recurse(k + 1)
            self._embedding.pop()
            self._image.discard(v)
            if use_fs:
                self._assigner.pop(v, None)
            if self._aborted:
                return (found_any or child_found, 0)
            if child_found:
                found_any = True
            else:
                stats.futile_recursions += 1
                if use_fs:
                    if not child_fs & k_bit:
                        # Failing set without u_k: this whole node is
                        # doomed for the same reason — backjump.
                        stats.backjumps += 1
                        return (found_any, child_fs)
                    union_fs |= child_fs

        if not use_fs:
            return (found_any, 0)
        if found_any:
            return (True, 0)
        # §3.4 accounting: size of the failing set this deadend yields
        # (DAF's analogue of GuP's discovered nogood).
        fs = self.anc[k] if empty else union_fs
        self.stats.nogood_size_sum += fs.bit_count()
        self.stats.nogood_size_count += 1
        return (False, fs)

    def _count_leaf_completions(self, k: int) -> Tuple[bool, int]:
        """DAF's leaf-counting shortcut (no recursions consumed).

        The remaining query vertices are all leaves: completions are the
        injective choices of one unused candidate per leaf.  The count
        is clamped to the embedding cap exactly like enumeration.
        """
        image = self._image
        sets = []
        for leaf in range(k, self._n):
            cands = self._local_candidates(leaf)
            sets.append({v for v in cands if v not in image})
        count = count_injective_assignments(sets)
        if count == 0:
            # Sound (never backjumps): include every query vertex.
            return (False, (1 << self._n) - 1 if self.use_failing_set else 0)
        limits = self.limits
        if limits.max_embeddings is not None:
            remaining = limits.max_embeddings - self.stats.embeddings_found
            if count >= remaining:
                count = remaining
                self._aborted = True
                self._status = TerminationStatus.EMBEDDING_LIMIT
        self.stats.embeddings_found += count
        return (True, 0)
