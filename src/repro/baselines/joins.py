"""RapidMatch-style join engine (Sun et al. [37], §4.1).

RapidMatch treats subgraph matching as a multi-way join over the
candidate-edge relations of the query edges and evaluates it with
worst-case-optimal set intersections.  Our reproduction keeps the parts
that matter for the comparison:

* relations are the candidate-edge lists of a (NLF-filtered) candidate
  space — RapidMatch's relation filter;
* the join order is a density-greedy connected vertex order (its
  "nucleus decomposition" ordering seeds from the densest region);
* each vertex is bound by *intersecting* the adjacency relations of all
  bound query neighbors (leapfrog-style), rather than by refining
  per-level candidate lists;
* failing-set pruning is applied (the paper notes all compared methods
  employ it).

This is intentionally a different evaluation strategy from
:class:`~repro.baselines.backtracking.BacktrackingMatcher` (lazy
multi-way intersection vs. seeded filtering), mirroring the join-based /
backtracking-based split in the original evaluation.
"""

from __future__ import annotations

import time
from typing import List, Optional, Set, Tuple

from repro.baselines.backtracking import ancestor_closures
from repro.filtering.candidate_space import CandidateSpace, build_candidate_space
from repro.graph.algorithms import core_numbers
from repro.graph.graph import Graph
from repro.matching.limits import SearchLimits
from repro.matching.result import MatchResult, SearchStats, TerminationStatus


def _density_order(query: Graph) -> List[int]:
    """Connected order seeded from the densest (highest-core) region."""
    n = query.num_vertices
    core = core_numbers(query)
    start = max(query.vertices(), key=lambda u: (core[u], query.degree(u), -u))
    order = [start]
    placed = {start}
    while len(order) < n:
        frontier = {
            w for u in placed for w in query.neighbors(u) if w not in placed
        }
        if not frontier:
            frontier = {u for u in range(n) if u not in placed}

        def key(u: int) -> tuple:
            backward = sum(1 for w in query.neighbors(u) if w in placed)
            return (backward, core[u], query.degree(u), -u)

        nxt = max(frontier, key=key)
        order.append(nxt)
        placed.add(nxt)
    return order


class RapidMatchStyleMatcher:
    """Join-based matcher over candidate-edge relations."""

    name = "RM"

    def __init__(self, use_failing_set: bool = True) -> None:
        self.use_failing_set = use_failing_set

    def match(
        self,
        query: Graph,
        data: Graph,
        limits: Optional[SearchLimits] = None,
    ) -> MatchResult:
        limits = limits or SearchLimits()
        stats = SearchStats()
        n = query.num_vertices
        if n == 0:
            return MatchResult(
                embeddings=[()],
                num_embeddings=1,
                status=TerminationStatus.COMPLETE,
                elapsed_seconds=0.0,
                stats=stats,
                method=self.name,
            )

        prep_start = time.perf_counter()
        order = _density_order(query)
        reordered = query.relabeled(order)
        cs = build_candidate_space(reordered, data, method="nlf")
        preprocessing = time.perf_counter() - prep_start
        stats.candidate_vertices = cs.total_candidates()
        stats.candidate_edges = cs.num_candidate_edges

        started = time.perf_counter()
        results: List[Tuple[int, ...]] = []
        status = TerminationStatus.COMPLETE
        if not cs.is_empty():
            raw, status = _JoinSearch(
                cs, limits, stats, self.use_failing_set
            ).run()
            for e in raw:
                out = [0] * n
                for position, v in enumerate(e):
                    out[order[position]] = v
                results.append(tuple(out))

        return MatchResult(
            embeddings=results,
            num_embeddings=stats.embeddings_found,
            status=status,
            elapsed_seconds=time.perf_counter() - started,
            stats=stats,
            preprocessing_seconds=preprocessing,
            method=self.name,
        )


class _JoinSearch:
    """Leapfrog-style enumeration: intersect all bound neighbor relations."""

    def __init__(
        self,
        cs: CandidateSpace,
        limits: SearchLimits,
        stats: SearchStats,
        use_failing_set: bool,
    ) -> None:
        self.cs = cs
        self.limits = limits
        self.stats = stats
        self.use_failing_set = use_failing_set
        query = cs.query
        self._n = query.num_vertices
        self._backward = [
            tuple(j for j in query.neighbors(i) if j < i) for i in query.vertices()
        ]
        self._anc = ancestor_closures(query) if use_failing_set else []
        self._deadline = limits.make_deadline()
        self._embedding: List[int] = []
        self._image: Set[int] = set()
        self._assigner = {}
        self._results: List[Tuple[int, ...]] = []
        self._aborted = False
        self._status = TerminationStatus.COMPLETE

    def run(self) -> Tuple[List[Tuple[int, ...]], TerminationStatus]:
        self._recurse(0)
        return self._results, self._status

    def _intersect(self, k: int) -> List[int]:
        """Worst-case-optimal binding: intersect every backward relation."""
        backward = self._backward[k]
        if not backward:
            return list(self.cs.candidates[k])
        embedding = self._embedding
        lists = [
            self.cs.adjacent_candidates(j, embedding[j], k) for j in backward
        ]
        lists.sort(key=len)
        out = list(lists[0])
        for other in lists[1:]:
            if not out:
                break
            oset = set(other)
            out = [v for v in out if v in oset]
        return out

    def _recurse(self, k: int) -> Tuple[bool, int]:
        stats = self.stats
        stats.recursions += 1
        if self._deadline.poll() or self.limits.recursions_exhausted(
            stats.recursions
        ):
            self._aborted = True
            self._status = TerminationStatus.TIMEOUT
        if self._aborted:
            return (False, 0)
        if k == self._n:
            stats.embeddings_found += 1
            if self.limits.collect:
                self._results.append(tuple(self._embedding))
            if self.limits.embeddings_reached(stats.embeddings_found):
                self._aborted = True
                self._status = TerminationStatus.EMBEDDING_LIMIT
            return (True, 0)

        use_fs = self.use_failing_set
        k_bit = 1 << k
        found_any = False
        union_fs = 0
        candidates = self._intersect(k)
        if not candidates:
            return (False, self._anc[k] if use_fs else 0)

        for v in candidates:
            stats.local_candidates_seen += 1
            if v in self._image:
                stats.pruned_injectivity += 1
                if use_fs:
                    union_fs |= self._anc[k] | self._anc[self._assigner[v]]
                continue
            self._embedding.append(v)
            self._image.add(v)
            if use_fs:
                self._assigner[v] = k
            child_found, child_fs = self._recurse(k + 1)
            self._embedding.pop()
            self._image.discard(v)
            if use_fs:
                self._assigner.pop(v, None)
            if self._aborted:
                return (found_any or child_found, 0)
            if child_found:
                found_any = True
            else:
                stats.futile_recursions += 1
                if use_fs:
                    if not child_fs & k_bit:
                        stats.backjumps += 1
                        return (found_any, child_fs)
                    union_fs |= child_fs

        if found_any or not use_fs:
            return (found_any, 0)
        return (False, union_fs)
