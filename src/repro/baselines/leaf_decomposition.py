"""Leaf decomposition (DAF [14]; mentioned in §4.2.3).

DAF matches the query's degree-1 *leaves* after everything else: the
non-leaf core is searched by backtracking, and each core embedding's
leaf completions are counted combinatorially instead of enumerated.
(The paper excludes DAF from its recursion-count figure precisely
because of this: leaf work does not show up as recursions.)

This module provides

* :func:`query_leaves` — the degree-1 vertices whose neighbor is not
  itself a leaf (for a single-edge query one endpoint stays core);
* :func:`leaf_last_order` — a connected matching order that places the
  core first (candidate-count greedy) and all leaves last;
* the counting hook used by
  :class:`~repro.baselines.backtracking._Search` when
  ``BacktrackingMatcher(leaf_decomposition=True)``: on reaching the
  first leaf level in counting mode, the number of completions is the
  number of injective leaf assignments
  (:func:`repro.utils.counting.count_injective_assignments`), computed
  without any further recursion.

Enumeration (``collect=True``) still walks the leaf levels — the
shortcut only accelerates counting, exactly like DAF's implementation.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.graph.graph import Graph
from repro.ordering.gql import gql_order


def query_leaves(query: Graph) -> List[int]:
    """Degree-<=1 vertices matched last under leaf decomposition.

    A degree-1 vertex whose only neighbor is also degree-1 (an isolated
    edge) keeps its lower-id endpoint in the core so the core stays
    nonempty per component; degree-0 vertices are always leaves.
    """
    leaves: List[int] = []
    for u in query.vertices():
        degree = query.degree(u)
        if degree == 0:
            leaves.append(u)
        elif degree == 1:
            (neighbor,) = query.neighbors(u)
            if query.degree(neighbor) > 1 or neighbor < u:
                leaves.append(u)
    if len(leaves) == query.num_vertices and leaves:
        # Fully degenerate query (single vertex): keep one in the core.
        leaves = leaves[1:]
    return leaves


def leaf_last_order(query: Graph, candidates: Sequence[Sequence[int]]) -> List[int]:
    """Connected order: candidate-count greedy core, then the leaves.

    Leaves are appended grouped after their parents (ascending parent
    position), so the order remains a connected order.
    """
    leaves = set(query_leaves(query))
    if not leaves:
        return gql_order(query, candidates)

    core = [u for u in query.vertices() if u not in leaves]
    n = query.num_vertices
    sizes = [len(c) for c in candidates]

    order: List[int] = []
    placed: Set[int] = set()
    if core:
        start = min(core, key=lambda u: (sizes[u], -query.degree(u), u))
        order.append(start)
        placed.add(start)
        while len(order) < len(core):
            frontier = {
                w
                for u in placed
                for w in query.neighbors(u)
                if w not in placed and w not in leaves
            }
            if not frontier:
                frontier = {u for u in core if u not in placed}
            nxt = min(frontier, key=lambda u: (sizes[u], -query.degree(u), u))
            order.append(nxt)
            placed.add(nxt)

    position = {u: i for i, u in enumerate(order)}

    def leaf_key(u: int) -> tuple:
        nbrs = query.neighbors(u)
        parent_pos = position.get(nbrs[0], n) if nbrs else n
        return (parent_pos, sizes[u], u)

    for u in sorted(leaves, key=leaf_key):
        order.append(u)
    return order
