"""DAF baseline [14]: DAG-graph DP filtering + failing-set pruning.

DAF (Han et al., SIGMOD 2019) introduced the combination the paper
builds on: a query DAG drives dynamic-programming candidate filtering,
an adaptive candidate-size order drives the search, and failing sets
drive backjumping.  Our reproduction uses the same filtering
(:func:`repro.filtering.dagdp.dag_graph_dp`), a candidate-size greedy
order (the GQL order is the closest stand-in for DAF's adaptive order in
a static-order framework), and the failing-set machinery of
:class:`~repro.baselines.backtracking.BacktrackingMatcher`.
"""

from __future__ import annotations

from repro.baselines.backtracking import BacktrackingMatcher


class DafMatcher(BacktrackingMatcher):
    """DAF: DAG-graph DP filter, candidate-size order, failing sets.

    ``leaf_decomposition=True`` additionally enables DAF's leaf-last
    ordering and combinatorial leaf counting (§4.2.3 mentions DAF uses
    it; off by default here so the recursion-budget harness compares
    like with like — leaf counting consumes no recursions).
    """

    def __init__(self, leaf_decomposition: bool = False) -> None:
        super().__init__(
            name="DAF",
            filter_method="dagdp",
            ordering="gql",
            use_failing_set=True,
            leaf_decomposition=leaf_decomposition,
        )
