"""Method registry: the paper's method names -> runnable engines.

Every entry exposes ``match(query, data, limits) -> MatchResult``.  The
benchmark harness and the differential tests iterate this registry, so
adding a matcher here automatically includes it everywhere.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol

from repro.baselines.backtracking import BacktrackingMatcher
from repro.baselines.daf import DafMatcher
from repro.baselines.gql import GqlGMatcher, GqlRMatcher
from repro.baselines.joins import RapidMatchStyleMatcher
from repro.baselines.vf2 import Vf2Matcher
from repro.core.config import GuPConfig
from repro.core.engine import GuPEngine
from repro.graph.graph import Graph
from repro.matching.limits import SearchLimits
from repro.matching.result import MatchResult


class Matcher(Protocol):
    """Anything that can match a query against a data graph."""

    name: str

    def match(
        self,
        query: Graph,
        data: Graph,
        limits: Optional[SearchLimits] = None,
    ) -> MatchResult:
        ...


class GuPMatcher:
    """Adapter giving :class:`GuPEngine` the registry's interface.

    The engine (and with it the data-side filter artifacts and the
    build-invariant cache) is kept as long as consecutive calls target
    the *same* data graph — the benchmark harness feeds whole query
    sets against one graph, and rebuilding :class:`DataArtifacts` per
    query would charge the per-graph cost to every query.  Results are
    identical either way.
    """

    def __init__(self, config: Optional[GuPConfig] = None, name: str = "GuP") -> None:
        self.config = config or GuPConfig()
        self.name = name
        self._engine: Optional[GuPEngine] = None

    def match(
        self,
        query: Graph,
        data: Graph,
        limits: Optional[SearchLimits] = None,
    ) -> MatchResult:
        engine = self._engine
        if engine is None or engine.data is not data:
            engine = self._engine = GuPEngine(data, self.config)
        result = engine.match(query, limits=limits)
        result.method = self.name
        return result


def _baseline() -> BacktrackingMatcher:
    return BacktrackingMatcher(
        name="Baseline", filter_method="dagdp", ordering="vc", use_failing_set=False
    )


MATCHER_FACTORIES: Dict[str, Callable[[], Matcher]] = {
    "GuP": GuPMatcher,
    "DAF": DafMatcher,
    "GQL-G": GqlGMatcher,
    "GQL-R": GqlRMatcher,
    "RM": RapidMatchStyleMatcher,
    "Baseline": _baseline,
    "VF2": Vf2Matcher,
}

MATCHERS = sorted(MATCHER_FACTORIES)

PAPER_METHODS = ("GuP", "DAF", "GQL-G", "GQL-R", "RM")
"""The five methods of the paper's evaluation tables."""


def get_matcher(name: str) -> Matcher:
    """Instantiate a matcher by its paper name."""
    try:
        factory = MATCHER_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown matcher {name!r}; expected one of {MATCHERS}"
        ) from None
    return factory()
