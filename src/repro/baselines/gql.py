"""GQL-G and GQL-R baselines (Sun & Luo [35], §4.1).

Sun & Luo's in-depth study found the strongest classical combinations to
be GraphQL's pseudo-matching filter with (G) GraphQL's candidate-count
order or (R) RI's structural order; their harness also equips both with
failing-set pruning, which the paper inherits ("all of them ... employ
failing set-based pruning").
"""

from __future__ import annotations

from repro.baselines.backtracking import BacktrackingMatcher


class GqlGMatcher(BacktrackingMatcher):
    """GQL-G: GraphQL filter + GraphQL order + failing sets."""

    def __init__(self) -> None:
        super().__init__(
            name="GQL-G",
            filter_method="gql",
            ordering="gql",
            use_failing_set=True,
        )


class GqlRMatcher(BacktrackingMatcher):
    """GQL-R: GraphQL filter + RI order + failing sets."""

    def __init__(self) -> None:
        super().__init__(
            name="GQL-R",
            filter_method="gql",
            ordering="ri",
            use_failing_set=True,
        )
