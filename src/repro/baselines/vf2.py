"""VF2-style brute-force matcher — the correctness oracle.

Deliberately simple: no candidate space, no ordering optimization, no
pruning beyond the three isomorphism constraints checked incrementally.
Every other engine in the repository is differentially tested against
this one, so clarity beats speed here.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from repro.graph.graph import Graph
from repro.matching.limits import SearchLimits
from repro.matching.result import MatchResult, SearchStats, TerminationStatus
from repro.ordering.base import repair_connected_order


def enumerate_embeddings_bruteforce(
    query: Graph,
    data: Graph,
    max_embeddings: Optional[int] = None,
) -> List[Tuple[int, ...]]:
    """All embeddings of ``query`` in ``data`` by label-aware backtracking.

    Returns embeddings in original query numbering; used directly by the
    property-based tests.
    """
    return Vf2Matcher().match(
        query, data, SearchLimits(max_embeddings=max_embeddings)
    ).embeddings


class Vf2Matcher:
    """Classic recursive matcher in the style of VF2 / Ullmann."""

    name = "VF2"

    def match(
        self,
        query: Graph,
        data: Graph,
        limits: Optional[SearchLimits] = None,
    ) -> MatchResult:
        limits = limits or SearchLimits()
        stats = SearchStats()
        started = time.perf_counter()
        n = query.num_vertices

        if n == 0:
            return MatchResult(
                embeddings=[()],
                num_embeddings=1,
                status=TerminationStatus.COMPLETE,
                elapsed_seconds=time.perf_counter() - started,
                stats=stats,
                method=self.name,
            )

        # A connected order keeps extension checks local; fall back to a
        # repaired identity order for disconnected queries.
        order = repair_connected_order(query, list(range(n)))
        backward: List[List[int]] = []
        position = {u: p for p, u in enumerate(order)}
        for p, u in enumerate(order):
            backward.append([w for w in query.neighbors(u) if position[w] < p])

        deadline = limits.make_deadline()
        results: List[Tuple[int, ...]] = []
        assignment = [-1] * n  # indexed by original query vertex id
        used = set()
        status = [TerminationStatus.COMPLETE]

        def recurse(p: int) -> bool:
            """Returns False when the search must stop entirely."""
            stats.recursions += 1
            if deadline.poll() or limits.recursions_exhausted(stats.recursions):
                status[0] = TerminationStatus.TIMEOUT
                return False
            if p == n:
                stats.embeddings_found += 1
                if limits.collect:
                    results.append(tuple(assignment))
                if limits.embeddings_reached(stats.embeddings_found):
                    status[0] = TerminationStatus.EMBEDDING_LIMIT
                    return False
                return True
            u = order[p]
            label = query.label(u)
            if backward[p]:
                pool = data.neighbors(assignment[backward[p][0]])
            else:
                pool = data.vertices_with_label(label)
            for v in pool:
                if v in used or data.label(v) != label:
                    continue
                if any(
                    not data.has_edge(assignment[w], v) for w in backward[p]
                ):
                    continue
                assignment[u] = v
                used.add(v)
                keep_going = recurse(p + 1)
                used.discard(v)
                assignment[u] = -1
                if not keep_going:
                    return False
            return True

        recurse(0)
        return MatchResult(
            embeddings=results,
            num_embeddings=stats.embeddings_found,
            status=status[0],
            elapsed_seconds=time.perf_counter() - started,
            stats=stats,
            method=self.name,
        )
