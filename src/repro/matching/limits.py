"""Search limits: the paper's harness parameters (§4.1).

The evaluation terminates a query when 10^5 embeddings have been found and
kills it after one hour.  Both knobs live here so every engine enforces
them identically; the scaled-down defaults used by our benchmark harness
are defined in :mod:`repro.bench.runner`, not here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.utils.timer import Deadline


@dataclass(frozen=True)
class SearchLimits:
    """Limits enforced cooperatively by all matchers.

    Attributes
    ----------
    max_embeddings:
        Stop after this many embeddings (``None`` = enumerate all).  The
        paper uses 10^5 for sequential runs and 10^8 for the parallel
        study.
    time_limit:
        Wall-clock seconds before the search aborts (``None`` = no limit).
    collect:
        When false, embeddings are counted but not materialized (saves
        memory for counting workloads).
    """

    max_embeddings: Optional[int] = None
    time_limit: Optional[float] = None
    collect: bool = True
    max_recursions: Optional[int] = None
    """Virtual-time kill switch: abort (as a timeout) once the search has
    performed this many recursions.  Recursions are the paper's own
    machine-independent cost unit (Figs. 7/9); the benchmark harness uses
    this mode to compare search-space sizes without Python's uneven
    constant factors (DESIGN.md §2)."""

    def make_deadline(self) -> Deadline:
        """Fresh :class:`Deadline` for one search run."""
        return Deadline(self.time_limit)

    def embeddings_reached(self, count: int) -> bool:
        """Whether ``count`` embeddings satisfies the cap."""
        return self.max_embeddings is not None and count >= self.max_embeddings

    def recursions_exhausted(self, count: int) -> bool:
        """Whether the virtual-time budget is used up."""
        return self.max_recursions is not None and count >= self.max_recursions


UNLIMITED = SearchLimits()
