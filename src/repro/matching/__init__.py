"""Shared matching machinery: embeddings, verification, limits, results.

Every engine in :mod:`repro.core` and :mod:`repro.baselines` speaks the
same vocabulary defined here, so results are directly comparable:

* an *embedding* is a tuple ``(v_0, v_1, ..., v_{k-1})`` where position
  ``i`` holds the data vertex assigned to query vertex ``u_i`` (§2.2 —
  matching order == ascending query id after reordering);
* :func:`~repro.matching.verify.is_embedding` checks the three
  isomorphism constraints of Definition 2.1;
* :class:`~repro.matching.limits.SearchLimits` carries the embedding cap
  and time limit of the paper's harness (§4.1);
* :class:`~repro.matching.result.MatchResult` bundles embeddings,
  counters, and the termination status.
"""

from repro.matching.embedding import (
    Embedding,
    embedding_image,
    embedding_to_dict,
    restrict_embedding,
)
from repro.matching.limits import SearchLimits
from repro.matching.result import MatchResult, SearchStats, TerminationStatus
from repro.matching.verify import constraint_violations, is_embedding, is_partial_embedding

__all__ = [
    "Embedding",
    "MatchResult",
    "SearchLimits",
    "SearchStats",
    "TerminationStatus",
    "constraint_violations",
    "embedding_image",
    "embedding_to_dict",
    "is_embedding",
    "is_partial_embedding",
    "restrict_embedding",
]
