"""Verification of the isomorphism constraints (Definition 2.1).

These checks are the ground truth for all differential tests: whatever a
matcher outputs must pass :func:`is_embedding`, and the VF2 oracle uses
:func:`is_partial_embedding` as its extension invariant.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.graph.graph import Graph


def constraint_violations(
    query: Graph,
    data: Graph,
    embedding: Sequence[int],
) -> List[str]:
    """Human-readable list of violated constraints (empty when valid).

    Checks, in the paper's order: label constraint, adjacency constraint,
    injectivity constraint.  The embedding must be *full* (cover every
    query vertex) — use :func:`is_partial_embedding` for prefixes.
    """
    problems: List[str] = []
    if len(embedding) != query.num_vertices:
        problems.append(
            f"length {len(embedding)} != |V_Q| = {query.num_vertices}"
        )
        return problems
    for i, v in enumerate(embedding):
        if not (0 <= v < data.num_vertices):
            problems.append(f"u{i} -> v{v} is not a data vertex")
            return problems
        if query.label(i) != data.label(v):
            problems.append(
                f"label: l(u{i})={query.label(i)!r} != l(v{v})={data.label(v)!r}"
            )
    for a, b in query.edges():
        if not data.has_edge(embedding[a], embedding[b]):
            problems.append(
                f"adjacency: (u{a}, u{b}) in E_Q but "
                f"(v{embedding[a]}, v{embedding[b]}) not in E_G"
            )
    if len(set(embedding)) != len(embedding):
        problems.append("injectivity: duplicate data vertex")
    return problems


def is_embedding(query: Graph, data: Graph, embedding: Sequence[int]) -> bool:
    """Whether ``embedding`` is a full embedding of ``query`` in ``data``."""
    return not constraint_violations(query, data, embedding)


def is_partial_embedding(
    query: Graph,
    data: Graph,
    prefix: Sequence[int],
) -> bool:
    """Whether ``prefix`` embeds the subgraph induced by ``u_0..u_{k-1}``.

    A partial embedding must satisfy all three constraints restricted to
    the assigned query vertices (§2.2).
    """
    k = len(prefix)
    if k > query.num_vertices:
        return False
    if len(set(prefix)) != k:
        return False
    for i in range(k):
        v = prefix[i]
        if not (0 <= v < data.num_vertices):
            return False
        if query.label(i) != data.label(v):
            return False
        for j in query.neighbors(i):
            if j < i and not data.has_edge(prefix[j], v):
                return False
    return True


def assert_all_embeddings_valid(
    query: Graph,
    data: Graph,
    embeddings: Sequence[Sequence[int]],
) -> None:
    """Raise ``AssertionError`` listing the first invalid embedding."""
    for embedding in embeddings:
        problems = constraint_violations(query, data, embedding)
        if problems:
            raise AssertionError(
                f"invalid embedding {tuple(embedding)}: " + "; ".join(problems)
            )
