"""Search results and instrumentation counters.

The paper's evaluation reports, besides wall time: the number of
recursions (Fig. 7), futile recursions (Fig. 9), the fraction of local
candidates pruned by guards (§4.2.3), and guard memory (Table 3).  Every
engine fills a :class:`SearchStats` so the benchmark harness can read all
of these uniformly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.matching.embedding import Embedding


class TerminationStatus(enum.Enum):
    """How a search run ended."""

    COMPLETE = "complete"
    """The search space was exhausted; the result is exact."""

    EMBEDDING_LIMIT = "embedding_limit"
    """Stopped after reaching ``max_embeddings`` (paper: 10^5)."""

    TIMEOUT = "timeout"
    """Killed by the per-query time limit (paper: one hour)."""


@dataclass(slots=True)
class SearchStats:
    """Counters accumulated during one backtracking run.

    ``recursions`` counts calls of the backtrack function (Fig. 7);
    ``futile_recursions`` counts recursive calls that led to a deadend —
    i.e. calls whose subtree produced no full embedding (Fig. 9).
    """

    recursions: int = 0
    futile_recursions: int = 0
    embeddings_found: int = 0

    # Candidate-level pruning (GuP §4.2.3: ~11.5% of local candidates).
    local_candidates_seen: int = 0
    pruned_injectivity: int = 0
    pruned_reservation: int = 0
    pruned_nogood_vertex: int = 0
    pruned_nogood_edge: int = 0
    pruned_symmetry: int = 0

    # Guard bookkeeping.
    nogoods_recorded_vertex: int = 0
    nogoods_recorded_edge: int = 0
    backjumps: int = 0

    # Local-candidate refinements performed (one per surviving extension
    # and forward query neighbor — the Definition 3.18 sets computed).
    # The hot-path benchmark reports these per second.
    refine_ops: int = 0

    # Nogood-size accounting (§3.4's comparison: GuP's deadend masks vs
    # DAF's ancestor-closure failing sets).  ``nogood_size_sum`` counts
    # the assignments in each discovered nogood / failing set.
    nogood_size_sum: int = 0
    nogood_size_count: int = 0

    # Filtering-phase statistics.
    candidate_vertices: int = 0
    candidate_edges: int = 0

    def average_nogood_size(self) -> float:
        """Mean assignments per discovered nogood (0 when none found)."""
        if self.nogood_size_count == 0:
            return 0.0
        return self.nogood_size_sum / self.nogood_size_count

    def pruned_by_guards(self) -> int:
        """Local candidates removed by any guard (not plain injectivity)."""
        return (
            self.pruned_reservation
            + self.pruned_nogood_vertex
            + self.pruned_nogood_edge
        )

    def guard_prune_fraction(self) -> float:
        """Fraction of seen local candidates pruned by guards."""
        if self.local_candidates_seen == 0:
            return 0.0
        return self.pruned_by_guards() / self.local_candidates_seen

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another stats object into this one (parallel runs)."""
        self.recursions += other.recursions
        self.futile_recursions += other.futile_recursions
        self.embeddings_found += other.embeddings_found
        self.local_candidates_seen += other.local_candidates_seen
        self.pruned_injectivity += other.pruned_injectivity
        self.pruned_reservation += other.pruned_reservation
        self.pruned_nogood_vertex += other.pruned_nogood_vertex
        self.pruned_nogood_edge += other.pruned_nogood_edge
        self.pruned_symmetry += other.pruned_symmetry
        self.nogoods_recorded_vertex += other.nogoods_recorded_vertex
        self.nogoods_recorded_edge += other.nogoods_recorded_edge
        self.backjumps += other.backjumps
        self.refine_ops += other.refine_ops
        self.nogood_size_sum += other.nogood_size_sum
        self.nogood_size_count += other.nogood_size_count
        self.candidate_vertices += other.candidate_vertices
        self.candidate_edges += other.candidate_edges


@dataclass
class MatchResult:
    """Outcome of one subgraph-matching run.

    ``embeddings`` is empty when the run was configured not to collect
    (``SearchLimits.collect=False``); ``num_embeddings`` is always
    correct.
    """

    embeddings: List[Embedding]
    num_embeddings: int
    status: TerminationStatus
    elapsed_seconds: float
    stats: SearchStats = field(default_factory=SearchStats)
    preprocessing_seconds: float = 0.0
    method: str = ""

    @property
    def complete(self) -> bool:
        """Whether the search exhausted the space (exact result)."""
        return self.status is TerminationStatus.COMPLETE

    @property
    def timed_out(self) -> bool:
        return self.status is TerminationStatus.TIMEOUT

    @property
    def total_seconds(self) -> float:
        """Preprocessing plus search time."""
        return self.preprocessing_seconds + self.elapsed_seconds

    def embedding_set(self) -> frozenset:
        """Embeddings as a set for differential comparisons."""
        return frozenset(tuple(e) for e in self.embeddings)

    def __repr__(self) -> str:
        return (
            f"MatchResult(method={self.method!r}, n={self.num_embeddings}, "
            f"status={self.status.value}, time={self.total_seconds:.4f}s, "
            f"recursions={self.stats.recursions})"
        )
