"""Embedding representation and helpers.

An embedding is a tuple of data-vertex ids indexed by query-vertex id:
``embedding[i]`` is the destination of query vertex ``u_i``.  Partial
embeddings are prefixes (length ``k`` covers ``u_0 .. u_{k-1}``), matching
the paper's connected-order assumption (§2.2).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Sequence, Tuple

Embedding = Tuple[int, ...]


def embedding_to_dict(embedding: Sequence[int]) -> Dict[int, int]:
    """View an embedding as the paper's assignment-set notation."""
    return {i: v for i, v in enumerate(embedding)}


def embedding_image(embedding: Sequence[int]) -> FrozenSet[int]:
    """``Im(M)``: the set of data vertices used by the embedding."""
    return frozenset(embedding)


def restrict_embedding(embedding: Sequence[int], mask: int) -> Tuple[Tuple[int, int], ...]:
    """``M[K]`` for a query-vertex bitmask ``K``.

    Returns the restricted assignment set as sorted ``(query, data)``
    pairs; positions beyond the embedding length are ignored (a mask may
    mention vertices the partial embedding has not reached).
    """
    pairs = []
    for i, v in enumerate(embedding):
        if mask >> i & 1:
            pairs.append((i, v))
    return tuple(pairs)


def extend(embedding: Sequence[int], v: int) -> Embedding:
    """``M ⊕ v``: extend with an assignment to the next query vertex."""
    return tuple(embedding) + (v,)


def images_of_mask(embedding: Sequence[int], mask: int) -> FrozenSet[int]:
    """``Im(M[K])`` for a bitmask ``K``."""
    return frozenset(v for i, v in enumerate(embedding) if mask >> i & 1)
