"""GuP: Fast Subgraph Matching by Guard-based Pruning — reproduction.

A from-scratch Python implementation of GuP (Arai, Fujiwara, Onizuka,
SIGMOD 2023) together with all the substrates its evaluation depends on:
candidate filtering, matching orders, baseline matchers, workload
generators, and a benchmark harness reproducing every table and figure
of the paper's §4.

Quickstart
----------
>>> from repro import GraphBuilder, match
>>> b = GraphBuilder()
>>> ids = b.add_vertices(["A", "B", "A"])
>>> _ = b.add_edges([(0, 1), (1, 2)])
>>> data = b.build()
>>> qb = GraphBuilder()
>>> _ = qb.add_vertices(["A", "B"])
>>> _ = qb.add_edge(0, 1)
>>> query = qb.build()
>>> sorted(match(query, data).embeddings)
[(0, 1), (2, 1)]
"""

from repro.core.config import GuPConfig
from repro.core.engine import GuPEngine, count_embeddings, match
from repro.core.gcs import GuardedCandidateSpace, build_gcs
from repro.core.procpool import match_parallel
from repro.dynamic import ContinuousMatcher, GraphDelta, apply_delta
from repro.filtering.artifacts import DataArtifacts
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.graph.io import load_graph, loads_graph, save_graph, saves_graph
from repro.matching.limits import SearchLimits
from repro.matching.result import MatchResult, SearchStats, TerminationStatus
from repro.matching.verify import is_embedding

__version__ = "1.0.0"

__all__ = [
    "ContinuousMatcher",
    "DataArtifacts",
    "Graph",
    "GraphBuilder",
    "GraphDelta",
    "GuPConfig",
    "apply_delta",
    "GuPEngine",
    "GuardedCandidateSpace",
    "MatchResult",
    "SearchLimits",
    "SearchStats",
    "TerminationStatus",
    "build_gcs",
    "count_embeddings",
    "is_embedding",
    "load_graph",
    "loads_graph",
    "match",
    "match_parallel",
    "save_graph",
    "saves_graph",
    "__version__",
]
