"""GraphQL's pseudo-matching candidate filter (He & Singh [16]).

Candidate ``v`` for query vertex ``u`` survives when the bipartite graph
between ``N(u)`` and ``N(v)`` — with ``u'`` linked to ``v'`` when
``v' ∈ C(u')`` — admits a *semi-perfect matching* (one that saturates
``N(u)``).  Refinement repeats until a fixpoint.  This is the filter used
by the GQL-G / GQL-R baselines (§4.1); Sun & Luo [35] showed it is among
the strongest classical filters, at a higher filtering cost.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.filtering.nlf import nlf_candidates
from repro.graph.graph import Graph
from repro.utils.bipartite import has_saturating_matching


def gql_candidates(
    query: Graph,
    data: Graph,
    base: Optional[List[List[int]]] = None,
    max_rounds: int = 4,
) -> List[List[int]]:
    """Candidate lists refined by GraphQL's local pseudo-matching."""
    if base is None:
        base = nlf_candidates(query, data)
    candidates: List[Set[int]] = [set(c) for c in base]

    for _ in range(max_rounds):
        changed = False
        for u in query.vertices():
            u_nbrs = query.neighbors(u)
            if not u_nbrs:
                continue
            survivors: Set[int] = set()
            for v in candidates[u]:
                v_nbrs = data.neighbors(v)
                right_of = {
                    u2: [w for w in v_nbrs if w in candidates[u2]]
                    for u2 in u_nbrs
                }
                if has_saturating_matching(u_nbrs, lambda l: right_of[l]):
                    survivors.add(v)
            if len(survivors) != len(candidates[u]):
                candidates[u] = survivors
                changed = True
        if not changed:
            break
    return [sorted(c) for c in candidates]
