"""Mask-domain GCS build pipeline (the dense *build* path, DESIGN.md §8).

PR 1 moved the backtracking hot path onto Python-int bitmaps; this
module does the same for the *construction* side.  A candidate set is a
single int over data-vertex ids (bit ``v`` == data vertex ``v``), so

* LDF/NLF seeding is a handful of cached-mask ANDs per query vertex
  (:meth:`repro.filtering.artifacts.DataArtifacts.nlf_candidate_masks`);
* DAG-graph DP's survival test collapses to
  ``adjacency_bitmaps[v] & candidate_mask[u_c] != 0`` — one AND and a
  zero test per constraining neighbor — and the sweeps are
  *worklist-driven*: a vertex is re-examined only when some
  constraining neighbor's candidate set shrank since it was last
  examined in that sweep direction (a per-candidate survival test
  depends only on the constraining masks, so re-testing under unchanged
  masks is provably a no-op — the delta-propagation is exact, not a
  heuristic);
* the consistency prune is a plain mask worklist (its fixpoint is the
  unique greatest one, so any schedule yields the set-based result);
* :class:`~repro.filtering.candidate_space.CandidateSpace` positions and
  edge bitmaps are materialized straight from the masks without the
  intermediate sorted-list/set round-trips.

Every function decodes to exactly what its set-based counterpart in
:mod:`repro.filtering.dagdp` / :mod:`repro.filtering.gql_filter` /
:mod:`repro.filtering.nlf2` / :mod:`repro.filtering.candidate_space`
returns — including ``max_rounds``-truncated (pre-fixpoint) runs —
which ``tests/test_build_masks.py`` proves differentially.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence

from repro.filtering.candidate_space import CandidateSpace
from repro.filtering.dag import QueryDag, build_query_dag
from repro.filtering.mask_kernels import INT_KERNELS
from repro.graph.graph import Graph
from repro.utils.bipartite import has_saturating_matching
from repro.utils.bitset import bits_of


class MaskView(Sequence):
    """Read-only sorted-list view of a data-vertex mask.

    Matching orders take candidate lists but (today) only consume their
    sizes; this view hands them ``len`` at popcount speed and decodes
    the bits lazily if an ordering ever indexes or iterates.
    """

    __slots__ = ("mask", "_bits")

    def __init__(self, mask: int) -> None:
        self.mask = mask
        self._bits: Optional[List[int]] = None

    def _decode(self) -> List[int]:
        if self._bits is None:
            self._bits = bits_of(self.mask)
        return self._bits

    def __len__(self) -> int:
        return self.mask.bit_count()

    def __getitem__(self, index):
        return self._decode()[index]

    def __iter__(self):
        return iter(self._decode())

    def __contains__(self, v: object) -> bool:
        return isinstance(v, int) and v >= 0 and bool(self.mask >> v & 1)

    def __repr__(self) -> str:
        return f"MaskView({self._decode()!r})"


def dag_graph_dp_masks(
    query: Graph,
    adjacency: Sequence[int],
    base_masks: Sequence[int],
    max_rounds: int = 3,
    dag: Optional[QueryDag] = None,
    ops=None,
    stage_log=None,
) -> List[int]:
    """Mask twin of :func:`repro.filtering.dagdp.dag_graph_dp`.

    Same alternating bottom-up/top-down sweep schedule and the same
    ``max_rounds`` truncation, so the result is *identical* (not merely
    equivalent) to the set version's — but worklist-driven: per sweep
    direction a vertex carries a dirty flag, set when a constraining
    neighbor's mask shrinks and cleared on examination.

    ``ops`` selects the survival kernel (an ``adjacency_ops`` from
    :mod:`repro.filtering.mask_kernels`); the sweep schedule itself is
    single-copy and backend-independent, which is what makes the two
    mask backends structurally — not just observably — identical.

    ``stage_log`` (a :class:`repro.obs.explain.FilterStageLog`) records
    the surviving-candidate popcounts after each executed round plus
    the swept DAG — reads only, so a logged run is identical to a plain
    one.
    """
    n = query.num_vertices
    if n == 0:
        return []
    if ops is None:
        ops = INT_KERNELS.adjacency_ops(adjacency)
    masks = list(base_masks)
    if dag is None:
        dag = build_query_dag(query, [m.bit_count() for m in masks])
    if stage_log is not None:
        stage_log.set_dag(dag)
    parents, children = dag.parents, dag.children
    bottom_up = dag.reverse_topological()
    top_down = dag.topological
    dirty_up = [True] * n  # constraining set: DAG children
    dirty_down = [True] * n  # constraining set: DAG parents

    def sweep(order, constraining, dirty) -> bool:
        changed = False
        for u in order:
            cons = constraining[u]
            if not cons or not dirty[u]:
                continue
            dirty[u] = False
            old = masks[u]
            new = ops.survivors(old, [masks[c] for c in cons])
            if new != old:
                masks[u] = new
                changed = True
                # u constrains its DAG parents bottom-up (they check
                # their children) and its DAG children top-down.
                for p in parents[u]:
                    dirty_up[p] = True
                for c in children[u]:
                    dirty_down[c] = True
        return changed

    for round_no in range(max_rounds):
        removed_up = sweep(bottom_up, children, dirty_up)
        removed_down = sweep(top_down, parents, dirty_down)
        if stage_log is not None:
            stage_log.record_masks(f"dagdp.round{round_no + 1}", masks)
        if not removed_up and not removed_down:
            break
    return masks


def consistency_prune_masks(
    query: Graph, adjacency: Sequence[int], masks: Sequence[int], ops=None
) -> List[int]:
    """Mask twin of ``candidate_space._consistency_prune``.

    Runs the (unique) greatest fixpoint of "every candidate has an
    adjacent candidate for each query neighbor" as a vertex worklist;
    schedule differences from the AC-6 set version cannot change the
    result, only the route to it.  ``ops`` selects the survival kernel
    (see :func:`dag_graph_dp_masks`).
    """
    if ops is None:
        ops = INT_KERNELS.adjacency_ops(adjacency)
    masks = list(masks)
    nbrs = [query.neighbors(u) for u in query.vertices()]
    queued = [bool(nbrs[u]) for u in query.vertices()]
    pending = deque(u for u in query.vertices() if queued[u])
    while pending:
        u = pending.popleft()
        queued[u] = False
        old = masks[u]
        new = ops.survivors(old, [masks[u2] for u2 in nbrs[u]])
        if new != old:
            masks[u] = new
            for u2 in nbrs[u]:
                if not queued[u2]:
                    queued[u2] = True
                    pending.append(u2)
    return masks


def nlf2_candidate_masks(
    query: Graph, artifacts, base_masks: Sequence[int]
) -> List[int]:
    """Mask twin of :func:`repro.filtering.nlf2.nlf2_candidates`."""
    from repro.filtering.nlf2 import _two_hop_label_counts

    query_tables = _two_hop_label_counts(query)
    refined: List[int] = []
    for u in query.vertices():
        mask = base_masks[u]
        for label, count in query_tables[u].items():
            if not mask:
                break
            mask &= artifacts.nlf2_count_mask(label, count)
        refined.append(mask)
    return refined


def gql_candidate_masks(
    query: Graph,
    artifacts,
    base_masks: Sequence[int],
    max_rounds: int = 4,
) -> List[int]:
    """Mask twin of :func:`repro.filtering.gql_filter.gql_candidates`.

    Same round structure and fixpoint test; the bipartite neighborhoods
    are decoded from one AND per query neighbor instead of scanning the
    candidate's full data neighborhood with membership probes.
    """
    adjacency = artifacts.adjacency_bitmaps
    masks = list(base_masks)
    for _ in range(max_rounds):
        changed = False
        for u in query.vertices():
            u_nbrs = query.neighbors(u)
            if not u_nbrs:
                continue
            old = masks[u]
            new = old
            rem = old
            while rem:
                low = rem & -rem
                rem ^= low
                adj = adjacency[low.bit_length() - 1]
                right_of = {u2: bits_of(adj & masks[u2]) for u2 in u_nbrs}
                if not has_saturating_matching(
                    u_nbrs, lambda l: right_of[l]
                ):
                    new ^= low
            if new != old:
                masks[u] = new
                changed = True
        if not changed:
            break
    return masks


def build_candidate_space_masks(
    query: Graph,
    data: Graph,
    artifacts,
    method: str = "dagdp",
    base_masks: Optional[Sequence[int]] = None,
    dag: Optional[QueryDag] = None,
    kernels=None,
    stage_log=None,
) -> CandidateSpace:
    """Mask twin of :func:`repro.filtering.candidate_space.build_candidate_space`.

    ``artifacts`` is a :class:`repro.filtering.artifacts.DataArtifacts`
    for ``data``; ``base_masks`` optionally supplies precomputed LDF+NLF
    masks (callers that already seeded for order selection avoid
    refiltering); ``dag`` optionally reuses a memoized query DAG;
    ``kernels`` selects the mask kernel provider
    (:func:`repro.filtering.mask_kernels.get_kernels` — default int).
    The ``nlf2`` and ``gql`` filters always run the int idiom (they are
    dominated by per-candidate bipartite/table work, not mask sweeps);
    this is a documented fallback, not an accident, and their results
    are backend-independent by construction.
    """
    if kernels is None:
        kernels = INT_KERNELS
    if base_masks is None:
        base_masks = artifacts.nlf_candidate_masks(query, kernels=kernels)
    adjacency = artifacts.adjacency_bitmaps
    ops = artifacts.adjacency_ops(kernels)
    if stage_log is not None:
        stage_log.record_masks("seed", base_masks)
    if method == "ldf":
        masks = artifacts.ldf_candidate_masks(query, kernels=kernels)
    elif method == "nlf":
        masks = list(base_masks)
    elif method == "nlf2":
        masks = nlf2_candidate_masks(query, artifacts, base_masks)
    elif method == "dagdp":
        masks = dag_graph_dp_masks(
            query, adjacency, base_masks, dag=dag, ops=ops,
            stage_log=stage_log,
        )
    elif method == "gql":
        masks = gql_candidate_masks(query, artifacts, base_masks)
    else:
        from repro.filtering.candidate_space import FILTERS

        raise ValueError(f"unknown filter {method!r}; expected one of {FILTERS}")
    if stage_log is not None and method != "dagdp":
        stage_log.record_masks(method, masks)
    masks = consistency_prune_masks(query, adjacency, masks, ops=ops)
    if stage_log is not None:
        stage_log.record_masks("consistency", masks)
    return CandidateSpace(
        query,
        data,
        [kernels.positions(m) for m in masks],
        candidate_masks=masks,
        adjacency_bitmaps=adjacency,
    )
