"""Query DAG construction for DAG-based filtering (DAF [14], VEQ [20]).

The query graph is turned into a rooted DAG by a BFS from a root chosen
for selectivity (smallest initial-candidate count relative to degree);
every query edge is directed from the BFS-earlier endpoint to the later
one (ties broken by vertex id).  DAG-graph DP then refines candidates
along this DAG in both directions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.graph.graph import Graph


@dataclass(frozen=True)
class QueryDag:
    """A rooted DAG over the query vertices.

    ``parents[u]`` / ``children[u]`` partition ``N(u)`` according to the
    edge orientation; ``topological`` lists vertices root-first.
    """

    root: int
    parents: Tuple[Tuple[int, ...], ...]
    children: Tuple[Tuple[int, ...], ...]
    topological: Tuple[int, ...]

    @property
    def num_vertices(self) -> int:
        return len(self.parents)

    def reverse_topological(self) -> Tuple[int, ...]:
        return tuple(reversed(self.topological))


def choose_dag_root(query: Graph, candidate_sizes: Sequence[int]) -> int:
    """DAF's root rule: minimize ``|C_ini(u)| / deg(u)``.

    Vertices of degree 0 cannot occur in connected queries; guard anyway.
    """
    def rank(u: int) -> Tuple[float, int]:
        degree = max(1, query.degree(u))
        return (candidate_sizes[u] / degree, u)

    return min(query.vertices(), key=rank)


def build_query_dag(query: Graph, candidate_sizes: Sequence[int]) -> QueryDag:
    """BFS DAG (forest for disconnected queries) rooted per
    :func:`choose_dag_root`.

    Query generators emit connected queries, but the adapters can reduce
    disconnected inputs; each further component is rooted at its own
    most-selective vertex and appended to the topological order.
    """
    n = query.num_vertices
    if n == 0:
        return QueryDag(root=0, parents=(), children=(), topological=())
    root = choose_dag_root(query, candidate_sizes)

    level = [-1] * n
    order: List[int] = []
    next_root: int = root
    while len(order) < n:
        level[next_root] = 0
        order.append(next_root)
        queue = deque([next_root])
        while queue:
            u = queue.popleft()
            for w in query.neighbors(u):
                if level[w] < 0:
                    level[w] = level[u] + 1
                    order.append(w)
                    queue.append(w)
        if len(order) < n:
            remaining = [u for u in range(n) if level[u] < 0]
            next_root = min(
                remaining,
                key=lambda u: (candidate_sizes[u] / max(1, query.degree(u)), u),
            )

    bfs_rank = [0] * n
    for rank, u in enumerate(order):
        bfs_rank[u] = rank

    parents: List[List[int]] = [[] for _ in range(n)]
    children: List[List[int]] = [[] for _ in range(n)]
    for u, w in query.edges():
        # Direct from BFS-earlier to BFS-later endpoint.
        first, second = (u, w) if bfs_rank[u] < bfs_rank[w] else (w, u)
        children[first].append(second)
        parents[second].append(first)

    return QueryDag(
        root=root,
        parents=tuple(tuple(sorted(p)) for p in parents),
        children=tuple(tuple(sorted(c)) for c in children),
        topological=tuple(order),
    )
