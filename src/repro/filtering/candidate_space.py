"""The candidate space (CS): candidate vertices plus candidate edges [14].

A ``CandidateSpace`` is the frozen output of the filtering stage and the
substrate every matcher in this repository searches.  It stores

* ``C(u_i)`` — the sorted candidate list of each query vertex;
* candidate edges — for each query edge ``(u_i, u_j)`` and each candidate
  ``v`` of ``u_i``, the sorted list of candidates of ``u_j`` adjacent to
  ``v`` in the data graph (both directions are materialized);
* the inverse index ``C^{-1}(v)`` — the query vertices for which data
  vertex ``v`` is a candidate — needed by the matchability conditions of
  Lemma 3.7;
* the **dense index**: every candidate of ``u_j`` has a position in the
  sorted ``C(u_j)``, and each candidate edge direction is additionally
  materialized as a Python-int bitmap over those positions
  (DESIGN.md "Dense-index bitmap layout").  The search layers refine
  local candidate sets with single C-speed ``&`` operations instead of
  per-element Python loops.

GuP's guarded candidate space (:mod:`repro.core.gcs`) wraps one of these
and attaches guards.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.filtering.dagdp import dag_graph_dp
from repro.filtering.gql_filter import gql_candidates
from repro.filtering.ldf import ldf_candidates
from repro.filtering.nlf import nlf_candidates
from repro.filtering.nlf2 import nlf2_candidates
from repro.graph.graph import Graph

_EMPTY: Tuple[int, ...] = ()
_EMPTY_BITMAPS: Dict[int, int] = {}


class CandidateSpace:
    """Frozen candidate sets and candidate edges for one (query, data) pair."""

    __slots__ = (
        "query",
        "data",
        "candidates",
        "candidate_sets",
        "positions",
        "_edge_lists",
        "_edge_bitmaps",
        "_full_masks",
        "_inverse",
        "_inverse_masks",
        "_inverse_below",
        "num_candidate_edges",
    )

    def __init__(
        self,
        query: Graph,
        data: Graph,
        candidates: Sequence[Sequence[int]],
        *,
        candidate_masks: Optional[Sequence[int]] = None,
        adjacency_bitmaps: Optional[Sequence[int]] = None,
    ) -> None:
        """Freeze ``candidates`` and materialize the candidate edges.

        ``candidate_masks`` / ``adjacency_bitmaps`` optionally supply the
        dense build path's data-vertex-id bitmaps (``candidates`` decoded
        as masks, and per-data-vertex adjacency masks): candidate-edge
        materialization then replaces the per-neighbor membership probes
        with one AND per candidate and decodes only the survivors.  The
        resulting structures are byte-identical either way.
        """
        if len(candidates) != query.num_vertices:
            raise ValueError("one candidate list per query vertex required")
        self.query = query
        self.data = data
        self.candidates: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(c)) for c in candidates
        )
        self.candidate_sets: Tuple[FrozenSet[int], ...] = tuple(
            frozenset(c) for c in self.candidates
        )
        # Dense index: candidate vertex -> position in the sorted C(u_i).
        self.positions: Tuple[Dict[int, int], ...] = tuple(
            {v: p for p, v in enumerate(c)} for c in self.candidates
        )
        self._full_masks: Tuple[int, ...] = tuple(
            (1 << len(c)) - 1 for c in self.candidates
        )

        # Candidate edges, both directions: (i, j) -> v -> adjacent C(u_j),
        # as sorted tuples and as bitmaps over positions of C(u_j).
        use_masks = candidate_masks is not None and adjacency_bitmaps is not None
        edge_lists: Dict[Tuple[int, int], Dict[int, Tuple[int, ...]]] = {}
        edge_bitmaps: Dict[Tuple[int, int], Dict[int, int]] = {}
        edge_count = 0
        for i, j in query.edges():
            forward: Dict[int, Tuple[int, ...]] = {}
            forward_bm: Dict[int, int] = {}
            backward: Dict[int, List[int]] = {}
            pos_j = self.positions[j]
            if use_masks:
                mask_j = candidate_masks[j]
                for v in self.candidates[i]:
                    rem = adjacency_bitmaps[v] & mask_j
                    if rem:
                        adjacent: List[int] = []
                        bm = 0
                        while rem:
                            low = rem & -rem
                            rem ^= low
                            w = low.bit_length() - 1
                            adjacent.append(w)
                            bm |= 1 << pos_j[w]
                            backward.setdefault(w, []).append(v)
                        forward[v] = tuple(adjacent)
                        forward_bm[v] = bm
            else:
                c_j = self.candidate_sets[j]
                for v in self.candidates[i]:
                    adjacent_t = tuple(
                        w for w in data.neighbors(v) if w in c_j
                    )
                    if adjacent_t:
                        forward[v] = adjacent_t
                        bm = 0
                        for w in adjacent_t:
                            bm |= 1 << pos_j[w]
                            backward.setdefault(w, []).append(v)
                        forward_bm[v] = bm
            edge_lists[(i, j)] = forward
            edge_bitmaps[(i, j)] = forward_bm
            pos_i = self.positions[i]
            edge_lists[(j, i)] = {
                w: tuple(sorted(vs)) for w, vs in backward.items()
            }
            backward_bm: Dict[int, int] = {}
            for w, vs in backward.items():
                bm = 0
                for v in vs:
                    bm |= 1 << pos_i[v]
                backward_bm[w] = bm
            edge_bitmaps[(j, i)] = backward_bm
            edge_count += sum(len(adj) for adj in forward.values())
        self._edge_lists = edge_lists
        self._edge_bitmaps = edge_bitmaps
        self.num_candidate_edges = edge_count

        inverse: Dict[int, List[int]] = {}
        for i, c in enumerate(self.candidates):
            for v in c:
                inverse.setdefault(v, []).append(i)
        self._inverse: Dict[int, Tuple[int, ...]] = {
            v: tuple(us) for v, us in inverse.items()
        }
        # C^{-1}(v) as query-vertex bitmasks — reservation generation's
        # matchability tests become mask arithmetic (dense build path
        # only, so the seed set-based builder stays reference-verbatim).
        self._inverse_masks: Optional[Dict[int, int]] = None
        if use_masks:
            inverse_masks: Dict[int, int] = {}
            for v, us in self._inverse.items():
                m = 0
                for i in us:
                    m |= 1 << i
                inverse_masks[v] = m
            self._inverse_masks = inverse_masks
        self._inverse_below: Dict[Tuple[int, int], Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def adjacent_candidates(self, i: int, v: int, j: int) -> Tuple[int, ...]:
        """Candidates of ``u_j`` adjacent (in the data graph) to ``(u_i, v)``.

        ``u_i`` and ``u_j`` must be adjacent in the query graph.
        """
        return self._edge_lists[(i, j)].get(v, _EMPTY)

    def edge_bitmap(self, i: int, v: int, j: int) -> int:
        """:meth:`adjacent_candidates` as a bitmap over positions of ``C(u_j)``.

        Bit ``p`` is set iff ``candidates[j][p]`` is adjacent to ``(u_i, v)``.
        Intersecting a local candidate bitmap of ``u_j`` with this value is
        the dense-index form of Definition 3.18's refinement — one int AND.
        """
        return self._edge_bitmaps[(i, j)].get(v, 0)

    def edge_bitmap_map(self, i: int, j: int) -> Dict[int, int]:
        """The whole bitmap table of direction ``(i, j)``: ``v -> bitmap``.

        The search layers prefetch these per query edge so the inner loop
        is one dict get plus one AND (missing ``v`` means no adjacent
        candidates — callers default to 0).
        """
        return self._edge_bitmaps.get((i, j), _EMPTY_BITMAPS)

    def position(self, i: int, v: int) -> int:
        """Position of ``v`` in the sorted ``C(u_i)``; -1 if not a candidate."""
        return self.positions[i].get(v, -1)

    def full_mask(self, i: int) -> int:
        """Bitmap with one bit per candidate of ``u_i`` (all set)."""
        return self._full_masks[i]

    def inverse_candidates(self, v: int) -> Tuple[int, ...]:
        """``C^{-1}(v)``: query vertices having ``v`` as candidate (sorted)."""
        return self._inverse.get(v, _EMPTY)

    @property
    def inverse_masks(self) -> Optional[Dict[int, int]]:
        """``C^{-1}`` as query-vertex bitmasks (``v -> mask``).

        ``None`` when the CS was built by the seed set pipeline; the
        dense build path always populates it, and reservation-guard
        generation then tests Lemma 3.7 with mask arithmetic.
        """
        return self._inverse_masks

    def inverse_candidates_below(self, v: int, i: int) -> Tuple[int, ...]:
        """``C^{-1}(v)[:i]`` of Lemma 3.7 (query ids < ``i``).

        Cached per ``(v, i)``: Lemma 3.7 matchability checks probe the
        same slices repeatedly during reservation generation.  A miss is
        one ``bisect`` on the sorted inverse tuple — or, on a mask-built
        CS, one AND against the below-``i`` mask plus a bit decode.
        """
        key = (v, i)
        cached = self._inverse_below.get(key)
        if cached is None:
            if self._inverse_masks is not None:
                m = self._inverse_masks.get(v, 0) & ((1 << i) - 1)
                bits: List[int] = []
                while m:
                    low = m & -m
                    m ^= low
                    bits.append(low.bit_length() - 1)
                cached = self._inverse_below[key] = tuple(bits)
            else:
                inv = self._inverse.get(v, _EMPTY)
                cached = self._inverse_below[key] = inv[: bisect_left(inv, i)]
        return cached

    def total_candidates(self) -> int:
        """Sum of candidate-set sizes."""
        return sum(len(c) for c in self.candidates)

    def is_empty(self) -> bool:
        """Whether some query vertex has no candidates (zero embeddings)."""
        return any(not c for c in self.candidates)

    def __repr__(self) -> str:
        sizes = [len(c) for c in self.candidates]
        return (
            f"CandidateSpace(|V_Q|={self.query.num_vertices}, sizes={sizes}, "
            f"edges={self.num_candidate_edges})"
        )


def _consistency_prune(
    query: Graph,
    data: Graph,
    candidates: List[List[int]],
) -> List[List[int]]:
    """Drop candidates with no adjacent candidate for some query neighbor.

    Sound for the same reason as DAG-graph DP; runs to the (unique)
    fixpoint so the candidate-edge lists contain no dangling vertices.

    Incremental support counting (AC-4 style): one initial pass counts,
    for every candidate ``(u, v)`` and query neighbor ``u2``, the number
    of adjacent candidates in ``C(u2)``; removals then decrement the
    counts of data-neighbors and only vertices whose support hits zero
    are (re)visited, instead of rescanning every candidate's full
    data-neighborhood each pass.
    """
    cand_sets = [set(c) for c in candidates]
    nbrs = [tuple(query.neighbors(u)) for u in query.vertices()]

    # AC-6-style incremental support: each (u, v, u2) keeps ONE witness
    # (the first data neighbor of v inside C(u2)) plus a resume index,
    # and an inverted index from each witness to its dependents.  The
    # initial pass early-exits per constraint (like one pass of the old
    # fixpoint); a removal only revisits the pairs whose witness died,
    # resuming the scan where it stopped — each constraint scans its
    # data neighborhood at most once over the whole run, instead of
    # rescanning every candidate's full neighborhood per pass.
    witness_idx: Dict[Tuple[int, int, int], int] = {}
    dependents: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    dead: List[Tuple[int, int]] = []
    for u in query.vertices():
        for v in cand_sets[u]:
            for u2 in nbrs[u]:
                c2 = cand_sets[u2]
                for idx, w in enumerate(data.neighbors(v)):
                    if w in c2:
                        witness_idx[(u, v, u2)] = idx
                        dependents.setdefault((u2, w), []).append((u, v))
                        break
                else:
                    dead.append((u, v))
                    break  # v is doomed; no need to seed other neighbors

    while dead:
        u, v = dead.pop()
        if v not in cand_sets[u]:
            continue  # already removed via another lost witness
        cand_sets[u].remove(v)
        for u3, v3 in dependents.pop((u, v), ()):
            if v3 not in cand_sets[u3]:
                continue
            nv = data.neighbors(v3)
            c2 = cand_sets[u]
            for idx in range(witness_idx[(u3, v3, u)] + 1, len(nv)):
                w2 = nv[idx]
                if w2 in c2:
                    witness_idx[(u3, v3, u)] = idx
                    dependents.setdefault((u, w2), []).append((u3, v3))
                    break
            else:
                dead.append((u3, v3))
    return [sorted(c) for c in cand_sets]


FILTERS = ("ldf", "nlf", "nlf2", "dagdp", "gql")


def build_candidate_space(
    query: Graph,
    data: Graph,
    method: str = "dagdp",
    base: Optional[List[List[int]]] = None,
    dag: Optional["QueryDag"] = None,
) -> CandidateSpace:
    """Run a filtering pipeline and freeze the result into a CS.

    ``method`` is one of ``"ldf"``, ``"nlf"``, ``"dagdp"`` (default —
    what GuP uses, §3.1), or ``"gql"`` (what the GQL baselines use).
    ``base`` optionally supplies precomputed LDF+NLF candidate lists
    (callers that already filtered for order selection avoid refiltering);
    ``dag`` optionally reuses a memoized query DAG (``"dagdp"`` only).
    All pipelines end with a consistency prune so candidate edges are
    closed under adjacency.
    """
    if method == "ldf":
        candidates = ldf_candidates(query, data)
    elif method == "nlf":
        candidates = base if base is not None else nlf_candidates(query, data)
    elif method == "nlf2":
        candidates = nlf2_candidates(query, data, base=base)
    elif method == "dagdp":
        candidates = dag_graph_dp(query, data, base=base, dag=dag)
    elif method == "gql":
        candidates = gql_candidates(query, data, base=base)
    else:
        raise ValueError(f"unknown filter {method!r}; expected one of {FILTERS}")
    candidates = _consistency_prune(query, data, [list(c) for c in candidates])
    return CandidateSpace(query, data, candidates)
