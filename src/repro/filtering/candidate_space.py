"""The candidate space (CS): candidate vertices plus candidate edges [14].

A ``CandidateSpace`` is the frozen output of the filtering stage and the
substrate every matcher in this repository searches.  It stores

* ``C(u_i)`` — the sorted candidate list of each query vertex;
* candidate edges — for each query edge ``(u_i, u_j)`` and each candidate
  ``v`` of ``u_i``, the sorted list of candidates of ``u_j`` adjacent to
  ``v`` in the data graph (both directions are materialized);
* the inverse index ``C^{-1}(v)`` — the query vertices for which data
  vertex ``v`` is a candidate — needed by the matchability conditions of
  Lemma 3.7.

GuP's guarded candidate space (:mod:`repro.core.gcs`) wraps one of these
and attaches guards.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.filtering.dagdp import dag_graph_dp
from repro.filtering.gql_filter import gql_candidates
from repro.filtering.ldf import ldf_candidates
from repro.filtering.nlf import nlf_candidates
from repro.filtering.nlf2 import nlf2_candidates
from repro.graph.graph import Graph

_EMPTY: Tuple[int, ...] = ()


class CandidateSpace:
    """Frozen candidate sets and candidate edges for one (query, data) pair."""

    __slots__ = (
        "query",
        "data",
        "candidates",
        "candidate_sets",
        "_edge_lists",
        "_inverse",
        "num_candidate_edges",
    )

    def __init__(
        self,
        query: Graph,
        data: Graph,
        candidates: Sequence[Sequence[int]],
    ) -> None:
        if len(candidates) != query.num_vertices:
            raise ValueError("one candidate list per query vertex required")
        self.query = query
        self.data = data
        self.candidates: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(c)) for c in candidates
        )
        self.candidate_sets: Tuple[FrozenSet[int], ...] = tuple(
            frozenset(c) for c in self.candidates
        )

        # Candidate edges, both directions: (i, j) -> v -> adjacent C(u_j).
        edge_lists: Dict[Tuple[int, int], Dict[int, Tuple[int, ...]]] = {}
        edge_count = 0
        for i, j in query.edges():
            forward: Dict[int, Tuple[int, ...]] = {}
            backward: Dict[int, List[int]] = {}
            c_j = self.candidate_sets[j]
            for v in self.candidates[i]:
                adjacent = tuple(
                    w for w in data.neighbors(v) if w in c_j
                )
                if adjacent:
                    forward[v] = adjacent
                    for w in adjacent:
                        backward.setdefault(w, []).append(v)
            edge_lists[(i, j)] = forward
            edge_lists[(j, i)] = {
                w: tuple(sorted(vs)) for w, vs in backward.items()
            }
            edge_count += sum(len(adj) for adj in forward.values())
        self._edge_lists = edge_lists
        self.num_candidate_edges = edge_count

        inverse: Dict[int, List[int]] = {}
        for i, c in enumerate(self.candidates):
            for v in c:
                inverse.setdefault(v, []).append(i)
        self._inverse: Dict[int, Tuple[int, ...]] = {
            v: tuple(us) for v, us in inverse.items()
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def adjacent_candidates(self, i: int, v: int, j: int) -> Tuple[int, ...]:
        """Candidates of ``u_j`` adjacent (in the data graph) to ``(u_i, v)``.

        ``u_i`` and ``u_j`` must be adjacent in the query graph.
        """
        return self._edge_lists[(i, j)].get(v, _EMPTY)

    def inverse_candidates(self, v: int) -> Tuple[int, ...]:
        """``C^{-1}(v)``: query vertices having ``v`` as candidate (sorted)."""
        return self._inverse.get(v, _EMPTY)

    def inverse_candidates_below(self, v: int, i: int) -> Tuple[int, ...]:
        """``C^{-1}(v)[:i]`` of Lemma 3.7 (query ids < ``i``)."""
        return tuple(u for u in self._inverse.get(v, _EMPTY) if u < i)

    def total_candidates(self) -> int:
        """Sum of candidate-set sizes."""
        return sum(len(c) for c in self.candidates)

    def is_empty(self) -> bool:
        """Whether some query vertex has no candidates (zero embeddings)."""
        return any(not c for c in self.candidates)

    def __repr__(self) -> str:
        sizes = [len(c) for c in self.candidates]
        return (
            f"CandidateSpace(|V_Q|={self.query.num_vertices}, sizes={sizes}, "
            f"edges={self.num_candidate_edges})"
        )


def _consistency_prune(
    query: Graph,
    data: Graph,
    candidates: List[List[int]],
) -> List[List[int]]:
    """Drop candidates with no adjacent candidate for some query neighbor.

    Sound for the same reason as DAG-graph DP; run to a fixpoint so the
    candidate-edge lists contain no dangling vertices.
    """
    cand_sets = [set(c) for c in candidates]
    changed = True
    while changed:
        changed = False
        for u in query.vertices():
            if not cand_sets[u]:
                continue
            dead = []
            for v in cand_sets[u]:
                for u2 in query.neighbors(u):
                    c2 = cand_sets[u2]
                    if not any(w in c2 for w in data.neighbors(v)):
                        dead.append(v)
                        break
            if dead:
                cand_sets[u].difference_update(dead)
                changed = True
    return [sorted(c) for c in cand_sets]


FILTERS = ("ldf", "nlf", "nlf2", "dagdp", "gql")


def build_candidate_space(
    query: Graph,
    data: Graph,
    method: str = "dagdp",
    base: Optional[List[List[int]]] = None,
) -> CandidateSpace:
    """Run a filtering pipeline and freeze the result into a CS.

    ``method`` is one of ``"ldf"``, ``"nlf"``, ``"dagdp"`` (default —
    what GuP uses, §3.1), or ``"gql"`` (what the GQL baselines use).
    ``base`` optionally supplies precomputed LDF+NLF candidate lists
    (callers that already filtered for order selection avoid refiltering).
    All pipelines end with a consistency prune so candidate edges are
    closed under adjacency.
    """
    if method == "ldf":
        candidates = ldf_candidates(query, data)
    elif method == "nlf":
        candidates = base if base is not None else nlf_candidates(query, data)
    elif method == "nlf2":
        candidates = nlf2_candidates(query, data, base=base)
    elif method == "dagdp":
        candidates = dag_graph_dp(query, data, base=base)
    elif method == "gql":
        candidates = gql_candidates(query, data, base=base)
    else:
        raise ValueError(f"unknown filter {method!r}; expected one of {FILTERS}")
    candidates = _consistency_prune(query, data, [list(c) for c in candidates])
    return CandidateSpace(query, data, candidates)
