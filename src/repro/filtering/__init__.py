"""Candidate filtering and the candidate space.

Backtracking matchers never search the raw data graph: they search a
*candidate space* (CS) [14] — per-query-vertex candidate sets plus the
candidate edges between them.  This package implements the filters the
paper builds on (§2.1, §3.1):

* :func:`~repro.filtering.ldf.ldf_candidates` — label-and-degree filter
  (Ullmann).
* :func:`~repro.filtering.nlf.nlf_candidates` — neighborhood label
  frequency filter.
* :mod:`~repro.filtering.dag` — query DAG construction (BFS from a
  selectivity-chosen root).
* :func:`~repro.filtering.dagdp.dag_graph_dp` — extended DAG-graph DP
  (VEQ [20]): alternating top-down/bottom-up refinement to a fixpoint.
* :func:`~repro.filtering.gql_filter.gql_candidates` — GraphQL's
  pseudo-matching refinement (local bipartite semi-perfect matching).
* :class:`~repro.filtering.candidate_space.CandidateSpace` — the frozen
  result: candidate sets, candidate edges, and inverse index, shared by
  GuP and every baseline.
* :mod:`~repro.filtering.masks` — the dense mask-domain twin of the
  whole pipeline (DESIGN.md §8): candidate sets as data-vertex-id int
  bitmaps, worklist DAG-DP, mask-native CS materialization.  GuP's
  default build backend; decodes byte-identically to the set pipeline.
"""

from repro.filtering.candidate_space import CandidateSpace, build_candidate_space
from repro.filtering.dag import QueryDag, build_query_dag
from repro.filtering.dagdp import dag_graph_dp
from repro.filtering.gql_filter import gql_candidates
from repro.filtering.ldf import ldf_candidates
from repro.filtering.masks import build_candidate_space_masks, dag_graph_dp_masks
from repro.filtering.nlf import nlf_candidates
from repro.filtering.nlf2 import nlf2_candidates

__all__ = [
    "CandidateSpace",
    "QueryDag",
    "build_candidate_space",
    "build_candidate_space_masks",
    "build_query_dag",
    "dag_graph_dp",
    "dag_graph_dp_masks",
    "gql_candidates",
    "ldf_candidates",
    "nlf2_candidates",
    "nlf_candidates",
]
