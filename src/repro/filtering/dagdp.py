"""Extended DAG-graph dynamic programming (VEQ [20], after DAF [14]).

GuP's GCS construction step uses this filter (§3.1).  Starting from
LDF+NLF candidates, the DP repeatedly sweeps the query DAG:

* bottom-up sweep — ``v`` survives in ``C(u)`` only if, for every DAG
  child ``u_c`` of ``u``, some neighbor of ``v`` survives in ``C(u_c)``;
* top-down sweep — symmetric condition over DAG parents.

Sweeps alternate until a fixpoint (or ``max_rounds``).  The result is
sound: no full embedding is lost, because an embedding maps every query
edge onto a data edge, hence every DAG-adjacent pair onto adjacent
candidates — exactly the survival condition.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.filtering.dag import QueryDag, build_query_dag
from repro.filtering.nlf import nlf_candidates
from repro.graph.graph import Graph


def _sweep(
    query: Graph,
    data: Graph,
    candidates: List[Set[int]],
    order: Sequence[int],
    constraining: Sequence[Sequence[int]],
) -> bool:
    """One refinement sweep; returns whether anything was removed.

    ``constraining[u]`` lists the DAG neighbors of ``u`` whose candidate
    sets must be reachable (children for a bottom-up sweep over reverse
    topological order, parents for top-down).
    """
    changed = False
    for u in order:
        if not constraining[u]:
            continue
        survivors: Set[int] = set()
        for v in candidates[u]:
            ok = True
            for u_c in constraining[u]:
                c_uc = candidates[u_c]
                if not any(w in c_uc for w in data.neighbors(v)):
                    ok = False
                    break
            if ok:
                survivors.add(v)
        if len(survivors) != len(candidates[u]):
            candidates[u] = survivors
            changed = True
    return changed


def dag_graph_dp(
    query: Graph,
    data: Graph,
    base: Optional[List[List[int]]] = None,
    max_rounds: int = 3,
    dag: Optional[QueryDag] = None,
) -> List[List[int]]:
    """Candidate lists refined by extended DAG-graph DP.

    Parameters
    ----------
    base:
        Initial candidate lists (defaults to LDF+NLF).
    max_rounds:
        Maximum number of (bottom-up, top-down) round pairs; DAF uses a
        small constant, and a fixpoint usually arrives in 2-3 rounds.
    dag:
        Reuse a prebuilt query DAG (otherwise built from ``base`` sizes).
    """
    if base is None:
        base = nlf_candidates(query, data)
    if query.num_vertices == 0:
        return []
    if dag is None:
        dag = build_query_dag(query, [len(c) for c in base])

    candidates: List[Set[int]] = [set(c) for c in base]
    bottom_up_order = dag.reverse_topological()
    top_down_order = dag.topological

    for _ in range(max_rounds):
        removed_up = _sweep(query, data, candidates, bottom_up_order, dag.children)
        removed_down = _sweep(query, data, candidates, top_down_order, dag.parents)
        if not removed_up and not removed_down:
            break
    return [sorted(c) for c in candidates]
