"""Label-and-degree filtering (LDF), the primitive filter of Ullmann [38].

A data vertex ``v`` is a candidate for query vertex ``u`` when it carries
the same label and its degree is at least ``deg(u)`` — a subgraph
embedding can only map ``u`` onto vertices with enough incident edges.
"""

from __future__ import annotations

from typing import List

from repro.graph.graph import Graph


def ldf_candidates(query: Graph, data: Graph) -> List[List[int]]:
    """Per-query-vertex candidate lists under LDF.

    Returns ``C`` with ``C[i]`` the sorted list of data vertices ``v``
    such that ``l(v) == l(u_i)`` and ``deg(v) >= deg(u_i)``.
    """
    candidates: List[List[int]] = []
    for u in query.vertices():
        label = query.label(u)
        min_degree = query.degree(u)
        candidates.append(
            [
                v
                for v in data.vertices_with_label(label)
                if data.degree(v) >= min_degree
            ]
        )
    return candidates
