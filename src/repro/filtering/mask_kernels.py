"""Backend-selected mask kernels (DESIGN.md §11).

``GuPConfig.mask_backend`` picks the *kernel provider* for every mask
hot loop in the system — DAG-graph-DP survival sweeps, candidate-mask
seeding ladders, reservation matchability popcounts, search-layer
candidate decodes, and ``DataArtifacts.apply_delta`` bit flips:

* ``"int"`` (:class:`IntMaskKernels`) — the reference twin: every
  operation is the arbitrary-precision Python-int idiom the repo has
  used since PR 1, verbatim.
* ``"words"`` (:class:`WordMaskKernels`) — lowers masks to fixed-width
  arrays of 64-bit words (:mod:`repro.utils.words`) inside each kernel
  and runs vectorized per-word loops, with the numpy fast path when
  available (gather-and-test survival over a dense ``uint64`` adjacency
  matrix, ``bitwise_count`` popcounts, ``unpackbits`` decodes,
  ``packbits`` threshold ladders).

Masks **at rest** — in :class:`~repro.filtering.candidate_space.
CandidateSpace`, :class:`~repro.filtering.artifacts.DataArtifacts`,
catalog sidecars, procpool pickles — stay canonical Python ints under
both backends; the words backend converts at kernel boundaries (and
keeps one cached 2D lowering of the adjacency bitmaps per artifacts
instance).  That is what makes every serialized artifact byte-identical
regardless of backend, which ``tests/test_service_catalog.py`` pins by
checksum.  Kernel outputs are proven equal to the int oracle by
``tests/test_mask_kernels.py`` (word-boundary fixtures + Hypothesis),
and whole-system equality by the ``tests/test_config_matrix.py`` grid.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.utils import words as W
from repro.utils.bitset import bits_of

HAVE_NUMPY = W.HAVE_NUMPY
if HAVE_NUMPY:
    import numpy as _np

MASK_BACKENDS = ("int", "words")


# ----------------------------------------------------------------------
# Adjacency-indexed survival ops (the DAG-DP / consistency-prune core)
# ----------------------------------------------------------------------


class IntAdjacencyOps:
    """Per-bit survival loop over per-vertex int adjacency bitmaps."""

    backend = "int"
    __slots__ = ("adjacency",)

    def __init__(self, adjacency: Sequence[int]) -> None:
        self.adjacency = adjacency

    def survivors(self, mask: int, constraining_masks: List[int]) -> int:
        """Bits of ``mask`` whose adjacency hits every constraining mask."""
        adjacency = self.adjacency
        new = mask
        rem = mask
        if len(constraining_masks) == 1:
            # The common case (tree-ish query DAGs): no inner loop at all.
            c0 = constraining_masks[0]
            while rem:
                low = rem & -rem
                rem ^= low
                if not adjacency[low.bit_length() - 1] & c0:
                    new ^= low
            return new
        while rem:
            low = rem & -rem
            rem ^= low
            adj = adjacency[low.bit_length() - 1]
            for c_mask in constraining_masks:
                if not adj & c_mask:
                    new ^= low
                    break
        return new


class WordAdjacencyOps:
    """Vectorized gather-and-test survival over a dense word matrix.

    Row ``v`` of the matrix is ``adjacency[v]`` lowered to 64-bit limbs;
    one ``survivors`` call gathers all candidate rows at once, ANDs them
    against each constraining mask's limbs, and reduces per row — a
    fixed handful of numpy calls regardless of candidate count, instead
    of one Python iteration per candidate.  Without numpy the pure
    ``array('Q')`` per-word loop handles each candidate (same results,
    reference speed).
    """

    backend = "words"
    __slots__ = ("adjacency", "nbits", "nwords", "_matrix")

    def __init__(self, adjacency: Sequence[int], nbits: Optional[int] = None) -> None:
        self.adjacency = adjacency
        if nbits is None:
            nbits = len(adjacency)
            for row in adjacency:
                if row.bit_length() > nbits:
                    nbits = row.bit_length()
        self.nbits = nbits
        self.nwords = W.nwords_for(nbits)
        self._matrix = None

    def matrix(self):
        """The cached ``uint64[n, nwords]`` lowering (numpy path only)."""
        if self._matrix is None:
            nw = self.nwords
            raw = b"".join(m.to_bytes(nw * 8, "little") for m in self.adjacency)
            self._matrix = _np.frombuffer(raw, dtype="<u8").reshape(
                len(self.adjacency), nw
            )
        return self._matrix

    def survivors(self, mask: int, constraining_masks: List[int]) -> int:
        if not mask or not constraining_masks:
            return mask
        if not HAVE_NUMPY:
            return self._survivors_pure(mask, constraining_masks)
        ids = _np.flatnonzero(
            _np.unpackbits(
                _np.frombuffer(
                    mask.to_bytes((mask.bit_length() + 7) // 8, "little"),
                    dtype=_np.uint8,
                ),
                bitorder="little",
            )
        )
        rows = self.matrix()[ids]
        alive = None
        for c_mask in constraining_masks:
            hit = (rows & W.np_words(c_mask, self.nwords)).any(axis=1)
            alive = hit if alive is None else alive & hit
            if not alive.any():
                break
        if alive.all():
            return mask
        return W.np_pack_positions(ids[alive], self.nbits)

    def _survivors_pure(self, mask: int, constraining_masks: List[int]) -> int:
        nw = self.nwords
        cons = [W.to_words(c, nw) for c in constraining_masks]
        new = mask
        for v in W.words_iter_bits(W.to_words(mask, nw)):
            adj = W.to_words(self.adjacency[v], nw)
            for c_words in cons:
                if not W.words_any(W.words_and(adj, c_words)):
                    new &= ~(1 << v)
                    break
        return new


# ----------------------------------------------------------------------
# Kernel providers
# ----------------------------------------------------------------------


class IntMaskKernels:
    """Reference kernels: the Python-int idioms, verbatim."""

    backend = "int"

    popcount = staticmethod(int.bit_count)
    positions = staticmethod(bits_of)

    @staticmethod
    def mask_of(ids: Sequence[int], nbits: Optional[int] = None) -> int:
        mask = 0
        for i in ids:
            mask |= 1 << i
        return mask

    @staticmethod
    def threshold_mask(counts: Sequence[int], needed: int) -> int:
        """Mask of indices ``v`` with ``counts[v] >= needed``."""
        mask = 0
        for v, count in enumerate(counts):
            if count >= needed:
                mask |= 1 << v
        return mask

    @staticmethod
    def flip_edge_bits(
        rows: List[int],
        added: Sequence[Tuple[int, int]],
        removed: Sequence[Tuple[int, int]],
    ) -> None:
        """Apply symmetric per-edge bit flips to adjacency rows in place."""
        for u, v in added:
            rows[u] |= 1 << v
            rows[v] |= 1 << u
        for u, v in removed:
            rows[u] &= ~(1 << v)
            rows[v] &= ~(1 << u)

    @staticmethod
    def adjacency_ops(
        adjacency: Sequence[int], nbits: Optional[int] = None
    ) -> IntAdjacencyOps:
        return IntAdjacencyOps(adjacency)


class WordMaskKernels:
    """Word-array kernels with the numpy fast path.

    Every method takes and returns canonical ints/lists; lowering to
    64-bit limbs happens inside.  Narrow masks short-circuit to the int
    idiom where the fixed numpy call cost would dominate — the cutover
    changes wall time only, never a bit of output.
    """

    backend = "words"

    @staticmethod
    def popcount(mask: int) -> int:
        if not HAVE_NUMPY or mask.bit_length() < W._NP_DECODE_MIN_BITS:
            return mask.bit_count()
        arr = W.np_words(mask, W.nwords_for(mask.bit_length()))
        return int(_np.bitwise_count(arr).sum())

    @staticmethod
    def positions(mask: int) -> List[int]:
        if HAVE_NUMPY:
            return W.np_positions(mask)
        return list(W.words_iter_bits(W.to_words(mask, W.nwords_for(max(1, mask.bit_length())))))

    @staticmethod
    def mask_of(ids: Sequence[int], nbits: Optional[int] = None) -> int:
        return W.pack_indices(ids, nbits)

    @staticmethod
    def threshold_mask(counts, needed: int) -> int:
        if HAVE_NUMPY:
            flags = _np.asarray(counts) >= needed
            if flags.size == 0:
                return 0
            return int.from_bytes(
                _np.packbits(flags, bitorder="little").tobytes(), "little"
            )
        mask = 0
        for v, count in enumerate(counts):
            if count >= needed:
                mask |= 1 << v
        return mask

    @staticmethod
    def flip_edge_bits(
        rows: List[int],
        added: Sequence[Tuple[int, int]],
        removed: Sequence[Tuple[int, int]],
    ) -> None:
        nw = W.nwords_for(len(rows))
        touched = {}
        for u, v in added:
            touched.setdefault(u, []).append((v, True))
            touched.setdefault(v, []).append((u, True))
        for u, v in removed:
            touched.setdefault(u, []).append((v, False))
            touched.setdefault(v, []).append((u, False))
        for u, flips in touched.items():
            row = W.to_words(rows[u], nw)
            for bit, on in flips:
                if on:
                    W.words_set_bit(row, bit)
                else:
                    W.words_clear_bit(row, bit)
            rows[u] = W.from_words(row)

    @staticmethod
    def adjacency_ops(
        adjacency: Sequence[int], nbits: Optional[int] = None
    ) -> WordAdjacencyOps:
        return WordAdjacencyOps(adjacency, nbits)


_KERNELS = {"int": IntMaskKernels(), "words": WordMaskKernels()}

INT_KERNELS = _KERNELS["int"]


def get_kernels(backend: str):
    """The kernel provider singleton for a ``mask_backend`` value."""
    try:
        return _KERNELS[backend]
    except KeyError:
        raise ValueError(
            f"unknown mask_backend {backend!r}; expected one of {MASK_BACKENDS}"
        )
