"""Neighborhood label frequency filtering (NLF) [3].

Strengthens LDF: candidate ``v`` for ``u`` must have, for every label
``l``, at least as many label-``l`` neighbors as ``u`` does.  The paper's
running example removes ``v13`` from ``C(u0)`` this way (§2.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.filtering.ldf import ldf_candidates
from repro.graph.graph import Graph


def _nlf_ok(query_freq: Dict[object, int], data_freq: Dict[object, int]) -> bool:
    for label, needed in query_freq.items():
        if data_freq.get(label, 0) < needed:
            return False
    return True


def nlf_candidates(
    query: Graph,
    data: Graph,
    base: Optional[List[List[int]]] = None,
) -> List[List[int]]:
    """Per-query-vertex candidate lists under LDF + NLF.

    ``base`` optionally supplies already-filtered candidate lists to
    refine (defaults to LDF output).
    """
    if base is None:
        base = ldf_candidates(query, data)
    refined: List[List[int]] = []
    for u in query.vertices():
        query_freq = query.neighbor_label_frequency(u)
        refined.append(
            [
                v
                for v in base[u]
                if _nlf_ok(query_freq, data.neighbor_label_frequency(v))
            ]
        )
    return refined
