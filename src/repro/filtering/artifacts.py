"""Reusable data-graph-side filter artifacts.

The first two filters of every pipeline — LDF and NLF — only read
*data-graph* structure that is identical for every query: the label
index, per-vertex degrees, and the neighbor label frequency tables.
:class:`DataArtifacts` precomputes them once per data graph so a batch
engine (``GuPEngine.match_many``) pays the cost once per data graph /
worker process instead of once per query:

* ``label_buckets`` stores, per label, the carrying vertices sorted by
  *descending degree* (plus the aligned degree sequence).  The LDF
  candidate set for ``(label, min_degree)`` is then a prefix located by
  one binary search, instead of a scan over every vertex with the label.
* Constructing the artifacts materializes the graph's (lazily built) NLF
  tables, so forked/pickled workers inherit them instead of each
  recomputing them on first use.

Outputs are exactly those of :func:`repro.filtering.ldf.ldf_candidates`
and :func:`repro.filtering.nlf.nlf_candidates` (asserted by
``tests/test_filtering.py``).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Tuple

from repro.filtering.nlf import _nlf_ok
from repro.graph.graph import Graph


class DataArtifacts:
    """Per-data-graph filter state, shared across a whole query set."""

    __slots__ = ("data", "degrees", "label_buckets")

    def __init__(self, data: Graph) -> None:
        self.data = data
        self.degrees: Tuple[int, ...] = tuple(
            data.degree(v) for v in data.vertices()
        )
        buckets: Dict[object, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
        for label in data.label_set:
            vs = sorted(
                data.vertices_with_label(label),
                key=lambda v: self.degrees[v],
                reverse=True,
            )
            buckets[label] = (
                tuple(vs),
                # Negated-degree sequence is ascending: bisect finds the
                # end of the ``degree >= min_degree`` prefix.
                tuple(-self.degrees[v] for v in vs),
            )
        self.label_buckets = buckets
        if data.num_vertices > 0:
            data.neighbor_label_frequency(0)  # materialize the NLF cache

    def ldf_candidates(self, query: Graph) -> List[List[int]]:
        """LDF candidate lists (== :func:`repro.filtering.ldf.ldf_candidates`)."""
        candidates: List[List[int]] = []
        for u in query.vertices():
            bucket = self.label_buckets.get(query.label(u))
            if bucket is None:
                candidates.append([])
                continue
            vs, neg_degrees = bucket
            end = bisect_right(neg_degrees, -query.degree(u))
            candidates.append(sorted(vs[:end]))
        return candidates

    def nlf_candidates(self, query: Graph) -> List[List[int]]:
        """LDF+NLF candidate lists (== :func:`repro.filtering.nlf.nlf_candidates`)."""
        data = self.data
        refined: List[List[int]] = []
        for u, base in enumerate(self.ldf_candidates(query)):
            query_freq = query.neighbor_label_frequency(u)
            refined.append(
                [
                    v
                    for v in base
                    if _nlf_ok(query_freq, data.neighbor_label_frequency(v))
                ]
            )
        return refined
