"""Reusable data-graph-side filter artifacts.

The first two filters of every pipeline — LDF and NLF — only read
*data-graph* structure that is identical for every query: the label
index, per-vertex degrees, and the neighbor label frequency tables.
:class:`DataArtifacts` precomputes them once per data graph so a batch
engine (``GuPEngine.match_many``) pays the cost once per data graph /
worker process instead of once per query:

* ``label_buckets`` stores, per label, the carrying vertices sorted by
  *descending degree* (plus the aligned degree sequence).  The LDF
  candidate set for ``(label, min_degree)`` is then a prefix located by
  one binary search, instead of a scan over every vertex with the label.
* Constructing the artifacts materializes the graph's (lazily built) NLF
  tables, so forked/pickled workers inherit them instead of each
  recomputing them on first use.

Since format v2 the artifacts also carry the **dense build-path
bitmaps** (DESIGN.md §8): per-label data-vertex bitmaps and per-vertex
adjacency bitmaps, both Python ints with bit ``v`` standing for data
vertex ``v``.  On top of them the artifacts derive (lazily, cached
forever per instance) the LDF degree-prefix masks and the NLF/NLF2
count-threshold masks, so the whole seeding stage of GCS construction
collapses into a handful of cached-mask ANDs per query vertex
(:meth:`nlf_candidate_masks`), and DAG-graph DP's survival test becomes
``adjacency_bitmaps[v] & candidate_mask`` (:mod:`repro.filtering.masks`).

Outputs are exactly those of :func:`repro.filtering.ldf.ldf_candidates`
and :func:`repro.filtering.nlf.nlf_candidates` (asserted by
``tests/test_filtering.py``); the mask variants decode to the same
lists (``tests/test_build_masks.py``).

The artifacts are also *persistable*: :func:`dumps_artifacts` /
:func:`loads_artifacts` serialize everything derived (degrees, label
buckets, the graph's NLF tables) **without** the graph itself, so the
service catalog (:mod:`repro.service.catalog`) can store the graph in
the portable ``.graph`` text format and the artifacts as a sidecar
blob, rebinding them on load.  The blob is versioned and validated
against the graph it is loaded for; any mismatch raises
:exc:`ArtifactsFormatError` so callers rebuild instead of trusting a
stale or corrupted store.
"""

from __future__ import annotations

import pickle
from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

from repro.filtering.mask_kernels import INT_KERNELS
from repro.filtering.nlf import _nlf_ok
from repro.graph.graph import Graph
from repro.utils.bitset import mask_of

ARTIFACTS_FORMAT_VERSION = 2
"""Bump when the serialized payload layout changes; loaders treat any
other version as stale and rebuild from the graph.

v1: degrees + label buckets + NLF tables.
v2: v1 plus the dense build-path bitmaps (per-label data-vertex
bitmaps, per-vertex adjacency bitmaps)."""


class ArtifactsFormatError(ValueError):
    """A serialized artifacts blob is corrupt, stale, or mismatched."""


def _label_sort_key(label: object) -> Tuple[str, str]:
    """Deterministic cross-type ordering for labels.

    Label-keyed dicts (buckets, bitmaps) are built in this order so a
    cold build and a delta patch produce byte-identical serialized
    payloads — set iteration order would differ once a delta introduces
    a new label.
    """
    return (type(label).__name__, repr(label))


def _sorted_labels(labels) -> List[object]:
    return sorted(labels, key=_label_sort_key)


class DataArtifacts:
    """Per-data-graph filter state, shared across a whole query set."""

    __slots__ = (
        "data",
        "degrees",
        "label_buckets",
        "label_bitmaps",
        "adjacency_bitmaps",
        "reuse_report",
        "_ldf_masks",
        "_nlf_count_vectors",
        "_nlf_count_masks",
        "_nlf2_tables",
        "_nlf2_count_masks",
        "_adjacency_ops",
    )

    builds_performed = 0
    """Process-wide count of from-scratch constructions (class attribute).

    Deserializing via :func:`loads_artifacts` does *not* increment it,
    which is what lets the service tests assert that a warm catalog
    performs zero rebuilds."""

    patches_performed = 0
    """Process-wide count of incremental delta patches (class attribute).

    :meth:`apply_delta` increments this instead of ``builds_performed``,
    so the service tests can assert that graph updates never fall back
    to a from-scratch rebuild."""

    def __init__(self, data: Graph) -> None:
        DataArtifacts.builds_performed += 1
        self.data = data
        self.reuse_report: Dict[str, int] = {}
        self.degrees: Tuple[int, ...] = tuple(
            data.degree(v) for v in data.vertices()
        )
        # Label-keyed dicts are built in canonical label order (see
        # _label_sort_key) so delta patches can reproduce them exactly.
        buckets: Dict[object, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
        for label in _sorted_labels(data.label_set):
            vs = sorted(
                data.vertices_with_label(label),
                key=lambda v: self.degrees[v],
                reverse=True,
            )
            buckets[label] = (
                tuple(vs),
                # Negated-degree sequence is ascending: bisect finds the
                # end of the ``degree >= min_degree`` prefix.
                tuple(-self.degrees[v] for v in vs),
            )
        self.label_buckets = buckets
        # Dense build-path bitmaps (DESIGN.md §8): bit v == data vertex v.
        self.label_bitmaps: Dict[object, int] = {
            label: mask_of(data.vertices_with_label(label))
            for label in _sorted_labels(data.label_set)
        }
        self.adjacency_bitmaps: Tuple[int, ...] = tuple(
            mask_of(data.neighbors(v)) for v in data.vertices()
        )
        self._init_mask_caches()
        if data.num_vertices > 0:
            data.neighbor_label_frequency(0)  # materialize the NLF cache

    def _init_mask_caches(self) -> None:
        """Empty lazy caches derived from the persisted bitmaps."""
        self._ldf_masks: Dict[Tuple[object, int], int] = {}
        self._nlf_count_vectors: Dict[object, List[int]] = {}
        self._nlf_count_masks: Dict[Tuple[object, int], int] = {}
        self._nlf2_tables: Optional[List[Dict[object, int]]] = None
        self._nlf2_count_masks: Dict[Tuple[object, int], int] = {}
        self._adjacency_ops: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Pickling (procpool workers, debugging dumps)
    #
    # Only the canonical persisted state travels: the graph and the
    # int bitmaps/buckets.  Derived caches — mask ladders, count
    # vectors, lowered adjacency ops (which may hold a numpy matrix) —
    # are dropped and rebuilt lazily, so two artifacts that saw
    # different mask backends (or different query workloads) pickle to
    # the *same bytes*.  ``tests/test_config_matrix.py`` relies on this
    # for the procpool leg of the differential grid.
    # ------------------------------------------------------------------

    def __getstate__(self):
        return (
            self.data,
            self.degrees,
            self.label_buckets,
            self.label_bitmaps,
            self.adjacency_bitmaps,
            self.reuse_report,
        )

    def __setstate__(self, state) -> None:
        (
            self.data,
            self.degrees,
            self.label_buckets,
            self.label_bitmaps,
            self.adjacency_bitmaps,
            self.reuse_report,
        ) = state
        self._init_mask_caches()

    def adjacency_ops(self, kernels=None):
        """The (cached) survival-kernel lowering of ``adjacency_bitmaps``.

        One instance per backend per artifacts object — the words
        backend's dense ``uint64`` matrix is built once and shared by
        every GCS construction against this data graph.
        """
        if kernels is None:
            kernels = INT_KERNELS
        ops = self._adjacency_ops.get(kernels.backend)
        if ops is None:
            ops = kernels.adjacency_ops(
                self.adjacency_bitmaps, self.data.num_vertices
            )
            self._adjacency_ops[kernels.backend] = ops
        return ops

    def ldf_candidates(self, query: Graph) -> List[List[int]]:
        """LDF candidate lists (== :func:`repro.filtering.ldf.ldf_candidates`)."""
        candidates: List[List[int]] = []
        for u in query.vertices():
            bucket = self.label_buckets.get(query.label(u))
            if bucket is None:
                candidates.append([])
                continue
            vs, neg_degrees = bucket
            end = bisect_right(neg_degrees, -query.degree(u))
            candidates.append(sorted(vs[:end]))
        return candidates

    def nlf_candidates(self, query: Graph) -> List[List[int]]:
        """LDF+NLF candidate lists (== :func:`repro.filtering.nlf.nlf_candidates`)."""
        data = self.data
        refined: List[List[int]] = []
        for u, base in enumerate(self.ldf_candidates(query)):
            query_freq = query.neighbor_label_frequency(u)
            refined.append(
                [
                    v
                    for v in base
                    if _nlf_ok(query_freq, data.neighbor_label_frequency(v))
                ]
            )
        return refined

    # ------------------------------------------------------------------
    # Dense build path: candidate masks over data-vertex ids
    # ------------------------------------------------------------------

    def ldf_mask(self, label: object, min_degree: int, kernels=None) -> int:
        """LDF candidate *mask*: vertices with ``label`` and degree >= bound.

        The label bucket is degree-descending, so the mask is a bucket
        prefix located by one bisect; each distinct ``(label, prefix)``
        is assembled once and cached for the artifacts' lifetime —
        repeated queries pay one dict hit.  The cache is shared across
        mask backends (kernels only change *how* the prefix is packed,
        never the resulting int).
        """
        bucket = self.label_buckets.get(label)
        if bucket is None:
            return 0
        vs, neg_degrees = bucket
        end = bisect_right(neg_degrees, -min_degree)
        if end == len(vs):
            return self.label_bitmaps[label]
        key = (label, end)
        cached = self._ldf_masks.get(key)
        if cached is None:
            pack = (kernels or INT_KERNELS).mask_of
            cached = self._ldf_masks[key] = pack(
                vs[:end], self.data.num_vertices
            )
        return cached

    def _nlf_count_vector(self, label: object) -> List[int]:
        """Per-vertex count of label-``label`` neighbors (lazy per label).

        One O(|V|) table scan per distinct label, shared by every
        threshold in that label's ladder — and by both mask backends.
        """
        vector = self._nlf_count_vectors.get(label)
        if vector is None:
            data = self.data
            vector = [
                data.neighbor_label_frequency(v).get(label, 0)
                for v in data.vertices()
            ]
            self._nlf_count_vectors[label] = vector
        return vector

    def nlf_count_mask(self, label: object, count: int, kernels=None) -> int:
        """Mask of data vertices with >= ``count`` label-``label`` neighbors.

        NLF's per-candidate frequency-table comparison factors into one
        AND per (label, needed-count) pair against these thresholds;
        each distinct pair is computed once from the label's cached
        count vector (:meth:`_nlf_count_vector`) and cached.
        """
        key = (label, count)
        cached = self._nlf_count_masks.get(key)
        if cached is None:
            threshold = (kernels or INT_KERNELS).threshold_mask
            cached = threshold(self._nlf_count_vector(label), count)
            self._nlf_count_masks[key] = cached
        return cached

    def nlf2_count_mask(self, label: object, count: int, kernels=None) -> int:
        """Like :meth:`nlf_count_mask` over the distance-<=2 ball counts."""
        key = (label, count)
        cached = self._nlf2_count_masks.get(key)
        if cached is None:
            tables = self.nlf2_tables()
            threshold = (kernels or INT_KERNELS).threshold_mask
            cached = threshold(
                [counts.get(label, 0) for counts in tables], count
            )
            self._nlf2_count_masks[key] = cached
        return cached

    def nlf2_tables(self) -> List[Dict[object, int]]:
        """Data-side distance-<=2 label-count tables (lazy, cached)."""
        if self._nlf2_tables is None:
            from repro.filtering.nlf2 import _two_hop_label_counts

            self._nlf2_tables = _two_hop_label_counts(self.data)
        return self._nlf2_tables

    def ldf_candidate_masks(self, query: Graph, kernels=None) -> List[int]:
        """Per-query-vertex LDF masks (decode == :meth:`ldf_candidates`)."""
        return [
            self.ldf_mask(query.label(u), query.degree(u), kernels=kernels)
            for u in query.vertices()
        ]

    def nlf_candidate_masks(self, query: Graph, kernels=None) -> List[int]:
        """Per-query-vertex LDF+NLF masks (decode == :meth:`nlf_candidates`)."""
        masks: List[int] = []
        for u in query.vertices():
            mask = self.ldf_mask(query.label(u), query.degree(u), kernels=kernels)
            for label, needed in query.neighbor_label_frequency(u).items():
                if not mask:
                    break
                mask &= self.nlf_count_mask(label, needed, kernels=kernels)
            masks.append(mask)
        return masks

    # ------------------------------------------------------------------
    # Incremental maintenance (DESIGN.md §9)
    # ------------------------------------------------------------------

    def apply_delta(self, new_graph: Graph, summary, kernels=None) -> "DataArtifacts":
        """Patched artifacts for ``new_graph`` (the delta-applied graph).

        ``summary`` is the :class:`repro.dynamic.delta.DeltaSummary`
        returned by ``apply_delta(self.data, delta)`` and ``new_graph``
        the graph it produced.  Only structures covering the summary's
        touched vertices/labels are re-derived; everything else is
        reused from this instance (buckets and bitmap rows by
        reference, adjacency rows by a couple of bit flips).  The
        result serializes byte-identically to ``DataArtifacts(new_graph)``
        — ``tests/test_dynamic.py`` proves it differentially — while
        performing no per-untouched-vertex work.

        The lazy mask ladders carry over patched: LDF prefix masks of
        untouched labels stay (their buckets are unchanged), touched
        labels' entries are dropped; NLF count-threshold masks have
        exactly the touched vertices' bits recomputed.  The NLF2
        two-hop tables are invalidated wholesale — a delta's influence
        there has radius 2, so patching them would touch the whole
        neighborhood of the neighborhood for marginal reuse.

        ``reuse_report`` on the returned instance quantifies the reuse;
        the class-level ``patches_performed`` counter increments instead
        of ``builds_performed``.  ``kernels`` routes the adjacency-row
        bit flips (the per-edge part of the patch) through the selected
        mask backend; the patched rows are identical ints either way.
        """
        DataArtifacts.patches_performed += 1
        if kernels is None:
            kernels = INT_KERNELS
        touched = summary.touched_vertices
        touched_labels = summary.touched_labels
        n_new = summary.num_vertices_after

        patched = DataArtifacts.__new__(DataArtifacts)
        patched.data = new_graph

        degrees = list(self.degrees)
        degrees.extend(0 for _ in summary.added_vertices)
        for v in touched:
            degrees[v] = new_graph.degree(v)
        patched.degrees = tuple(degrees)

        buckets: Dict[object, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
        bitmaps: Dict[object, int] = {}
        buckets_reused = buckets_rebuilt = 0
        for label in _sorted_labels(new_graph.label_set):
            if label in touched_labels or label not in self.label_buckets:
                vs = sorted(
                    new_graph.vertices_with_label(label),
                    key=lambda v: degrees[v],
                    reverse=True,
                )
                buckets[label] = (
                    tuple(vs),
                    tuple(-degrees[v] for v in vs),
                )
                bitmaps[label] = mask_of(new_graph.vertices_with_label(label))
                buckets_rebuilt += 1
            else:
                buckets[label] = self.label_buckets[label]
                bitmaps[label] = self.label_bitmaps[label]
                buckets_reused += 1
        patched.label_buckets = buckets
        patched.label_bitmaps = bitmaps

        adjacency = list(self.adjacency_bitmaps)
        adjacency.extend(0 for _ in summary.added_vertices)
        kernels.flip_edge_bits(
            adjacency, summary.added_edges, summary.removed_edges
        )
        patched.adjacency_bitmaps = tuple(adjacency)

        # Lazy ladders: keep what provably survived, patch the rest.
        ldf_kept = 0
        patched._ldf_masks = {}
        for (label, end), mask in self._ldf_masks.items():
            if label not in touched_labels:
                patched._ldf_masks[(label, end)] = mask
                ldf_kept += 1
        patched._nlf_count_masks = {}
        for (label, count), mask in self._nlf_count_masks.items():
            for v in touched:
                if new_graph.neighbor_label_frequency(v).get(label, 0) >= count:
                    mask |= 1 << v
                else:
                    mask &= ~(1 << v)
            patched._nlf_count_masks[(label, count)] = mask
        # Count vectors and lowered adjacency ops are derived caches tied
        # to the *old* rows; rebuilt lazily against the patched state.
        patched._nlf_count_vectors = {}
        patched._adjacency_ops = {}
        patched._nlf2_tables = None
        patched._nlf2_count_masks = {}

        patched.reuse_report = {
            "vertices": n_new,
            "vertices_touched": len(touched),
            "adjacency_rows_reused": n_new - len(touched),
            "label_buckets_reused": buckets_reused,
            "label_buckets_rebuilt": buckets_rebuilt,
            "ldf_masks_kept": ldf_kept,
            "ldf_masks_dropped": len(self._ldf_masks) - ldf_kept,
            "nlf_masks_patched": len(self._nlf_count_masks),
        }
        return patched


# ----------------------------------------------------------------------
# Serialization (graph-free payload; the graph is stored separately)
# ----------------------------------------------------------------------


def dumps_artifacts(artifacts: DataArtifacts) -> bytes:
    """Serialize everything derived from the data graph (not the graph).

    The payload carries the degree sequence, the label buckets, and the
    graph's materialized NLF tables, so :func:`loads_artifacts` restores
    the full warm state — including the NLF cache that
    ``DataArtifacts.__init__`` would otherwise recompute — without any
    per-vertex work.
    """
    data = artifacts.data
    payload = (
        ARTIFACTS_FORMAT_VERSION,
        data.num_vertices,
        data.num_edges,
        artifacts.degrees,
        artifacts.label_buckets,
        # Access through the public API so the tables exist even if the
        # artifacts were built against a graph whose cache was cleared.
        [data.neighbor_label_frequency(v) for v in data.vertices()]
        if data.num_vertices > 0
        else [],
        artifacts.label_bitmaps,
        artifacts.adjacency_bitmaps,
    )
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def loads_artifacts(blob: bytes, data: Graph) -> DataArtifacts:
    """Rebind a serialized payload to ``data`` without rebuilding.

    Validates the payload against the graph (format version, vertex and
    edge counts, degree sequence, label-bucket key set) and raises
    :exc:`ArtifactsFormatError` on *any* mismatch or decode failure —
    truncated files, foreign pickles, stale versions — so callers treat
    the blob as disposable and rebuild.
    """
    try:
        payload = pickle.loads(blob)
    except Exception as exc:  # noqa: BLE001 - any decode failure is "corrupt"
        raise ArtifactsFormatError(f"artifacts blob does not decode: {exc}")
    if not (isinstance(payload, tuple) and len(payload) >= 1):
        raise ArtifactsFormatError("artifacts payload has unexpected shape")
    if payload[0] != ARTIFACTS_FORMAT_VERSION:
        # Stale format (e.g. a v1 blob without the build-path bitmaps):
        # a clean rebuild signal, never an attempt to upgrade in place.
        raise ArtifactsFormatError(
            f"artifacts format version {payload[0]!r} != {ARTIFACTS_FORMAT_VERSION}"
        )
    if len(payload) != 8:
        raise ArtifactsFormatError("artifacts payload has unexpected shape")
    (
        _version,
        num_vertices,
        num_edges,
        degrees,
        label_buckets,
        nlf,
        label_bitmaps,
        adjacency_bitmaps,
    ) = payload
    if num_vertices != data.num_vertices or num_edges != data.num_edges:
        raise ArtifactsFormatError(
            "artifacts were built for a different graph "
            f"({num_vertices} vertices / {num_edges} edges, graph has "
            f"{data.num_vertices} / {data.num_edges})"
        )
    if not isinstance(degrees, tuple) or len(degrees) != data.num_vertices:
        raise ArtifactsFormatError("degree sequence has wrong length")
    if any(degrees[v] != data.degree(v) for v in data.vertices()):
        raise ArtifactsFormatError("degree sequence does not match the graph")
    if not isinstance(label_buckets, dict) or set(label_buckets) != set(
        data.label_set
    ):
        raise ArtifactsFormatError("label buckets do not match the graph")
    if not isinstance(nlf, list) or len(nlf) != data.num_vertices:
        raise ArtifactsFormatError("NLF tables have wrong length")
    if not isinstance(label_bitmaps, dict) or set(label_bitmaps) != set(
        data.label_set
    ):
        raise ArtifactsFormatError("label bitmaps do not match the graph")
    if (
        not isinstance(adjacency_bitmaps, tuple)
        or len(adjacency_bitmaps) != data.num_vertices
    ):
        raise ArtifactsFormatError("adjacency bitmaps have wrong length")
    # Bitmaps must be the canonical nonnegative-int representation — a
    # payload carrying word arrays (or anything else a mask backend uses
    # internally) is stale by definition, never silently adapted: the
    # at-rest format is backend-independent (DESIGN.md §11).
    if any(type(m) is not int or m < 0 for m in label_bitmaps.values()) or any(
        type(m) is not int or m < 0 for m in adjacency_bitmaps
    ):
        raise ArtifactsFormatError(
            "bitmap payload is not canonical int masks"
        )

    artifacts = DataArtifacts.__new__(DataArtifacts)
    artifacts.data = data
    artifacts.reuse_report = {}
    artifacts.degrees = degrees
    artifacts.label_buckets = label_buckets
    artifacts.label_bitmaps = label_bitmaps
    artifacts.adjacency_bitmaps = adjacency_bitmaps
    artifacts._init_mask_caches()
    if data.num_vertices > 0 and not data._nlf:
        data._nlf = nlf  # install the warm NLF cache
    return artifacts
