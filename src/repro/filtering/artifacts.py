"""Reusable data-graph-side filter artifacts.

The first two filters of every pipeline — LDF and NLF — only read
*data-graph* structure that is identical for every query: the label
index, per-vertex degrees, and the neighbor label frequency tables.
:class:`DataArtifacts` precomputes them once per data graph so a batch
engine (``GuPEngine.match_many``) pays the cost once per data graph /
worker process instead of once per query:

* ``label_buckets`` stores, per label, the carrying vertices sorted by
  *descending degree* (plus the aligned degree sequence).  The LDF
  candidate set for ``(label, min_degree)`` is then a prefix located by
  one binary search, instead of a scan over every vertex with the label.
* Constructing the artifacts materializes the graph's (lazily built) NLF
  tables, so forked/pickled workers inherit them instead of each
  recomputing them on first use.

Outputs are exactly those of :func:`repro.filtering.ldf.ldf_candidates`
and :func:`repro.filtering.nlf.nlf_candidates` (asserted by
``tests/test_filtering.py``).

The artifacts are also *persistable*: :func:`dumps_artifacts` /
:func:`loads_artifacts` serialize everything derived (degrees, label
buckets, the graph's NLF tables) **without** the graph itself, so the
service catalog (:mod:`repro.service.catalog`) can store the graph in
the portable ``.graph`` text format and the artifacts as a sidecar
blob, rebinding them on load.  The blob is versioned and validated
against the graph it is loaded for; any mismatch raises
:exc:`ArtifactsFormatError` so callers rebuild instead of trusting a
stale or corrupted store.
"""

from __future__ import annotations

import pickle
from bisect import bisect_right
from typing import Dict, List, Tuple

from repro.filtering.nlf import _nlf_ok
from repro.graph.graph import Graph

ARTIFACTS_FORMAT_VERSION = 1
"""Bump when the serialized payload layout changes; loaders treat any
other version as stale and rebuild from the graph."""


class ArtifactsFormatError(ValueError):
    """A serialized artifacts blob is corrupt, stale, or mismatched."""


class DataArtifacts:
    """Per-data-graph filter state, shared across a whole query set."""

    __slots__ = ("data", "degrees", "label_buckets")

    builds_performed = 0
    """Process-wide count of from-scratch constructions (class attribute).

    Deserializing via :func:`loads_artifacts` does *not* increment it,
    which is what lets the service tests assert that a warm catalog
    performs zero rebuilds."""

    def __init__(self, data: Graph) -> None:
        DataArtifacts.builds_performed += 1
        self.data = data
        self.degrees: Tuple[int, ...] = tuple(
            data.degree(v) for v in data.vertices()
        )
        buckets: Dict[object, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
        for label in data.label_set:
            vs = sorted(
                data.vertices_with_label(label),
                key=lambda v: self.degrees[v],
                reverse=True,
            )
            buckets[label] = (
                tuple(vs),
                # Negated-degree sequence is ascending: bisect finds the
                # end of the ``degree >= min_degree`` prefix.
                tuple(-self.degrees[v] for v in vs),
            )
        self.label_buckets = buckets
        if data.num_vertices > 0:
            data.neighbor_label_frequency(0)  # materialize the NLF cache

    def ldf_candidates(self, query: Graph) -> List[List[int]]:
        """LDF candidate lists (== :func:`repro.filtering.ldf.ldf_candidates`)."""
        candidates: List[List[int]] = []
        for u in query.vertices():
            bucket = self.label_buckets.get(query.label(u))
            if bucket is None:
                candidates.append([])
                continue
            vs, neg_degrees = bucket
            end = bisect_right(neg_degrees, -query.degree(u))
            candidates.append(sorted(vs[:end]))
        return candidates

    def nlf_candidates(self, query: Graph) -> List[List[int]]:
        """LDF+NLF candidate lists (== :func:`repro.filtering.nlf.nlf_candidates`)."""
        data = self.data
        refined: List[List[int]] = []
        for u, base in enumerate(self.ldf_candidates(query)):
            query_freq = query.neighbor_label_frequency(u)
            refined.append(
                [
                    v
                    for v in base
                    if _nlf_ok(query_freq, data.neighbor_label_frequency(v))
                ]
            )
        return refined


# ----------------------------------------------------------------------
# Serialization (graph-free payload; the graph is stored separately)
# ----------------------------------------------------------------------


def dumps_artifacts(artifacts: DataArtifacts) -> bytes:
    """Serialize everything derived from the data graph (not the graph).

    The payload carries the degree sequence, the label buckets, and the
    graph's materialized NLF tables, so :func:`loads_artifacts` restores
    the full warm state — including the NLF cache that
    ``DataArtifacts.__init__`` would otherwise recompute — without any
    per-vertex work.
    """
    data = artifacts.data
    payload = (
        ARTIFACTS_FORMAT_VERSION,
        data.num_vertices,
        data.num_edges,
        artifacts.degrees,
        artifacts.label_buckets,
        # Access through the public API so the tables exist even if the
        # artifacts were built against a graph whose cache was cleared.
        [data.neighbor_label_frequency(v) for v in data.vertices()]
        if data.num_vertices > 0
        else [],
    )
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def loads_artifacts(blob: bytes, data: Graph) -> DataArtifacts:
    """Rebind a serialized payload to ``data`` without rebuilding.

    Validates the payload against the graph (format version, vertex and
    edge counts, degree sequence, label-bucket key set) and raises
    :exc:`ArtifactsFormatError` on *any* mismatch or decode failure —
    truncated files, foreign pickles, stale versions — so callers treat
    the blob as disposable and rebuild.
    """
    try:
        payload = pickle.loads(blob)
    except Exception as exc:  # noqa: BLE001 - any decode failure is "corrupt"
        raise ArtifactsFormatError(f"artifacts blob does not decode: {exc}")
    if not (isinstance(payload, tuple) and len(payload) == 6):
        raise ArtifactsFormatError("artifacts payload has unexpected shape")
    version, num_vertices, num_edges, degrees, label_buckets, nlf = payload
    if version != ARTIFACTS_FORMAT_VERSION:
        raise ArtifactsFormatError(
            f"artifacts format version {version!r} != {ARTIFACTS_FORMAT_VERSION}"
        )
    if num_vertices != data.num_vertices or num_edges != data.num_edges:
        raise ArtifactsFormatError(
            "artifacts were built for a different graph "
            f"({num_vertices} vertices / {num_edges} edges, graph has "
            f"{data.num_vertices} / {data.num_edges})"
        )
    if not isinstance(degrees, tuple) or len(degrees) != data.num_vertices:
        raise ArtifactsFormatError("degree sequence has wrong length")
    if any(degrees[v] != data.degree(v) for v in data.vertices()):
        raise ArtifactsFormatError("degree sequence does not match the graph")
    if not isinstance(label_buckets, dict) or set(label_buckets) != set(
        data.label_set
    ):
        raise ArtifactsFormatError("label buckets do not match the graph")
    if not isinstance(nlf, list) or len(nlf) != data.num_vertices:
        raise ArtifactsFormatError("NLF tables have wrong length")

    artifacts = DataArtifacts.__new__(DataArtifacts)
    artifacts.data = data
    artifacts.degrees = degrees
    artifacts.label_buckets = label_buckets
    if data.num_vertices > 0 and not data._nlf:
        data._nlf = nlf  # install the warm NLF cache
    return artifacts
