"""Distance-2 neighborhood label filtering ("pseudo-matching nearby").

§2.1 notes that several methods "perform pseudo-matching on nearby
vertices of a candidate vertex and a query vertex" [16, 36, 40].  This
filter is the canonical cheap instance of that idea, one hop beyond
NLF: candidate ``v`` for ``u`` must offer, for every label ``l``, at
least as many *distance-<=2* label-``l`` vertices as ``u`` requires.

Soundness: an embedding maps the distance-<=2 ball of ``u`` injectively
into the distance-<=2 ball of ``v`` (paths of length <= 2 map to paths
of length <= 2), so per-label ball counts can only grow.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.filtering.nlf import nlf_candidates
from repro.graph.graph import Graph


def _two_hop_label_counts(graph: Graph) -> List[Dict[object, int]]:
    """Per-vertex label counts of the distance-<=2 ball (vertex excluded)."""
    tables: List[Dict[object, int]] = []
    for u in graph.vertices():
        ball = set(graph.neighbors(u))
        for w in graph.neighbors(u):
            ball.update(graph.neighbors(w))
        ball.discard(u)
        counts: Dict[object, int] = {}
        for w in ball:
            label = graph.label(w)
            counts[label] = counts.get(label, 0) + 1
        tables.append(counts)
    return tables


def nlf2_candidates(
    query: Graph,
    data: Graph,
    base: Optional[List[List[int]]] = None,
) -> List[List[int]]:
    """Candidates surviving LDF + NLF + distance-2 label counting.

    ``base`` optionally supplies already-filtered lists (defaults to
    LDF+NLF output).
    """
    if base is None:
        base = nlf_candidates(query, data)
    query_tables = _two_hop_label_counts(query)
    data_tables = _two_hop_label_counts(data)

    refined: List[List[int]] = []
    for u in query.vertices():
        needed = query_tables[u]
        survivors = []
        for v in base[u]:
            available = data_tables[v]
            if all(
                available.get(label, 0) >= count
                for label, count in needed.items()
            ):
                survivors.append(v)
        refined.append(survivors)
    return refined
