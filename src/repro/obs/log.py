"""Structured JSON request logs + trace-id propagation.

One request = one trace id = many log lines: the client stamps a trace
id on each attempt, the server logs its handling under the same id, and
the procpool ships the id to worker processes through the pickle-once
initializer so even a worker that a fault plan kills mid-task has
already written its line.  A crash-recovery sequence is reconstructable
from the log alone by grepping one trace id.

:class:`StructuredLog` writes one JSON object per line.  When backed by
a path it opens the file in append mode and emits each record as a
single ``write()`` of one ``\\n``-terminated string — on POSIX an
``O_APPEND`` write of that size is atomic, so server threads and pool
worker *processes* can share one file without interleaving.  Path-backed
logs pickle (the path travels; the handle is reopened), which is what
lets the pool initializer carry the log across the process boundary.

Trace context is thread-local: the server wraps the execution of a
request in :func:`trace_context` and everything below it — engine,
procpool dispatch, fault hooks — reads :func:`current_trace` /
:func:`current_log` without signature churn.

Terminology: these trace ids (and the timed spans of
:mod:`repro.obs.spans` that ride on them) describe the *serving stack*
around a request.  They are unrelated to
:class:`repro.analysis.trace.TraceRecorder`, which records the
Algorithm-2 search event stream (descend / conflict / embedding) of
one in-process matching run.
"""

from __future__ import annotations

import io
import json
import os
import sys
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

_local = threading.local()


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return os.urandom(8).hex()


class StructuredLog:
    """An append-only JSON-lines log, safe across threads and processes.

    ``path=None`` keeps the last ``memory_limit`` records in memory
    (``records``) — handy in tests and as a server default that cannot
    grow without bound.  ``stream=`` writes to an open text stream
    (e.g. ``sys.stderr``).  ``path=`` appends to a file and survives
    pickling.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        stream: Optional[io.TextIOBase] = None,
        memory_limit: int = 10_000,
    ) -> None:
        self.path = os.fspath(path) if path is not None else None
        self._stream = stream
        self._lock = threading.Lock()
        self._file: Optional[io.TextIOBase] = None
        self.records: Deque[Dict[str, Any]] = deque(maxlen=memory_limit)

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Write one log line; returns the record (tests read it)."""
        record: Dict[str, Any] = {"ts": round(time.time(), 6), "event": event}
        trace = fields.pop("trace", None) or current_trace()
        if trace:
            record["trace"] = trace
        record["pid"] = os.getpid()
        record.update(fields)
        for key, value in current_fields().items():
            # Context fields (e.g. the admitting tenant) annotate every
            # line under the binding, but an explicit field always wins.
            record.setdefault(key, value)
        if self.path is None and self._stream is None:
            # Memory-backed: keep the dict, skip serialization entirely
            # (this is the server's default sink, so it sits on the
            # query hot path — see bench_obs_overhead.py).
            with self._lock:
                self.records.append(record)
            return record
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with self._lock:
            if self.path is not None:
                if self._file is None:
                    self._file = open(self.path, "a", encoding="utf-8")
                self._file.write(line)
                self._file.flush()
            elif self._stream is not None:
                self._stream.write(line)
                self._stream.flush()
            return record

    def emit_many(
        self, event: str, batch: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Emit several records of one event kind in a single pass.

        The per-record bookkeeping ``emit`` pays — wall-clock stamp,
        pid, thread-context lookups, the sink lock — is paid once for
        the whole batch.  This sits on the query hot path: the server
        closes three phase spans per served request, and emitting them
        one by one shows up in the ≤5% observability overhead budget.
        """
        ts = round(time.time(), 6)
        pid = os.getpid()
        ctx_trace = current_trace()
        ctx_fields = current_fields()
        out: List[Dict[str, Any]] = []
        for fields in batch:
            record: Dict[str, Any] = {"ts": ts, "event": event}
            trace = fields.pop("trace", None) or ctx_trace
            if trace:
                record["trace"] = trace
            record["pid"] = pid
            record.update(fields)
            if ctx_fields:
                for key, value in ctx_fields.items():
                    record.setdefault(key, value)
            out.append(record)
        if self.path is None and self._stream is None:
            with self._lock:
                self.records.extend(out)
            return out
        lines = "".join(
            json.dumps(r, sort_keys=True, default=str) + "\n" for r in out
        )
        with self._lock:
            if self.path is not None:
                if self._file is None:
                    self._file = open(self.path, "a", encoding="utf-8")
                self._file.write(lines)
                self._file.flush()
            elif self._stream is not None:
                self._stream.write(lines)
                self._stream.flush()
            return out

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    # -- reading back (tests, CI artifact checks) ----------------------

    def read_records(self) -> List[Dict[str, Any]]:
        """All records: from memory, or parsed back from the file."""
        if self.path is None:
            with self._lock:
                return list(self.records)
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                return [
                    json.loads(line)
                    for line in handle
                    if line.strip()
                ]
        except FileNotFoundError:
            return []

    # -- pickling (procpool initializer) -------------------------------

    def __getstate__(self):
        if self.path is None and self._stream is not None:
            # Streams don't travel; workers fall back to stderr.
            return {"path": None}
        return {"path": self.path}

    def __setstate__(self, state):
        self.__init__(path=state["path"])


_STDERR_LOG: Optional[StructuredLog] = None


def stderr_log() -> StructuredLog:
    """Process-wide stderr-backed log (lazy singleton)."""
    global _STDERR_LOG
    if _STDERR_LOG is None:
        _STDERR_LOG = StructuredLog(stream=sys.stderr)
    return _STDERR_LOG


class trace_context:
    """Bind (trace id, log, extra fields) to the current thread for a
    ``with`` block.  ``fields`` (e.g. ``{"tenant": name}``) are merged
    into every record emitted under the binding — including procpool
    worker lines, since the initializer ships the whole context."""

    def __init__(
        self,
        trace: Optional[str],
        log: Optional[StructuredLog],
        fields: Optional[Dict[str, Any]] = None,
    ):
        self.trace = trace
        self.log = log
        self.fields = fields
        self._prev: Any = None

    def __enter__(self) -> "trace_context":
        self._prev = getattr(_local, "ctx", None)
        _local.ctx = (self.trace, self.log, self.fields or {})
        return self

    def __exit__(self, *exc) -> None:
        _local.ctx = self._prev


def set_trace_context(
    trace: Optional[str],
    log: Optional[StructuredLog],
    fields: Optional[Dict[str, Any]] = None,
) -> None:
    """Bind without a ``with`` block — used by the procpool worker
    initializer, where the binding should last the worker's lifetime."""
    _local.ctx = (trace, log, fields or {})


def current_trace() -> Optional[str]:
    ctx = getattr(_local, "ctx", None)
    return ctx[0] if ctx else None


def current_log() -> Optional[StructuredLog]:
    ctx = getattr(_local, "ctx", None)
    return ctx[1] if ctx else None


def current_fields() -> Dict[str, Any]:
    """The context fields bound to this thread (empty dict if none)."""
    ctx = getattr(_local, "ctx", None)
    return ctx[2] if ctx and len(ctx) > 2 and ctx[2] else {}


def emit(event: str, **fields: Any) -> None:
    """Log to the thread's bound log, if any (no-op otherwise)."""
    log = current_log()
    if log is not None:
        log.emit(event, **fields)
