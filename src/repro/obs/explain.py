"""EXPLAIN / ANALYZE report builders for GuP queries.

*Plan* answers "what would the engine do": the chosen matching order
with the per-vertex selection-score components the ordering actually
consulted, the query DAG the DAG-DP filter swept, the reservation /
guard inventory, and the backend + mask-kernel selections — all read
off a real :class:`~repro.core.gcs.GuardedCandidateSpace` build, never
re-derived by a parallel code path that could drift.  *Analyze*
additionally runs the real search and attributes the work exactly:
per-query-vertex candidate counts after each filter stage (collected
by :class:`FilterStageLog`, a passive observer the build pipeline
feeds), the guard-level pruning counters :class:`SearchStats` already
accumulates, and per-root-partition worker wall-clock from the
procpool.

The differential rule is absolute and inherited by construction:
``FilterStageLog`` only reads mask popcounts, the procpool task
collector only copies results the pool produced anyway, and analyze
calls the *ordinary* ``GuPEngine.match`` on the very GCS it inspected
— so an analyze run returns byte-identical embeddings / stats / status
to an unobserved run (``tests/test_explain_differential.py`` proves it
across candidate backends × mask backends × workers).

Analyze summaries are persisted by the server as a versioned
``analyze.json`` sidecar next to the catalog entry's artifact files
(:meth:`repro.service.catalog.GraphCatalog.store_analysis`) — the
per-query feature corpus ROADMAP item 5's cost-model planner trains
on.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from typing import Any, Dict, List, Optional, Sequence

from repro.matching.result import MatchResult, SearchStats

ANALYZE_SIDECAR_VERSION = 1
"""Schema version stamped into every ``analyze.json`` sidecar; readers
must reject (and writers overwrite) sidecars of any other version."""

ANALYZE_SIDECAR_MAX_RECORDS = 64
"""Bound on records kept per entry (oldest dropped first)."""


class FilterStageLog:
    """Passive collector of per-vertex candidate counts per filter stage.

    The mask build pipeline calls :meth:`record` with the popcounts of
    the current candidate masks after each stage it completes (seed
    masks, the selected filter, each DAG-DP round, the consistency
    prune); counts are indexed by *matching-order position* because the
    pipeline runs on the reordered query.  Recording reads popcounts
    and copies a list — it never touches the masks, which is what keeps
    an explained build identical to a plain one.
    """

    __slots__ = ("stages", "dag_parents", "dag_children")

    def __init__(self) -> None:
        self.stages: List[Dict[str, Any]] = []
        self.dag_parents: Optional[List[List[int]]] = None
        self.dag_children: Optional[List[List[int]]] = None

    def record(self, stage: str, counts: Sequence[int]) -> None:
        self.stages.append({
            "stage": stage,
            "candidates_per_vertex": list(counts),
            "total": sum(counts),
        })

    def record_masks(self, stage: str, masks: Sequence[int]) -> None:
        self.record(stage, [m.bit_count() for m in masks])

    def set_dag(self, dag) -> None:
        """Capture the actual :class:`~repro.filtering.dag.QueryDag` swept."""
        self.dag_parents = [list(p) for p in dag.parents]
        self.dag_children = [list(c) for c in dag.children]


def stats_dict(stats: SearchStats) -> Dict[str, Any]:
    """A :class:`SearchStats` as a JSON-friendly dict plus derived rates."""
    out = {f.name: getattr(stats, f.name) for f in dataclass_fields(SearchStats)}
    out["pruned_by_guards"] = stats.pruned_by_guards()
    out["guard_prune_fraction"] = round(stats.guard_prune_fraction(), 6)
    out["average_nogood_size"] = round(stats.average_nogood_size(), 4)
    return out


def plan_report(gcs, config, stage_log: Optional[FilterStageLog] = None) -> Dict[str, Any]:
    """The EXPLAIN (plan) report for one built GCS.

    Everything here is read off the build the engine actually performed
    — ``gcs.order`` *is* the matching order the search would run, the
    reservation inventory *is* the generated guard table.  Per-vertex
    score rows expose the components the ``vc`` ordering ranks by
    (cover membership, candidates, degree); for other orderings the
    cover column is omitted.
    """
    query = gcs.original_query
    cover = None
    if config.ordering == "vc" and query.num_vertices > 0:
        from repro.ordering.vc import _query_vertex_cover

        cover = _query_vertex_cover(query)

    stages = stage_log.stages if stage_log is not None else []
    base = next(
        (s["candidates_per_vertex"] for s in stages if s["stage"] == "seed"),
        None,
    )
    vertex_scores = []
    for position, vertex in enumerate(gcs.order):
        row: Dict[str, Any] = {
            "position": position,
            "vertex": vertex,
            "label": str(query.label(vertex)),
            "degree": query.degree(vertex),
            "initial_candidates": (
                base[position] if base is not None else None
            ),
            "final_candidates": len(gcs.cs.candidates[position]),
        }
        if cover is not None:
            row["in_cover"] = vertex in cover
        vertex_scores.append(row)

    reserved_vertices = sum(
        len(r) for r in gcs.reservations.values()
    )
    memory = gcs.memory_estimate()
    report: Dict[str, Any] = {
        "mode": "plan",
        "query": {
            "num_vertices": query.num_vertices,
            "num_edges": query.num_edges,
            "labels": sorted(str(l) for l in query.label_set),
        },
        "ordering": config.ordering,
        "order": list(gcs.order),
        "vertex_scores": vertex_scores,
        "filter": config.filter_method,
        "backend": {
            "candidate": config.candidate_backend,
            "build": config.build_backend,
            "mask": config.mask_backend,
        },
        "stages": stages,
        "dag": (
            {
                "parents": stage_log.dag_parents,
                "children": stage_log.dag_children,
            }
            if stage_log is not None and stage_log.dag_parents is not None
            else None
        ),
        "reservations": {
            "guards": len(gcs.reservations),
            "reserved_vertices": reserved_vertices,
            "memory_bytes": memory["reservation"],
        },
        "two_core_edges": len(gcs.two_core),
        "candidate_space": {
            "vertices": gcs.cs.total_candidates(),
            "edges": gcs.cs.num_candidate_edges,
            "memory_bytes": memory["candidate_space"],
        },
        "build_seconds": round(gcs.build_seconds, 6),
        "qcache": None,  # the server fills its admission-side decision in
    }
    return report


def analyze_report(
    report: Dict[str, Any],
    result: MatchResult,
    tasks: Optional[List[Dict[str, Any]]] = None,
    workers: int = 1,
) -> Dict[str, Any]:
    """Extend a plan report with the executed search's attribution."""
    report["mode"] = "analyze"
    report["workers"] = workers
    report["result"] = {
        "num_embeddings": result.num_embeddings,
        "status": result.status.value,
        "search_seconds": round(result.elapsed_seconds, 6),
        "preprocessing_seconds": round(result.preprocessing_seconds, 6),
    }
    report["search"] = stats_dict(result.stats)
    report["tasks"] = tasks or []
    return report


def sidecar_record(
    report: Dict[str, Any],
    trace: Optional[str] = None,
    elapsed_seconds: Optional[float] = None,
) -> Dict[str, Any]:
    """One ``analyze.json`` feature record distilled from a report.

    Keeps the planner-relevant features (query shape, order, stage
    counts, search attribution, worker split) and drops the bulky
    per-vertex presentation rows; the full report still travels in the
    query reply for the caller that asked.
    """
    record = {
        "trace": trace,
        "query": report.get("query"),
        "ordering": report.get("ordering"),
        "order": report.get("order"),
        "filter": report.get("filter"),
        "backend": report.get("backend"),
        "stages": report.get("stages"),
        "reservations": report.get("reservations"),
        "two_core_edges": report.get("two_core_edges"),
        "candidate_space": report.get("candidate_space"),
        "build_seconds": report.get("build_seconds"),
        "workers": report.get("workers", 1),
        "result": report.get("result"),
        "search": report.get("search"),
        "tasks": report.get("tasks"),
    }
    if elapsed_seconds is not None:
        record["elapsed_seconds"] = round(elapsed_seconds, 6)
    return record
