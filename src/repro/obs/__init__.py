"""repro.obs — dependency-free observability for the matching service.

Three pieces, designed to be cheap enough to stay on by default
(``check_perf.py --gate obs`` holds the hot path to ≤5% p50 overhead):

* :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket
  histograms with labels, Prometheus text exposition, and
  :class:`~repro.obs.metrics.CounterGroup`: the thread-safe dict-like
  that the server, catalog, query cache, and procpool counters now
  *are*, so the ``stats`` op and ``/metrics`` read identical storage.
* :mod:`repro.obs.log` — JSON-lines structured logs with thread-local
  trace-id propagation that crosses the procpool process boundary.
* :mod:`repro.obs.profile` — a sampling
  :class:`~repro.analysis.trace.SearchObserver` for ``profile=true``
  queries.
* :mod:`repro.obs.spans` — hierarchical timed spans on top of the
  structured log, reconstructable into one causal tree per trace id and
  exportable as Chrome trace-event JSON (``repro trace``).
* :mod:`repro.obs.explain` — EXPLAIN/ANALYZE report builders: matching
  order + scores + guard inventory (plan) and exact per-stage /
  per-guard / per-worker work attribution (analyze), persisted as a
  versioned ``analyze.json`` catalog sidecar.

:class:`Observability` bundles a registry + log + enabled flag; the
server owns one and threads it everywhere.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.explain import (
    ANALYZE_SIDECAR_VERSION,
    FilterStageLog,
)
from repro.obs.log import (
    StructuredLog,
    current_fields,
    current_log,
    current_trace,
    new_trace_id,
    set_trace_context,
    trace_context,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    CounterGroup,
    MetricsRegistry,
    parse_exposition,
)
from repro.obs.profile import SamplingProfiler
from repro.obs.spans import (
    build_chrome_trace,
    current_span,
    emit_span,
    new_span_id,
    set_base_span,
    span,
    span_scope,
    spans_for_trace,
    validate_span_tree,
)

__all__ = [
    "ANALYZE_SIDECAR_VERSION",
    "CounterGroup",
    "DEFAULT_BUCKETS",
    "FilterStageLog",
    "MetricsRegistry",
    "Observability",
    "SamplingProfiler",
    "StructuredLog",
    "build_chrome_trace",
    "current_fields",
    "current_log",
    "current_span",
    "current_trace",
    "emit_span",
    "new_span_id",
    "new_trace_id",
    "parse_exposition",
    "set_base_span",
    "set_trace_context",
    "span",
    "span_scope",
    "spans_for_trace",
    "trace_context",
    "validate_span_tree",
]


class Observability:
    """Registry + structured log + master switch, as one handle.

    ``enabled=False`` turns off the *new* costs — phase histograms and
    structured log lines — while the counters keep counting (they
    predate this layer and the ``stats`` op depends on them).
    """

    def __init__(
        self,
        enabled: bool = True,
        log: Optional[StructuredLog] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.enabled = enabled
        self.registry = registry if registry is not None else MetricsRegistry()
        self.log = log if log is not None else StructuredLog()

    def emit(self, event: str, **fields) -> None:
        """Log a structured line iff observability is enabled."""
        if self.enabled:
            self.log.emit(event, **fields)

    def observe(self, handle, seconds: float) -> None:
        """Record a latency sample iff observability is enabled."""
        if self.enabled:
            handle.observe(seconds)
