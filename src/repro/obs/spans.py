"""Hierarchical timed spans over the structured log (causal tracing).

PR 8's trace ids answer *which* log lines belong to one request; spans
answer *where the time went inside it*.  A span is (id, parent id,
name, monotonic start, duration, attrs), carried on a thread-local
stack next to :mod:`repro.obs.log`'s trace context and emitted as one
ordinary structured-log line (``event="span"``) when the span closes —
so spans ride the existing transport for free: the same ``O_APPEND``
JSON-lines file, the same pickle-once procpool initializer, the same
trace stamping.  When no log is bound to the thread a span costs two
``time.monotonic()`` calls and nothing else.

Timestamps are ``time.monotonic()``: on Linux that is CLOCK_MONOTONIC,
which is system-wide, so spans emitted by the server process and by
procpool worker *processes* share one clock and nest correctly in the
exported timeline.  Cross-process parenting works like trace ids do:
:func:`repro.core.procpool.run_partitioned` captures
:func:`current_span` (the engine's search span) into the worker
initializer context and each worker seeds its stack with
:func:`set_base_span`, so per-root-partition task spans are children
of the search phase span that dispatched them.

Reconstruction: :func:`spans_for_trace` collects one trace's span
records from a log, :func:`build_chrome_trace` converts them to the
Chrome trace-event JSON that ``chrome://tracing`` and Perfetto open
directly, and :func:`validate_span_tree` checks the causal tree (every
parent resolves, one root per trace) — the CI smoke runs all three
against a live served query.

Not to be confused with :class:`repro.analysis.trace.TraceRecorder`,
which records the *Algorithm-2 search event stream* (descend / conflict
/ embedding) of one in-process run; obs trace ids and spans describe
the serving stack around the search, not the search tree itself.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.log import StructuredLog, current_log

_local = threading.local()

SPAN_EVENT = "span"
"""The structured-log event name every closed span is emitted under."""


def new_span_id() -> str:
    """A fresh 8-hex-char span id (unique within a trace)."""
    return os.urandom(4).hex()


def _stack() -> List[str]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current_span() -> Optional[str]:
    """The innermost open span id on this thread (None outside spans)."""
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


def set_base_span(span_id: Optional[str]) -> None:
    """Seed this thread's span stack with an externally-created parent.

    Worker-lifetime analogue of :func:`repro.obs.log.set_trace_context`:
    the procpool initializer calls it once per worker process so every
    task span the worker opens parents to the dispatching search span.
    """
    _local.stack = [span_id] if span_id else []


class span_scope:
    """Install ``parent`` as the span stack for a ``with`` block.

    Executor threads are reused across requests, so a request handler
    must not leave its span stack behind; this saves and restores the
    whole stack (unlike :func:`set_base_span`, which is deliberately
    sticky for worker processes).
    """

    __slots__ = ("parent", "_prev")

    def __init__(self, parent: Optional[str]) -> None:
        self.parent = parent
        self._prev: Optional[List[str]] = None

    def __enter__(self) -> "span_scope":
        self._prev = getattr(_local, "stack", None)
        _local.stack = [self.parent] if self.parent else []
        return self

    def __exit__(self, *exc) -> None:
        _local.stack = self._prev


class span:
    """Context manager timing one named phase as a child of the current span.

    The id/parent are resolved at ``__enter__``; one ``event="span"``
    log line is emitted at ``__exit__`` iff a structured log is bound
    to the thread (:func:`repro.obs.log.current_log`), stamped with the
    bound trace id like every other line.  Attrs must be JSON-friendly.
    """

    __slots__ = ("name", "attrs", "id", "parent", "t0")

    def __init__(self, name: str, **attrs: Any) -> None:
        self.name = name
        self.attrs = attrs
        self.id: Optional[str] = None
        self.parent: Optional[str] = None
        self.t0 = 0.0

    def __enter__(self) -> "span":
        stack = _stack()
        self.parent = stack[-1] if stack else None
        self.id = new_span_id()
        stack.append(self.id)
        self.t0 = time.monotonic()
        return self

    def __exit__(self, *exc) -> None:
        dur = time.monotonic() - self.t0
        stack = getattr(_local, "stack", None)
        if stack and stack[-1] == self.id:
            stack.pop()
        log = current_log()
        if log is not None:
            emit_span(
                log, self.name, self.id, self.parent, self.t0, dur,
                **self.attrs,
            )


def emit_span(
    log: StructuredLog,
    name: str,
    span_id: str,
    parent: Optional[str],
    t0: float,
    dur: float,
    trace: Optional[str] = None,
    **attrs: Any,
) -> None:
    """Low-level span emission for phases timed without a live ``span``.

    The server measures queue wait inside the admission path and only
    later (on the request's executor thread) knows the request span —
    this writes the same record shape a closing :class:`span` would.
    """
    record = {
        "name": name,
        "span": span_id,
        "parent": parent,
        "t0": round(t0, 6),
        "dur": round(dur, 6),
    }
    record.update(attrs)
    if trace is not None:
        record["trace"] = trace
    log.emit(SPAN_EVENT, **record)


def emit_spans(
    log: StructuredLog,
    spans: Sequence[Dict[str, Any]],
    trace: Optional[str] = None,
) -> None:
    """Batch form of :func:`emit_span` — one log pass for all records.

    ``spans`` holds ready-made record dicts (``name``/``span``/
    ``parent``/``t0``/``dur`` plus attrs); the shared ``trace`` is
    stamped onto each.  The server closes its per-request phase spans
    through this so the hot path pays the log bookkeeping once.
    """
    if trace is not None:
        for record in spans:
            record.setdefault("trace", trace)
    log.emit_many(SPAN_EVENT, list(spans))


# ----------------------------------------------------------------------
# Reconstruction: log records -> causal tree -> Chrome trace JSON
# ----------------------------------------------------------------------


def spans_for_trace(
    records: Sequence[Dict[str, Any]], trace: str
) -> List[Dict[str, Any]]:
    """The ``event="span"`` records of one trace, sorted by start time."""
    spans = [
        r for r in records
        if r.get("event") == SPAN_EVENT and r.get("trace") == trace
    ]
    spans.sort(key=lambda r: (r.get("t0", 0.0), r.get("span", "")))
    return spans


def build_chrome_trace(spans: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Spans -> Chrome trace-event JSON (``chrome://tracing`` / Perfetto).

    Each span becomes one complete ("X") event; ``ts``/``dur`` are the
    shared monotonic clock in microseconds, ``pid``/``tid`` come from
    the emitting process so worker rows separate visually, and the span
    / parent ids ride in ``args`` for programmatic consumers.
    """
    events = []
    for record in spans:
        events.append({
            "name": record.get("name", "?"),
            "ph": "X",
            "ts": round(record.get("t0", 0.0) * 1e6, 1),
            "dur": round(record.get("dur", 0.0) * 1e6, 1),
            "pid": record.get("pid", 0),
            "tid": record.get("pid", 0),
            "cat": "repro",
            "args": {
                key: value
                for key, value in record.items()
                if key not in ("event", "name", "t0", "dur", "ts")
            },
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_span_tree(spans: Sequence[Dict[str, Any]]) -> List[str]:
    """Structural checks on one trace's spans; returns problem strings.

    Valid means: at least one span, unique span ids, every non-null
    parent resolves to another span in the set, and exactly one root —
    client attempt through procpool worker tasks form a single causal
    tree under the trace id.
    """
    problems: List[str] = []
    if not spans:
        return ["no spans"]
    ids = [r.get("span") for r in spans]
    if None in ids or "" in ids:
        problems.append("span record without a span id")
    if len(set(ids)) != len(ids):
        problems.append("duplicate span ids")
    known = set(ids)
    roots = []
    for record in spans:
        parent = record.get("parent")
        if parent is None:
            roots.append(record)
        elif parent not in known:
            problems.append(
                f"span {record.get('span')} ({record.get('name')}) has "
                f"unresolved parent {parent}"
            )
    if len(roots) != 1:
        names = [r.get("name") for r in roots]
        problems.append(f"expected exactly one root span, got {names}")
    return problems


def children_of(
    spans: Sequence[Dict[str, Any]], span_id: Optional[str]
) -> List[Dict[str, Any]]:
    """Direct children of ``span_id`` (tests and validators)."""
    return [r for r in spans if r.get("parent") == span_id]
