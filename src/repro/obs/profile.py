"""Search-level sampling profiler built on the SearchObserver protocol.

:class:`SamplingProfiler` subscribes to the Algorithm-2 event stream
(:mod:`repro.analysis.trace`) and keeps *aggregates only* — a depth
histogram of descends, conflict counts by kind, backjump and embedding
totals — so it can ride along on real queries (``profile=true`` in the
service) without recording the full event trace the way
:class:`~repro.analysis.trace.TraceRecorder` does.

``stride`` subsamples the two torrential event kinds (descend /
conflict): with ``stride=16`` only every 16th event updates the depth
histogram, and reported counts are scaled back up in :meth:`summary`.
Rare events (backjumps, embeddings, returns-without-found) are always
counted exactly.  The profiler never changes the search — the observer
protocol is notification-only.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.analysis.trace import SearchObserver

MAX_DEPTH_BINS = 64


class SamplingProfiler(SearchObserver):
    """Aggregating observer suitable for attaching to live queries."""

    def __init__(self, stride: int = 1) -> None:
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.stride = stride
        self._descend_tick = 0
        self._conflict_tick = 0
        self.descends = 0
        self.returns = 0
        self.conflicts = 0
        self.embeddings = 0
        self.backjumps = 0
        self.max_depth = 0
        self.depth_hist: Dict[int, int] = {}
        self.conflicts_by_kind: Dict[str, int] = {}

    # -- observer hooks ------------------------------------------------

    def on_descend(self, depth: int, v: int, node_id: int) -> None:
        self.descends += 1
        if depth > self.max_depth:
            self.max_depth = depth
        self._descend_tick += 1
        if self._descend_tick >= self.stride:
            self._descend_tick = 0
            bin_ = min(depth, MAX_DEPTH_BINS - 1)
            self.depth_hist[bin_] = self.depth_hist.get(bin_, 0) + 1

    def on_conflict(self, depth: int, v: int, kind: str, mask: int) -> None:
        self.conflicts += 1
        self._conflict_tick += 1
        if self._conflict_tick >= self.stride:
            self._conflict_tick = 0
            self.conflicts_by_kind[kind] = (
                self.conflicts_by_kind.get(kind, 0) + 1
            )

    def on_return(self, depth: int, v: int, found: bool, mask: int) -> None:
        self.returns += 1

    def on_embedding(self, embedding: Tuple[int, ...]) -> None:
        self.embeddings += 1

    def on_backjump(self, depth: int, mask: int) -> None:
        self.backjumps += 1

    # -- report --------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """JSON-serializable aggregate, attached to service replies.

        Sampled histograms are scaled by ``stride`` so the numbers are
        estimates of true counts; the exact totals (``descends``,
        ``conflicts``) ride alongside for calibration.
        """
        scale = self.stride
        return {
            "stride": self.stride,
            "descends": self.descends,
            "returns": self.returns,
            "conflicts": self.conflicts,
            "embeddings": self.embeddings,
            "backjumps": self.backjumps,
            "max_depth": self.max_depth,
            "depth_hist": {
                str(depth): count * scale
                for depth, count in sorted(self.depth_hist.items())
            },
            "conflicts_by_kind": {
                kind: count * scale
                for kind, count in sorted(self.conflicts_by_kind.items())
            },
        }
