"""Dependency-free metrics primitives + Prometheus text exposition.

Three instrument kinds, the usual trio:

* :class:`Counter` — monotone float/int, ``inc()``;
* :class:`Gauge` — settable point-in-time value, ``set()`` / ``inc()``;
* :class:`Histogram` — fixed cumulative buckets, ``observe()``.

Instruments are created through a :class:`MetricsRegistry`, optionally
with **label names**; ``family.labels(phase="queue")`` returns (and
memoizes) the child for that label value tuple.  ``registry.render()``
emits the whole registry in the Prometheus text exposition format
(version 0.0.4) — the thing a ``GET /metrics`` scrape returns.

Reconciliation by construction
------------------------------
The server/catalog/query-cache/procpool counter dicts that the ``stats``
op snapshots are instances of :class:`CounterGroup` — a thread-safe
mapping with the exact dict API the existing code uses (``c["k"] += 1``,
``dict(c)``) — and the registry *attaches* those live groups
(:meth:`MetricsRegistry.attach_group`).  A scrape renders one counter
family per group key, reading the very same storage the ``stats`` op
reads, so the two surfaces cannot drift: there is one set of numbers.

Scrape-time gauges (active queries, uptime, cache residency) are set by
``on_scrape`` hooks the instant before rendering.

:func:`parse_exposition` is the inverse of ``render`` for the subset
this module emits; tests use it to assert the reconciliation.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
"""Latency buckets (seconds): 0.5ms .. 10s, roughly log-spaced.  A
``+Inf`` bucket is always appended implicitly."""


class MetricsError(Exception):
    """Misuse of the registry (duplicate family, bad label set, ...)."""


def _format_number(value: float) -> str:
    """Prometheus-style value formatting (ints without the ``.0``)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, bool):
        return str(int(value))
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels_suffix(pairs: Sequence[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + body + "}"


class CounterGroup:
    """A thread-safe named set of counters with the plain-dict API.

    Drop-in for the ad-hoc ``Dict[str, int]`` counter dicts the service
    stack grew: ``group["queries"] += 1``, ``dict(group)``, ``"queries"
    in group``, iteration — all work.  The point of the class is that a
    :class:`MetricsRegistry` can *attach* the live group and render it
    as one counter family per key, so the ``stats`` snapshot and the
    ``/metrics`` exposition read identical storage.

    ``inc`` is atomic; the ``+=`` spelling is a read-modify-write like
    it always was (callers that need atomicity across keys hold their
    own locks, as before).
    """

    __slots__ = ("_values", "_lock")

    def __init__(self, initial: Optional[Mapping[str, float]] = None) -> None:
        self._values: Dict[str, float] = dict(initial or {})
        self._lock = threading.Lock()

    def inc(self, key: str, amount: float = 1) -> None:
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    # -- mapping API ---------------------------------------------------

    def __getitem__(self, key: str) -> float:
        with self._lock:
            return self._values[key]

    def __setitem__(self, key: str, value: float) -> None:
        with self._lock:
            self._values[key] = value

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self.snapshot())

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)

    def keys(self):
        return self.snapshot().keys()

    def items(self):
        return self.snapshot().items()

    def values(self):
        return self.snapshot().values()

    def get(self, key: str, default=None):
        with self._lock:
            return self._values.get(key, default)

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._values)

    def __repr__(self) -> str:  # debugging convenience
        return f"CounterGroup({self.snapshot()!r})"

    # Pickling must survive the procpool initializer (the lock cannot).

    def __getstate__(self) -> Dict[str, float]:
        return self.snapshot()

    def __setstate__(self, state: Dict[str, float]) -> None:
        self._values = dict(state)
        self._lock = threading.Lock()


class _Child:
    """One (label-valued) instrument: holds a value or histogram state."""

    __slots__ = ("kind", "value", "bucket_counts", "sum", "count", "_lock")

    def __init__(self, kind: str, num_buckets: int = 0) -> None:
        self.kind = kind
        self.value = 0.0
        self.bucket_counts = [0] * num_buckets
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value


class Family:
    """One metric family (name + type + label names) and its children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: Tuple[str, ...],
        buckets: Tuple[float, ...] = (),
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = labelnames
        self.buckets = buckets
        self._children: Dict[Tuple[str, ...], _Child] = {}
        self._lock = threading.Lock()
        if not labelnames:
            self._default = self._child(())
        else:
            self._default = None

    def _child(self, values: Tuple[str, ...]) -> _Child:
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = _Child(self.kind, len(self.buckets) + 1)
                self._children[values] = child
            return child

    def labels(self, **labelvalues: str) -> "_Handle":
        if set(labelvalues) != set(self.labelnames):
            raise MetricsError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(labelvalues)}"
            )
        values = tuple(str(labelvalues[name]) for name in self.labelnames)
        return _Handle(self, self._child(values))

    # Unlabeled families act as their own handle.

    def inc(self, amount: float = 1) -> None:
        self._require_default().inc(amount)

    def set(self, value: float) -> None:
        self._require_default().set(value)

    def observe(self, value: float) -> None:
        if self._default is None:
            raise MetricsError(f"{self.name}: labeled family, use .labels()")
        _observe(self, self._default, value)

    def _require_default(self) -> _Child:
        if self._default is None:
            raise MetricsError(f"{self.name}: labeled family, use .labels()")
        return self._default

    def value(self, **labelvalues: str) -> float:
        """Current value (counter/gauge) — for tests and stats bridging."""
        if self.labelnames:
            return self.labels(**labelvalues)._child.value
        return self._require_default().value

    def children(self) -> List[Tuple[Tuple[str, ...], _Child]]:
        with self._lock:
            return sorted(self._children.items())


def _observe(family: Family, child: _Child, value: float) -> None:
    index = bisect_left(family.buckets, value)
    with child._lock:
        child.bucket_counts[index] += 1
        child.sum += value
        child.count += 1


class _Handle:
    """A bound (family, child) pair returned by ``labels()``."""

    __slots__ = ("_family", "_child")

    def __init__(self, family: Family, child: _Child) -> None:
        self._family = family
        self._child = child

    def inc(self, amount: float = 1) -> None:
        self._child.inc(amount)

    def set(self, value: float) -> None:
        self._child.set(value)

    def observe(self, value: float) -> None:
        _observe(self._family, self._child, value)

    @property
    def value(self) -> float:
        return self._child.value


class MetricsRegistry:
    """Instrument factory + attached counter groups + text exposition."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, Family] = {}
        self._groups: List[Tuple[str, Mapping, Tuple[Tuple[str, str], ...], str]] = []
        self._hooks: List[Callable[[], None]] = []

    # -- instruments ---------------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: Iterable[str] = (),
        buckets: Tuple[float, ...] = (),
    ) -> Family:
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind or existing.labelnames != labelnames:
                    raise MetricsError(
                        f"metric {name!r} re-registered with a different "
                        "type or label set"
                    )
                return existing
            family = Family(name, kind, help_text, labelnames, buckets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labelnames: Iterable[str] = ()
    ) -> Family:
        return self._family(name, "counter", help_text, labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Iterable[str] = ()
    ) -> Family:
        return self._family(name, "gauge", help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Iterable[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Family:
        buckets = tuple(sorted(buckets))
        if not buckets:
            raise MetricsError("histogram needs at least one finite bucket")
        family = self._family(name, "histogram", help_text, labelnames, buckets)
        if family.buckets != buckets:
            raise MetricsError(
                f"histogram {name!r} re-registered with different buckets"
            )
        return family

    # -- attached groups and scrape hooks ------------------------------

    def attach_group(
        self,
        prefix: str,
        group: Mapping[str, float],
        labels: Optional[Mapping[str, str]] = None,
        help_text: str = "",
    ) -> None:
        """Expose a live counter mapping as ``<prefix>_<key>_total``.

        The mapping is read at scrape time — attach the *same object*
        the ``stats`` op snapshots and the surfaces reconcile by
        construction.  ``labels`` (e.g. ``{"data": name}``) distinguish
        multiple groups under one prefix.
        """
        label_pairs = tuple(sorted((labels or {}).items()))
        with self._lock:
            self._groups.append((prefix, group, label_pairs, help_text))

    def on_scrape(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` at the start of every :meth:`render` (gauges)."""
        with self._lock:
            self._hooks.append(hook)

    # -- exposition ----------------------------------------------------

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        with self._lock:
            hooks = list(self._hooks)
            groups = list(self._groups)
            families = dict(self._families)
        for hook in hooks:
            hook()

        lines: List[str] = []

        # Attached counter groups first: one family per (prefix, key),
        # children are the per-label-set groups.
        by_name: Dict[str, List[Tuple[Tuple[Tuple[str, str], ...], float, str]]] = {}
        for prefix, group, label_pairs, help_text in groups:
            snapshot = (
                group.snapshot() if isinstance(group, CounterGroup)
                else dict(group)
            )
            for key, value in snapshot.items():
                name = f"{prefix}_{key}_total"
                by_name.setdefault(name, []).append(
                    (label_pairs, float(value), help_text)
                )
        for name in sorted(by_name):
            children = sorted(by_name[name])
            help_text = children[0][2]
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} counter")
            for label_pairs, value, _ in children:
                lines.append(
                    f"{name}{_labels_suffix(label_pairs)} "
                    f"{_format_number(value)}"
                )

        for name in sorted(families):
            family = families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for values, child in family.children():
                pairs = tuple(zip(family.labelnames, values))
                if family.kind == "histogram":
                    with child._lock:
                        counts = list(child.bucket_counts)
                        total = child.count
                        total_sum = child.sum
                    cumulative = 0
                    bounds = list(family.buckets) + [math.inf]
                    for bound, count in zip(bounds, counts):
                        cumulative += count
                        le = pairs + (("le", _format_number(bound)),)
                        lines.append(
                            f"{name}_bucket{_labels_suffix(le)} {cumulative}"
                        )
                    lines.append(
                        f"{name}_sum{_labels_suffix(pairs)} "
                        f"{_format_number(total_sum)}"
                    )
                    lines.append(
                        f"{name}_count{_labels_suffix(pairs)} {total}"
                    )
                else:
                    lines.append(
                        f"{name}{_labels_suffix(pairs)} "
                        f"{_format_number(child.value)}"
                    )
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Exposition parsing (tests / CLI reconciliation)
# ----------------------------------------------------------------------

Sample = Tuple[str, Tuple[Tuple[str, str], ...]]
"""A parsed sample key: ``(metric_name, sorted label pairs)``."""


def _parse_labels(body: str) -> Tuple[Tuple[str, str], ...]:
    pairs: List[Tuple[str, str]] = []
    i = 0
    while i < len(body):
        eq = body.index("=", i)
        name = body[i:eq].strip().strip(",")
        assert body[eq + 1] == '"'
        j = eq + 2
        out = []
        while body[j] != '"':
            if body[j] == "\\":
                j += 1
                out.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(body[j], body[j])
                )
            else:
                out.append(body[j])
            j += 1
        pairs.append((name, "".join(out)))
        i = j + 1
    return tuple(sorted(pairs))


def parse_exposition(text: str) -> Dict[Sample, float]:
    """Parse the subset of the text format :meth:`render` emits.

    Returns ``{(name, sorted_label_pairs): value}``; ``+Inf``/``-Inf``
    parse to infinities.
    """
    out: Dict[Sample, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if "{" in name_part:
            name, _, rest = name_part.partition("{")
            labels = _parse_labels(rest.rstrip("}"))
        else:
            name, labels = name_part, ()
        value_part = value_part.strip()
        if value_part == "+Inf":
            value = math.inf
        elif value_part == "-Inf":
            value = -math.inf
        else:
            value = float(value_part)
        out[(name.strip(), labels)] = value
    return out
