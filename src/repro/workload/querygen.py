"""Query generation by random walk (Sun & Luo's protocol, §4.1).

A query is extracted by random-walking the data graph until the target
number of distinct vertices is visited and taking the induced subgraph.
A query is *sparse* when its average degree is below three, otherwise
*dense* (the paper's 8S..32S / 8D..32D sets).

Induced subgraphs of a dense data graph are almost always dense and
vice versa, so pure rejection sampling cannot fill both buckets on every
graph.  Like the published query sets, we therefore adjust structure
while staying a *subgraph of the data graph* (so every query is
satisfiable by construction):

* to sparsify, keep a random spanning tree of the induced subgraph plus
  random extra induced edges up to the density cap;
* to densify, bias the walk towards high-degree vertices (restarts at
  hubs) and reject until the induced density reaches 3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple, Union

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph

RandomLike = Union[int, random.Random, None]

SPARSE_THRESHOLD = 3.0
"""Average degree below this is "sparse" (paper §4.1)."""


def classify_density(query: Graph) -> str:
    """"sparse" or "dense" per the paper's average-degree-3 rule."""
    return "sparse" if query.average_degree() < SPARSE_THRESHOLD else "dense"


def _rng(seed: RandomLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def _random_walk_vertices(
    data: Graph, size: int, rng: random.Random, hub_bias: bool
) -> Optional[List[int]]:
    """Distinct vertices visited by one random walk (None on a dead end)."""
    start = rng.randrange(data.num_vertices)
    visited: List[int] = [start]
    seen: Set[int] = {start}
    current = start
    steps = 0
    budget = 60 * size
    while len(visited) < size and steps < budget:
        steps += 1
        nbrs = data.neighbors(current)
        if not nbrs:
            return None
        if hub_bias:
            # Two draws, keep the higher-degree endpoint: biases the walk
            # into dense regions without changing connectivity.
            a = nbrs[rng.randrange(len(nbrs))]
            b = nbrs[rng.randrange(len(nbrs))]
            nxt = a if data.degree(a) >= data.degree(b) else b
        else:
            nxt = nbrs[rng.randrange(len(nbrs))]
        if nxt not in seen:
            seen.add(nxt)
            visited.append(nxt)
        current = nxt
    return visited if len(visited) == size else None


def _sparsify(
    induced: Graph, rng: random.Random, max_avg_degree: float
) -> Graph:
    """Connected spanning subgraph under the density cap.

    Keeps a random spanning tree, then adds random further induced edges
    while the average degree stays below ``max_avg_degree``.  The result
    is a (not necessarily induced) subgraph of the data graph.
    """
    n = induced.num_vertices
    edges = list(induced.edges())
    rng.shuffle(edges)

    # Kruskal-style random spanning tree.
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    tree: List[Tuple[int, int]] = []
    extra: List[Tuple[int, int]] = []
    for u, v in edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            tree.append((u, v))
        else:
            extra.append((u, v))

    max_edges = int(max_avg_degree * n / 2.0)
    budget = max(0, max_edges - len(tree))
    kept = tree + extra[:budget]

    builder = GraphBuilder()
    builder.add_vertices(induced.labels)
    builder.add_edges(kept)
    return builder.build()


def generate_query(
    data: Graph,
    size: int,
    density: str = "sparse",
    seed: RandomLike = None,
    max_attempts: int = 200,
) -> Graph:
    """One connected query of ``size`` vertices and the requested density.

    Every returned query is a connected subgraph of ``data`` (so it has
    at least one embedding), with contiguous vertex ids and the labels
    of the walked data vertices.
    """
    if density not in ("sparse", "dense"):
        raise ValueError(f"density must be 'sparse' or 'dense', got {density!r}")
    if size < 2:
        raise ValueError("queries need at least 2 vertices")
    if data.num_vertices < size:
        raise ValueError("data graph smaller than the requested query")
    rng = _rng(seed)

    fallback: Optional[Graph] = None
    for _ in range(max_attempts):
        vertices = _random_walk_vertices(
            data, size, rng, hub_bias=(density == "dense")
        )
        if vertices is None:
            continue
        induced, _ = data.induced_subgraph(vertices)
        if density == "dense":
            if induced.average_degree() >= SPARSE_THRESHOLD:
                return induced
            fallback = induced if fallback is None else fallback
        else:
            if induced.average_degree() < SPARSE_THRESHOLD:
                return induced
            sparse = _sparsify(induced, rng, SPARSE_THRESHOLD - 0.01)
            if sparse.average_degree() < SPARSE_THRESHOLD:
                return sparse
    if fallback is not None:
        return fallback
    raise RuntimeError(
        f"could not generate a {density} {size}-vertex query in "
        f"{max_attempts} attempts"
    )


@dataclass(frozen=True)
class QuerySetSpec:
    """One of the paper's query sets, e.g. 16S or 24D."""

    size: int
    density: str  # "sparse" | "dense"

    @property
    def name(self) -> str:
        return f"{self.size}{'S' if self.density == 'sparse' else 'D'}"


def standard_query_sets(sizes: Sequence[int] = (8, 16, 24, 32)) -> List[QuerySetSpec]:
    """The paper's grid: {8,16,24,32} x {sparse, dense}."""
    specs: List[QuerySetSpec] = []
    for density in ("sparse", "dense"):
        for size in sizes:
            specs.append(QuerySetSpec(size=size, density=density))
    return specs


def generate_query_set(
    data: Graph,
    spec: QuerySetSpec,
    count: int,
    seed: RandomLike = None,
) -> List[Graph]:
    """``count`` queries drawn per ``spec`` (deterministic per seed)."""
    rng = _rng(seed)
    return [
        generate_query(data, spec.size, spec.density, seed=rng)
        for _ in range(count)
    ]
