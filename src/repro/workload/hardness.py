"""Hard-query extraction: the tail that drives the paper's evaluation.

The paper samples 50,000 queries per set precisely because the
interesting queries are rare: "in many cases the number of query graphs
that took over an hour was less than 100, which is 0.2% of 50,000"
(§4.2.1), and "they would have not been found if each query set had
consisted of 100 or 200 query graphs".  A pure-Python reproduction
cannot brute-force 50k queries per set, so this module extracts the
same tail directly:

* :func:`generate_cycle_query` — long simple cycles are the paper's
  prototypical hard structure (§1: "cycles are usually difficult to
  find because of the sparseness of real-world graphs"); extracted from
  the data graph so they stay satisfiable.
* :func:`mine_hard_queries` — sample many candidate queries, probe each
  with a budgeted baseline search, and keep the ones that exhaust the
  probe budget (the 0.2% tail, found deterministically).
"""

from __future__ import annotations

import random
from collections import deque
from typing import List, Optional, Sequence, Union

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.workload.querygen import generate_query

RandomLike = Union[int, random.Random, None]


def _rng(seed: RandomLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def _bfs_tree(data: Graph, root: int):
    parent = {root: None}
    depth = {root: 0}
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for w in data.neighbors(u):
            if w not in depth:
                depth[w] = depth[u] + 1
                parent[w] = u
                queue.append(w)
    return parent, depth


def generate_cycle_query(
    data: Graph,
    min_length: int,
    max_length: int,
    seed: RandomLike = None,
    chords: int = 0,
    max_attempts: int = 400,
) -> Optional[Graph]:
    """Extract a simple-cycle query of the requested length from ``data``.

    Finds a non-tree edge of a BFS tree whose fundamental cycle has the
    right length; the query is that cycle (labels carried over), plus up
    to ``chords`` additional induced chords.  Returns ``None`` when the
    data graph yields no such cycle within ``max_attempts`` BFS roots.
    """
    rng = _rng(seed)
    n = data.num_vertices
    if n == 0:
        return None
    for _ in range(max_attempts):
        root = rng.randrange(n)
        parent, depth = _bfs_tree(data, root)
        non_tree = [
            (u, v)
            for u in depth
            for v in data.neighbors(u)
            if u < v and parent.get(v) != u and parent.get(u) != v and v in depth
        ]
        rng.shuffle(non_tree)
        for u, v in non_tree[:200]:
            # Walk both endpoints up to their lowest common ancestor.
            left: List[int] = []
            right: List[int] = []
            a, b = u, v
            while depth[a] > depth[b]:
                left.append(a)
                a = parent[a]
            while depth[b] > depth[a]:
                right.append(b)
                b = parent[b]
            while a != b:
                left.append(a)
                right.append(b)
                a = parent[a]
                b = parent[b]
            cycle = left + [a] + right[::-1]
            if not (min_length <= len(cycle) <= max_length):
                continue
            builder = GraphBuilder()
            builder.add_vertices(data.label(x) for x in cycle)
            for i in range(len(cycle)):
                builder.add_edge(i, (i + 1) % len(cycle))
            if chords > 0:
                index = {x: i for i, x in enumerate(cycle)}
                added = 0
                for i, x in enumerate(cycle):
                    if added >= chords:
                        break
                    for w in data.neighbors(x):
                        j = index.get(w)
                        if j is not None and not builder.has_edge(i, j):
                            builder.add_edge(i, j)
                            added += 1
                            if added >= chords:
                                break
            return builder.build()
    return None


def probe_hardness(
    query: Graph,
    data: Graph,
    probe_recursions: int = 5_000,
    probe_embeddings: int = 200,
) -> int:
    """Recursions a budgeted baseline search spends on ``query``.

    A query that exhausts ``probe_recursions`` without finishing scores
    the full budget — the mining criterion for the hard tail.
    """
    from repro.baselines.backtracking import BacktrackingMatcher
    from repro.matching.limits import SearchLimits

    prober = BacktrackingMatcher(
        name="probe", filter_method="dagdp", ordering="gql", use_failing_set=False
    )
    result = prober.match(
        query,
        data,
        SearchLimits(
            max_embeddings=probe_embeddings,
            max_recursions=probe_recursions,
            collect=False,
        ),
    )
    return result.stats.recursions


def mine_hard_queries(
    data: Graph,
    count: int,
    size: int = 16,
    density: str = "sparse",
    seed: RandomLike = None,
    candidate_factor: int = 10,
    probe_recursions: int = 5_000,
    include_cycles: bool = True,
) -> List[Graph]:
    """``count`` hardest queries out of ``candidate_factor * count`` drawn.

    Candidates mix random-walk queries with long-cycle queries (when
    ``include_cycles``); each is probed with a recursion-budgeted
    baseline search and the top scorers are returned, hardest first.
    Deterministic per seed.
    """
    rng = _rng(seed)
    candidates: List[Graph] = []
    target = max(count, candidate_factor * count)
    attempts = 0
    while len(candidates) < target and attempts < target * 4:
        attempts += 1
        if include_cycles and attempts % 2 == 0:
            cyc = generate_cycle_query(
                data,
                max(4, size - 4),
                size + 4,
                seed=rng,
                chords=rng.randint(0, 2),
                max_attempts=40,
            )
            if cyc is not None:
                candidates.append(cyc)
                continue
        try:
            candidates.append(generate_query(data, size, density, seed=rng))
        except (RuntimeError, ValueError):
            continue

    scored = [
        (probe_hardness(q, data, probe_recursions=probe_recursions), i, q)
        for i, q in enumerate(candidates)
    ]
    scored.sort(key=lambda t: (-t[0], t[1]))
    return [q for _score, _i, q in scored[:count]]
