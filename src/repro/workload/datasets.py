"""Synthetic stand-ins for the paper's four data graphs (§4.1).

The originals (Yeast, Human, WordNet, Patents) are not redistributable /
not available offline, so each spec below reproduces the *profile* that
drives matcher behaviour — vertex count, average degree, label count,
label skew, and clustering — scaled down so a pure-Python matcher
completes the full experiment grid in minutes (see DESIGN.md §2).

Profiles:

* **yeast** — small, sparse (avg deg ~8), many skewed labels (protein
  classes): highly selective candidate filtering, moderate search.
* **human** — small but dense (avg deg ~37): large local candidate
  sets, where injectivity conflicts dominate.
* **wordnet** — large and very sparse (avg deg ~3) with only 5 labels:
  weak filtering, long sparse walks — the regime where nogood guards
  shine.
* **patents** — the largest, moderately sparse, 20 uniform random
  labels (exactly how Sun et al. labeled the original unlabeled graph).

``scale`` multiplies the vertex/edge counts (1.0 = our default reduced
size, not the original size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.graph.generators import (
    erdos_renyi_graph,
    powerlaw_cluster_graph,
    random_connected_graph,
)
from repro.graph.graph import Graph


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic data graph."""

    name: str
    num_vertices: int
    num_edges: int
    num_labels: int
    label_skew: float
    structure: str  # "powerlaw" | "er" | "connected"
    original: str   # the profile this stands in for (documentation)

    def build(self, scale: float = 1.0, seed: int = 2023) -> Graph:
        """Materialize the graph deterministically from ``seed``."""
        n = max(8, int(self.num_vertices * scale))
        m = max(n - 1, int(self.num_edges * scale))
        if self.structure == "powerlaw":
            per_vertex = max(1, round(m / n))
            return powerlaw_cluster_graph(
                n,
                per_vertex,
                triangle_probability=0.3,
                num_labels=self.num_labels,
                seed=seed,
                label_skew=self.label_skew,
            )
        if self.structure == "er":
            return erdos_renyi_graph(
                n, m, num_labels=self.num_labels, seed=seed,
                label_skew=self.label_skew,
            )
        return random_connected_graph(
            n, m, num_labels=self.num_labels, seed=seed,
            label_skew=self.label_skew,
        )


DATASETS: Dict[str, DatasetSpec] = {
    "yeast": DatasetSpec(
        name="yeast",
        num_vertices=320,
        num_edges=1250,
        num_labels=36,
        label_skew=0.8,
        structure="connected",
        original="Yeast: 3,112 vertices, 12,519 edges, 71 labels",
    ),
    "human": DatasetSpec(
        name="human",
        num_vertices=240,
        num_edges=4300,
        num_labels=22,
        label_skew=0.4,
        structure="er",
        original="Human: 4,674 vertices, 86,282 edges, 44 labels",
    ),
    "wordnet": DatasetSpec(
        name="wordnet",
        num_vertices=2000,
        num_edges=3200,
        num_labels=3,
        label_skew=0.3,
        structure="connected",
        original="WordNet: 76,853 vertices, 120,399 edges, 5 labels",
        # 3 labels, not 5: hardness tracks candidates-per-label (~n/L),
        # so a 38x vertex scale-down keeps WordNet's weak-filtering
        # regime only if L shrinks too (DESIGN.md §2).
    ),
    "patents": DatasetSpec(
        name="patents",
        num_vertices=3800,
        num_edges=16500,
        num_labels=20,
        label_skew=0.0,
        structure="powerlaw",
        original="Patents: 3,774,768 vertices, 16,518,947 edges, 20 labels",
    ),
}

DATASET_NAMES: Tuple[str, ...] = ("yeast", "human", "wordnet", "patents")


def load_dataset(name: str, scale: float = 1.0, seed: int = 2023) -> Graph:
    """Build the named synthetic dataset (deterministic per seed)."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; expected one of {sorted(DATASETS)}"
        ) from None
    return spec.build(scale=scale, seed=seed)
