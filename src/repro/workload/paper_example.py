"""The paper's running example (Fig. 1), reconstructed from the text.

The figure itself is not machine-readable in the source, but the worked
examples pin the graphs down: Example 3.4 lists every subembedding
rooted at ``(u1, v3)``; §3.1 states every candidate set is label-only
except that NLF removes ``v13`` from ``C(u0)``; Example 3.20 gives
``N^-(u2) = {u0, u1}`` and the local candidate sets under
``{(u0, v0)}``; Fig. 3 walks the full search tree, whose only full
embedding is ``{(u0,v1), (u1,v4), (u2,v7), (u3,v10), (u4,v0)}``;
Examples 3.8/3.13 fix the reservation guards.  The graphs below satisfy
all of those statements (the unit tests assert each one).

Query: ``u0:A, u1:B, u2:C, u3:D, u4:A`` with edges
``u0-u1, u0-u2, u1-u2, u2-u3, u2-u4, u3-u4``.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph

PAPER_FULL_EMBEDDING = (1, 4, 7, 10, 0)
"""The unique full embedding of the example (Fig. 3, node m19)."""


def paper_example_query() -> Graph:
    """Query graph Q of Fig. 1(a)."""
    builder = GraphBuilder()
    builder.add_vertices(["A", "B", "C", "D", "A"])  # u0 .. u4
    builder.add_edges(
        [(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)]
    )
    return builder.build()


def paper_example_data() -> Graph:
    """Data graph G of Fig. 1(b).

    Labels: ``v0, v1, v13 -> A``; ``v2..v4 -> B``; ``v5..v8 -> C``;
    ``v9..v12 -> D``.
    """
    labels = [
        "A", "A",              # v0, v1
        "B", "B", "B",         # v2..v4
        "C", "C", "C", "C",    # v5..v8
        "D", "D", "D", "D",    # v9..v12
        "A",                   # v13
    ]
    edges = [
        # A-B (query edge u0-u1)
        (0, 2), (0, 3), (0, 4), (1, 4),
        # A-C (query edges u0-u2 and u2-u4)
        (0, 5), (0, 6), (0, 7), (1, 7), (1, 8), (13, 5), (13, 6), (13, 8),
        # B-C (query edge u1-u2)
        (2, 6), (2, 7), (3, 5), (3, 6), (3, 7), (3, 8), (4, 7),
        # C-D (query edge u2-u3)
        (5, 9), (6, 11), (7, 10), (8, 11), (8, 12),
        # A-D (query edges u3-u4)
        (0, 9), (0, 10), (1, 11), (1, 12), (13, 10),
    ]
    builder = GraphBuilder()
    builder.add_vertices(labels)
    builder.add_edges(edges)
    return builder.build()
