"""Workloads: synthetic data graphs and query generators (§4.1).

The paper evaluates on Yeast / Human / WordNet / Patents with
random-walk-extracted query sets (8-32 vertices, sparse/dense).  The
real files are not available offline, so :mod:`repro.workload.datasets`
synthesizes seeded stand-ins with the same qualitative profile, and
:mod:`repro.workload.querygen` reimplements the query extraction.
:mod:`repro.workload.paper_example` reconstructs Fig. 1's query/data
pair from the paper's worked examples — the ground truth for the guard
unit tests.
"""

from repro.workload.datasets import (
    DATASETS,
    DatasetSpec,
    load_dataset,
)
from repro.workload.hardness import (
    generate_cycle_query,
    mine_hard_queries,
    probe_hardness,
)
from repro.workload.paper_example import paper_example_data, paper_example_query
from repro.workload.querygen import (
    QuerySetSpec,
    classify_density,
    generate_query,
    generate_query_set,
    standard_query_sets,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "QuerySetSpec",
    "classify_density",
    "generate_cycle_query",
    "generate_query",
    "generate_query_set",
    "load_dataset",
    "mine_hard_queries",
    "probe_hardness",
    "paper_example_data",
    "paper_example_query",
    "standard_query_sets",
]
