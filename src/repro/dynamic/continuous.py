"""Continuous subgraph matching over a stream of graph deltas.

A :class:`ContinuousMatcher` owns one evolving data graph and a set of
*standing queries* whose complete embedding sets it keeps materialized.
Each :meth:`~ContinuousMatcher.apply` call applies one
:class:`~repro.dynamic.delta.GraphDelta` and returns, per standing
query, the **exact** embedding diff — never by re-matching from
scratch:

* **Retractions** can only be caused by removed edges (vertices are
  never removed and labels never change), so a cached embedding is
  retracted iff it maps some query edge onto a removed data edge.  The
  probe first tests the embedding's image against the summary's
  ``removal_mask`` (one int AND); only embeddings whose image meets a
  removed-edge endpoint are checked edge by edge.
* **New matches** must place at least one query vertex on an *addition*
  vertex (an endpoint of an added edge, or an added vertex): an
  embedding of the new graph whose image avoids all of them used only
  pre-existing vertices and edges and was therefore already a match.
  For each query vertex ``u`` the matcher seeds a GCS build from
  delta-restricted masks — the LDF+NLF masks with ``C(u)`` intersected
  with the summary's ``addition_mask`` (``seed_masks`` in
  :func:`repro.core.gcs.build_gcs`) — and unions the resulting
  enumerations.  Restricted builds are tiny for small deltas, which is
  where the incremental path wins (``benchmarks/bench_dynamic.py``).

The invariant ``old_matches - retracted + added == full re-match`` is
proved differentially by ``tests/test_dynamic.py`` and fuzzed by
``tests/test_property_dynamic.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import GuPConfig
from repro.core.engine import GuPEngine
from repro.dynamic.delta import DeltaSummary, GraphDelta, apply_delta
from repro.graph.graph import Graph
from repro.matching.limits import SearchLimits
from repro.matching.result import TerminationStatus
from repro.utils.bitset import mask_of


@dataclass
class EmbeddingDiff:
    """Exact embedding-set change of one standing query for one delta."""

    added: List[Tuple[int, ...]] = field(default_factory=list)
    removed: List[Tuple[int, ...]] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not (self.added or self.removed)


class ContinuousError(RuntimeError):
    """A standing query could not be (re)matched exactly."""


def retracted_matches(
    query: Graph,
    cached: Set[Tuple[int, ...]],
    summary: DeltaSummary,
) -> List[Tuple[int, ...]]:
    """Cached embeddings invalidated by the delta's removed edges."""
    if not summary.removed_edges:
        return []
    removed = set(summary.removed_edges)
    removal_mask = summary.removal_mask
    query_edges = list(query.edges())
    out: List[Tuple[int, ...]] = []
    for embedding in cached:
        if not mask_of(embedding) & removal_mask:
            continue
        for i, j in query_edges:
            a, b = embedding[i], embedding[j]
            if ((a, b) if a < b else (b, a)) in removed:
                out.append(embedding)
                break
    return out


def delta_restricted_matches(
    engine: GuPEngine,
    query: Graph,
    summary: DeltaSummary,
    counters: Optional[Dict[str, int]] = None,
) -> Set[Tuple[int, ...]]:
    """All embeddings of ``query`` in ``engine.data`` whose image meets
    the delta's addition vertices.

    Runs one delta-seeded GCS build + search per query vertex whose
    restricted candidate set is non-empty and unions the enumerations
    (an embedding may meet the additions at several vertices; the set
    dedups).  Every *new* match is found this way; pre-existing matches
    may also appear (an added-edge endpoint can occur in an old match),
    so callers subtract their cached set.
    """
    found: Set[Tuple[int, ...]] = set()
    addition_mask = summary.addition_mask
    if not addition_mask or query.num_vertices == 0:
        return found
    base = engine.artifacts.nlf_candidate_masks(query)
    for u in query.vertices():
        restricted = base[u] & addition_mask
        if counters is not None:
            counters["restricted_builds" if restricted else
                     "restricted_skipped"] += 1
        if not restricted:
            continue
        seeds = list(base)
        seeds[u] = restricted
        gcs = engine.build(query, seed_masks=seeds)
        result = engine.match(query, limits=SearchLimits(), gcs=gcs)
        if result.status is not TerminationStatus.COMPLETE:
            raise ContinuousError(
                f"restricted search ended {result.status.value}; "
                "continuous diffs need complete enumerations"
            )
        found.update(tuple(e) for e in result.embeddings)
    return found


def embedding_diff(
    engine: GuPEngine,
    query: Graph,
    cached: Set[Tuple[int, ...]],
    summary: DeltaSummary,
    counters: Optional[Dict[str, int]] = None,
) -> EmbeddingDiff:
    """Exact diff of ``query``'s embedding set across one applied delta.

    ``engine`` must already be bound to the *new* (delta-applied) graph;
    ``cached`` is the complete embedding set against the old graph.
    ``cached`` is not modified.
    """
    removed = retracted_matches(query, cached, summary)
    found = delta_restricted_matches(engine, query, summary, counters)
    added = sorted(found - cached)
    return EmbeddingDiff(added=added, removed=sorted(removed))


class _StandingQuery:
    __slots__ = ("name", "query", "matches")

    def __init__(
        self, name: str, query: Graph, matches: Set[Tuple[int, ...]]
    ) -> None:
        self.name = name
        self.query = query
        self.matches = matches


class ContinuousMatcher:
    """Standing queries with exactly-maintained embedding sets.

    One instance owns one evolving data graph (accessible as
    ``matcher.graph``), its incrementally-patched
    :class:`~repro.filtering.artifacts.DataArtifacts`, and a warm
    :class:`~repro.core.engine.GuPEngine` whose build-invariant cache
    survives every delta.  Not thread-safe; the matching server wraps
    operations in its own serialization.
    """

    def __init__(
        self,
        graph: Graph,
        config: Optional[GuPConfig] = None,
    ) -> None:
        config = config or GuPConfig()
        if config.build_backend != "bitmap":
            raise ValueError(
                "ContinuousMatcher requires build_backend='bitmap' "
                "(delta-restricted seeding is mask-native)"
            )
        self.engine = GuPEngine(graph, config)
        self._queries: Dict[str, _StandingQuery] = {}
        self.epoch = 0
        self.counters: Dict[str, int] = {
            "deltas_applied": 0,
            "restricted_builds": 0,
            "restricted_skipped": 0,
            "retractions": 0,
            "additions": 0,
        }

    @property
    def graph(self) -> Graph:
        return self.engine.data

    # -- standing queries ----------------------------------------------

    def register(self, name: str, query: Graph) -> List[Tuple[int, ...]]:
        """Register a standing query; returns its current matches (sorted).

        The initial enumeration must complete (standing queries maintain
        *exact* sets); a duplicate name raises ``ValueError``.
        """
        if name in self._queries:
            raise ValueError(f"standing query {name!r} already registered")
        result = self.engine.match(query, limits=SearchLimits())
        if result.status is not TerminationStatus.COMPLETE:
            raise ContinuousError(
                f"initial match of {name!r} ended {result.status.value}"
            )
        matches = {tuple(e) for e in result.embeddings}
        self._queries[name] = _StandingQuery(name, query, matches)
        return sorted(matches)

    def unregister(self, name: str) -> None:
        if name not in self._queries:
            raise KeyError(f"unknown standing query {name!r}")
        del self._queries[name]

    def names(self) -> List[str]:
        return sorted(self._queries)

    def matches(self, name: str) -> List[Tuple[int, ...]]:
        """Current embedding set of a standing query (sorted)."""
        return sorted(self._queries[name].matches)

    # -- delta application ---------------------------------------------

    def apply(self, delta: GraphDelta) -> Dict[str, EmbeddingDiff]:
        """Apply one delta; returns the exact diff per standing query.

        Updates the graph, the patched artifacts, the epoch counter,
        and every standing query's cached embedding set.
        """
        new_graph, summary = apply_delta(self.engine.data, delta)
        artifacts = self.engine.artifacts.apply_delta(new_graph, summary)
        self.engine = GuPEngine(
            new_graph,
            self.engine.config,
            artifacts=artifacts,
            invariants=self.engine.invariants,
        )
        self.epoch += 1
        self.counters["deltas_applied"] += 1

        diffs: Dict[str, EmbeddingDiff] = {}
        for name, standing in self._queries.items():
            diff = embedding_diff(
                self.engine, standing.query, standing.matches, summary,
                counters=self.counters,
            )
            standing.matches.difference_update(diff.removed)
            standing.matches.update(diff.added)
            self.counters["retractions"] += len(diff.removed)
            self.counters["additions"] += len(diff.added)
            diffs[name] = diff
        return diffs
