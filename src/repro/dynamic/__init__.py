"""Dynamic graphs: validated deltas, incremental artifact maintenance,
and continuous matching (DESIGN.md §9).

The rest of the repository treats a data graph as frozen; this package
is the write path.  A :class:`~repro.dynamic.delta.GraphDelta` describes
an edit batch (edge insertions/deletions, vertex additions),
:func:`~repro.dynamic.delta.apply_delta` turns it into a new frozen
:class:`~repro.graph.graph.Graph` while reusing every untouched CSR row,
:meth:`repro.filtering.artifacts.DataArtifacts.apply_delta` patches the
dense filter artifacts instead of rebuilding them, and
:class:`~repro.dynamic.continuous.ContinuousMatcher` maintains the exact
embedding sets of standing queries across deltas.
"""

from repro.dynamic.delta import (
    DeltaError,
    DeltaSummary,
    GraphDelta,
    apply_delta,
    delta_from_payload,
    delta_to_payload,
    load_delta,
    loads_delta,
    saves_delta,
)
from repro.dynamic.continuous import ContinuousMatcher, EmbeddingDiff

__all__ = [
    "ContinuousMatcher",
    "DeltaError",
    "DeltaSummary",
    "EmbeddingDiff",
    "GraphDelta",
    "apply_delta",
    "delta_from_payload",
    "delta_to_payload",
    "load_delta",
    "loads_delta",
    "saves_delta",
]
