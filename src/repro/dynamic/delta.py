"""Validated graph deltas and their application (DESIGN.md §9).

A :class:`GraphDelta` is a batch of edits against a specific graph
shape: vertices may be *added* (with a label; they receive the next
free ids), edges may be added or removed.  Vertices are never removed
and labels never change, so vertex ids are stable across the lifetime
of a served graph — which is what lets cached embeddings, candidate
bitmaps, and filter artifacts be *patched* instead of rebuilt.

:func:`apply_delta` produces a new frozen
:class:`~repro.graph.graph.Graph` without re-deriving any untouched CSR
row: adjacency rows, neighbor frozensets, and NLF tables of vertices
not incident to an edited edge are shared (the same objects) with the
source graph.  The returned :class:`DeltaSummary` records exactly what
was touched — vertices, labels, NLF rows — and is the contract every
downstream maintainer patches against
(:meth:`repro.filtering.artifacts.DataArtifacts.apply_delta`,
:class:`repro.dynamic.continuous.ContinuousMatcher`, the service
catalog's ``update``).

Deltas have a text form (for the ``repro update`` CLI) mirroring the
``.graph`` format::

    # comment
    av <label>        add a vertex carrying <label> (ids assigned in order)
    ae <u> <v>        add undirected edge (u, v); may reference new ids
    re <u> <v>        remove existing undirected edge (u, v)

and a JSON payload form (:func:`delta_to_payload` /
:func:`delta_from_payload`) used by the service wire protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, List, Tuple, Union

from repro.graph.graph import Graph
from repro.utils.words import pack_indices as mask_of

PathLike = Union[str, Path]


class DeltaError(ValueError):
    """A delta is malformed or inconsistent with the graph it targets."""


def _normalize_edge(u: int, v: int) -> Tuple[int, int]:
    if not (isinstance(u, int) and isinstance(v, int)) or isinstance(
        u, bool
    ) or isinstance(v, bool):
        raise DeltaError(f"edge endpoints must be ints, got ({u!r}, {v!r})")
    if u < 0 or v < 0:
        raise DeltaError(f"edge ({u}, {v}) has a negative endpoint")
    if u == v:
        raise DeltaError(f"self-loop at vertex {u} is not allowed")
    return (u, v) if u < v else (v, u)


@dataclass(frozen=True)
class GraphDelta:
    """One validated edit batch.

    Attributes
    ----------
    add_vertices:
        Labels of vertices to append; against a graph with ``n``
        vertices they receive ids ``n, n+1, ...`` in order.
    add_edges / remove_edges:
        Undirected edges, normalized to ``(min, max)`` on construction.
        ``add_edges`` may reference freshly added vertex ids;
        ``remove_edges`` must name edges present in the target graph.

    Construction validates everything knowable without the graph
    (self-loops, duplicates, an edge both added and removed, label
    hashability); :meth:`validate` checks the rest against a target.
    """

    add_vertices: Tuple[object, ...] = ()
    add_edges: Tuple[Tuple[int, int], ...] = ()
    remove_edges: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        for label in self.add_vertices:
            try:
                hash(label)
            except TypeError:
                raise DeltaError(f"unhashable vertex label {label!r}")
        object.__setattr__(
            self, "add_vertices", tuple(self.add_vertices)
        )
        added = tuple(_normalize_edge(u, v) for u, v in self.add_edges)
        removed = tuple(_normalize_edge(u, v) for u, v in self.remove_edges)
        if len(set(added)) != len(added):
            raise DeltaError("duplicate edge in add_edges")
        if len(set(removed)) != len(removed):
            raise DeltaError("duplicate edge in remove_edges")
        overlap = set(added) & set(removed)
        if overlap:
            raise DeltaError(
                f"edges both added and removed: {sorted(overlap)}"
            )
        object.__setattr__(self, "add_edges", added)
        object.__setattr__(self, "remove_edges", removed)

    def is_empty(self) -> bool:
        """Whether applying this delta is a no-op."""
        return not (self.add_vertices or self.add_edges or self.remove_edges)

    def validate(self, graph: Graph) -> None:
        """Check consistency against ``graph``; raises :class:`DeltaError`.

        Added edges must not already exist and must reference known (old
        or freshly added) vertex ids; removed edges must exist.
        """
        n_old = graph.num_vertices
        n_new = n_old + len(self.add_vertices)
        for u, v in self.add_edges:
            if v >= n_new:
                raise DeltaError(
                    f"added edge ({u}, {v}) references unknown vertex "
                    f"(graph has {n_old} vertices, delta adds "
                    f"{len(self.add_vertices)})"
                )
            if v < n_old and graph.has_edge(u, v):
                raise DeltaError(f"added edge ({u}, {v}) already exists")
        for u, v in self.remove_edges:
            if v >= n_old or not graph.has_edge(u, v):
                raise DeltaError(
                    f"removed edge ({u}, {v}) does not exist in the graph"
                )


@dataclass(frozen=True)
class DeltaSummary:
    """What one applied delta touched (the patching contract).

    ``touched_vertices`` are the vertices whose adjacency row changed:
    endpoints of added/removed edges plus every added vertex.  Their
    NLF rows (``touched_nlf_rows``, the same ids — an edge edit at
    ``(u, v)`` changes exactly the NLF tables of ``u`` and ``v``) and
    labels (``touched_labels``) are what downstream artifact maintenance
    must re-derive; everything else is provably unchanged.  The masks
    are data-vertex-id bitmaps (bit ``v`` == vertex ``v``):
    ``addition_mask`` covers endpoints of added edges plus added
    vertices (every *new* embedding must use one of these vertices),
    ``removal_mask`` covers endpoints of removed edges (every
    *retracted* embedding must use one of these).
    """

    num_vertices_before: int
    num_vertices_after: int
    added_vertices: Tuple[int, ...]
    added_edges: Tuple[Tuple[int, int], ...]
    removed_edges: Tuple[Tuple[int, int], ...]
    touched_vertices: Tuple[int, ...]
    touched_labels: FrozenSet[object]
    touched_mask: int
    addition_mask: int
    removal_mask: int

    @property
    def touched_nlf_rows(self) -> Tuple[int, ...]:
        """NLF tables invalidated by the delta (== touched vertices)."""
        return self.touched_vertices

    def counts(self) -> Dict[str, int]:
        """Small JSON-friendly size summary (service replies, CLI)."""
        return {
            "added_vertices": len(self.added_vertices),
            "added_edges": len(self.added_edges),
            "removed_edges": len(self.removed_edges),
            "touched_vertices": len(self.touched_vertices),
            "touched_labels": len(self.touched_labels),
        }


def apply_delta(graph: Graph, delta: GraphDelta) -> Tuple[Graph, DeltaSummary]:
    """Apply ``delta`` to ``graph``; returns the new graph and summary.

    The new graph is frozen and independent, but shares every untouched
    per-vertex structure with the source: adjacency row tuples, neighbor
    frozensets, and (when the source had them materialized) NLF table
    rows are reused by reference, so the cost is proportional to the
    delta plus the vertex count (two flat-array splices), not to the
    edge count.
    """
    delta.validate(graph)
    n_old = graph.num_vertices
    n_new = n_old + len(delta.add_vertices)

    added_at: Dict[int, List[int]] = {}
    removed_at: Dict[int, List[int]] = {}
    for u, v in delta.add_edges:
        added_at.setdefault(u, []).append(v)
        added_at.setdefault(v, []).append(u)
    for u, v in delta.remove_edges:
        removed_at.setdefault(u, []).append(v)
        removed_at.setdefault(v, []).append(u)

    touched = sorted(
        set(added_at) | set(removed_at) | set(range(n_old, n_new))
    )
    labels = graph.labels + tuple(delta.add_vertices)

    rows: List[Tuple[int, ...]] = []
    neighbor_sets: List[FrozenSet[int]] = []
    for v in range(n_old):
        if v in added_at or v in removed_at:
            nbrs = set(graph.neighbor_set(v))
            nbrs.difference_update(removed_at.get(v, ()))
            nbrs.update(added_at.get(v, ()))
            rows.append(tuple(sorted(nbrs)))
            neighbor_sets.append(frozenset(nbrs))
        else:
            rows.append(graph.neighbors(v))
            neighbor_sets.append(graph.neighbor_set(v))
    for v in range(n_old, n_new):
        row = tuple(sorted(added_at.get(v, ())))
        rows.append(row)
        neighbor_sets.append(frozenset(row))

    nlf = None
    if graph._nlf and n_old > 0:
        # The source's NLF cache is materialized: patch it instead of
        # letting the new graph recompute all rows on first access.
        # Untouched rows are shared (treated as read-only everywhere).
        nlf = list(graph._nlf)
        nlf.extend({} for _ in range(n_old, n_new))
        for v in touched:
            freq: Dict[object, int] = {}
            for w in rows[v]:
                lbl = labels[w]
                freq[lbl] = freq.get(lbl, 0) + 1
            nlf[v] = freq

    new_graph = Graph._from_sorted_rows(labels, rows, neighbor_sets, nlf=nlf)

    summary = DeltaSummary(
        num_vertices_before=n_old,
        num_vertices_after=n_new,
        added_vertices=tuple(range(n_old, n_new)),
        added_edges=delta.add_edges,
        removed_edges=delta.remove_edges,
        touched_vertices=tuple(touched),
        touched_labels=frozenset(labels[v] for v in touched),
        touched_mask=mask_of(touched),
        addition_mask=mask_of(
            [w for e in delta.add_edges for w in e]
        ) | mask_of(range(n_old, n_new)),
        removal_mask=mask_of([w for e in delta.remove_edges for w in e]),
    )
    return new_graph, summary


# ----------------------------------------------------------------------
# Text / payload forms
# ----------------------------------------------------------------------


def _parse_label(token: str) -> object:
    try:
        return int(token)
    except ValueError:
        return token


def loads_delta(text: str) -> GraphDelta:
    """Parse a delta from its text form (see module docstring)."""
    add_vertices: List[object] = []
    add_edges: List[Tuple[int, int]] = []
    remove_edges: List[Tuple[int, int]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith("%"):
            continue
        parts = line.split()
        kind = parts[0]
        try:
            if kind == "av":
                if len(parts) != 2:
                    raise DeltaError("expected: av <label>")
                add_vertices.append(_parse_label(parts[1]))
            elif kind == "ae":
                if len(parts) != 3:
                    raise DeltaError("expected: ae <u> <v>")
                add_edges.append((int(parts[1]), int(parts[2])))
            elif kind == "re":
                if len(parts) != 3:
                    raise DeltaError("expected: re <u> <v>")
                remove_edges.append((int(parts[1]), int(parts[2])))
            else:
                raise DeltaError(f"unknown record kind {kind!r}")
        except ValueError as exc:
            raise DeltaError(f"line {lineno}: {exc}")
    return GraphDelta(
        add_vertices=tuple(add_vertices),
        add_edges=tuple(add_edges),
        remove_edges=tuple(remove_edges),
    )


def load_delta(path: PathLike) -> GraphDelta:
    """Load a delta from a text file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads_delta(handle.read())


def saves_delta(delta: GraphDelta) -> str:
    """Serialize a delta to its text form."""
    lines = [f"av {label}" for label in delta.add_vertices]
    lines.extend(f"ae {u} {v}" for u, v in delta.add_edges)
    lines.extend(f"re {u} {v}" for u, v in delta.remove_edges)
    return "\n".join(lines) + ("\n" if lines else "")


def delta_to_payload(delta: GraphDelta) -> Dict[str, object]:
    """JSON-safe payload for the service wire protocol.

    Labels survive the round trip for the JSON-representable types the
    ``.graph`` format itself supports (ints and strings).
    """
    return {
        "add_vertices": list(delta.add_vertices),
        "add_edges": [list(e) for e in delta.add_edges],
        "remove_edges": [list(e) for e in delta.remove_edges],
    }


def delta_from_payload(payload: object) -> GraphDelta:
    """Parse the wire payload back into a validated delta."""
    if not isinstance(payload, dict):
        raise DeltaError("delta payload must be a JSON object")
    unknown = set(payload) - {"add_vertices", "add_edges", "remove_edges"}
    if unknown:
        raise DeltaError(f"unknown delta payload keys: {sorted(unknown)}")

    def edges(key: str) -> Tuple[Tuple[int, int], ...]:
        raw = payload.get(key, [])
        if not isinstance(raw, list):
            raise DeltaError(f"{key!r} must be a list of [u, v] pairs")
        out = []
        for item in raw:
            if not (isinstance(item, (list, tuple)) and len(item) == 2):
                raise DeltaError(f"{key!r} must be a list of [u, v] pairs")
            out.append((item[0], item[1]))
        return tuple(out)

    vertices = payload.get("add_vertices", [])
    if not isinstance(vertices, list):
        raise DeltaError("'add_vertices' must be a list of labels")
    return GraphDelta(
        add_vertices=tuple(vertices),
        add_edges=edges("add_edges"),
        remove_edges=edges("remove_edges"),
    )
