"""Query-set execution with the paper's termination protocol (§4.1).

The original harness: stop a query at 10^5 embeddings; kill a query
after one hour; split each query set into subgroups of 100 queries and
declare the whole set DNF ("did not finish") when any subgroup exceeds
three hours.  :class:`BenchmarkScale` holds the scaled-down defaults our
pure-Python benchmarks use; the ratios between limits match the paper
(query kill : set budget = 1 : 3 per subgroup).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.baselines.registry import Matcher
from repro.graph.graph import Graph
from repro.matching.limits import SearchLimits
from repro.matching.result import MatchResult, TerminationStatus


@dataclass(frozen=True)
class BenchmarkScale:
    """Scaled-down harness parameters (see DESIGN.md §2).

    Two accounting modes:

    * ``mode="wall"`` — budgets, kills, and thresholds are wall-clock
      seconds, exactly like the paper's harness (scaled).
    * ``mode="recursions"`` — budgets, kills, and thresholds are counted
      in *recursions*, the paper's machine-independent cost unit
      (Figs. 7/9).  This models the C++ engines' near-equal
      per-recursion cost and removes CPython's uneven constant factors
      from the comparison; a query "times out" when it exhausts
      ``query_recursion_limit`` recursions.

    The paper's values are in the comments; ours keep the ratios
    (per-query kill : per-subgroup budget = 1 : 3).
    """

    max_embeddings: int = 10_000        # paper: 100,000
    query_time_limit: float = 5.0       # paper: 3600 s
    subgroup_size: int = 25             # paper: 100 queries
    subgroup_budget: float = 15.0       # paper: 10,800 s (3 h)
    thresholds: Sequence[float] = (0.1, 1.0, 5.0)  # paper: 1 s / 1 min / 1 hr
    mode: str = "wall"
    query_recursion_limit: int = 50_000
    subgroup_recursion_budget: int = 150_000
    recursion_thresholds: Sequence[int] = (500, 5_000, 50_000)

    def limits(self) -> SearchLimits:
        if self.mode == "recursions":
            return SearchLimits(
                max_embeddings=self.max_embeddings,
                max_recursions=self.query_recursion_limit,
                collect=False,
            )
        return SearchLimits(
            max_embeddings=self.max_embeddings,
            time_limit=self.query_time_limit,
            collect=False,
        )

    # -- unified cost accessors ----------------------------------------

    def cost(self, record: "QueryRunRecord") -> float:
        """Per-query cost in the scale's unit."""
        if self.mode == "recursions":
            return float(record.recursions)
        return record.seconds

    @property
    def kill_cost(self) -> float:
        """The per-query kill value (clamp for timed-out queries)."""
        if self.mode == "recursions":
            return float(self.query_recursion_limit)
        return self.query_time_limit

    @property
    def budget(self) -> float:
        """The per-subgroup DNF budget in the scale's unit."""
        if self.mode == "recursions":
            return float(self.subgroup_recursion_budget)
        return self.subgroup_budget

    @property
    def cost_thresholds(self) -> Sequence[float]:
        """Thresholds for Figs. 4/5 in the scale's unit."""
        if self.mode == "recursions":
            return tuple(float(t) for t in self.recursion_thresholds)
        return tuple(self.thresholds)


DEFAULT_SCALE = BenchmarkScale()

QUICK_SCALE = BenchmarkScale(
    max_embeddings=1_000,
    query_time_limit=1.0,
    subgroup_size=10,
    subgroup_budget=4.0,
    thresholds=(0.05, 0.25, 1.0),
)
"""Fast wall-clock settings used by fast tests."""

VIRTUAL_SCALE = BenchmarkScale(
    mode="recursions",
    max_embeddings=1_000,
    query_recursion_limit=50_000,
    subgroup_recursion_budget=150_000,
    subgroup_size=6,
    recursion_thresholds=(500, 5_000, 50_000),
)
"""Recursion-budget settings used by the benchmark suite."""


@dataclass
class QueryRunRecord:
    """One (method, query) execution.

    ``build_seconds`` / ``search_seconds`` split ``seconds`` into the
    preprocessing (GCS/CS construction) and enumeration phases, so the
    breakdown benches can track the build/search balance across PRs.
    """

    index: int
    seconds: float
    status: TerminationStatus
    embeddings: int
    recursions: int
    futile_recursions: int
    build_seconds: float = 0.0
    search_seconds: float = 0.0

    @property
    def timed_out(self) -> bool:
        return self.status is TerminationStatus.TIMEOUT


@dataclass
class QuerySetResult:
    """One (method, query set) execution with the DNF verdict."""

    method: str
    set_name: str
    records: List[QueryRunRecord] = field(default_factory=list)
    dnf: bool = False
    queries_attempted: int = 0

    @property
    def finished(self) -> bool:
        return not self.dnf

    def times(self, clamp_timeouts_to: Optional[float] = None) -> List[float]:
        """Per-query seconds; timeouts clamped like Fig. 6 when asked."""
        out = []
        for r in self.records:
            if clamp_timeouts_to is not None and r.timed_out:
                out.append(clamp_timeouts_to)
            else:
                out.append(r.seconds)
        return out

    def total_recursions(self) -> int:
        return sum(r.recursions for r in self.records)

    def total_futile(self) -> int:
        return sum(r.futile_recursions for r in self.records)


def run_query_set(
    matcher: Matcher,
    data: Graph,
    queries: Sequence[Graph],
    scale: BenchmarkScale = DEFAULT_SCALE,
    set_name: str = "",
    stop_on_dnf: bool = True,
) -> QuerySetResult:
    """Run ``matcher`` over a query set under the paper's protocol.

    Queries are processed in subgroups of ``scale.subgroup_size``; when
    a subgroup's cumulative time exceeds ``scale.subgroup_budget`` the
    set is marked DNF (and, with ``stop_on_dnf``, abandoned — the paper
    reports such sets only as DNF, so finishing them is wasted time).
    """
    limits = scale.limits()
    result = QuerySetResult(method=matcher.name, set_name=set_name)
    subgroup_cost = 0.0
    for index, query in enumerate(queries):
        if index % scale.subgroup_size == 0:
            subgroup_cost = 0.0
        run: MatchResult = matcher.match(query, data, limits)
        record = QueryRunRecord(
            index=index,
            seconds=run.total_seconds,
            status=run.status,
            embeddings=run.num_embeddings,
            recursions=run.stats.recursions,
            futile_recursions=run.stats.futile_recursions,
            build_seconds=run.preprocessing_seconds,
            search_seconds=run.elapsed_seconds,
        )
        result.records.append(record)
        result.queries_attempted = index + 1
        subgroup_cost += scale.cost(record)
        if subgroup_cost > scale.budget:
            result.dnf = True
            if stop_on_dnf:
                break
    return result


def run_methods_on_set(
    matchers: Iterable[Matcher],
    data: Graph,
    queries: Sequence[Graph],
    scale: BenchmarkScale = DEFAULT_SCALE,
    set_name: str = "",
) -> List[QuerySetResult]:
    """Convenience: every matcher over the same query set."""
    return [
        run_query_set(m, data, queries, scale=scale, set_name=set_name)
        for m in matchers
    ]
