"""Memory accounting for Table 3.

The paper reports (via heaptrack) the peak heap consumption of the
whole process next to the bytes attributable to each guard kind.  We
measure the Python-side equivalent with :mod:`tracemalloc` for the
"Whole" column and use the GCS's explicit cost model (one machine word
per stored integer, Table 3's granularity) for the per-guard columns —
Python object overhead would otherwise dwarf the quantity the paper is
actually about.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.backtrack import GuPSearch
from repro.core.config import GuPConfig
from repro.core.gcs import build_gcs
from repro.graph.graph import Graph
from repro.matching.limits import SearchLimits


@dataclass(frozen=True)
class MemoryReport:
    """Peak memory of one GuP run, broken down like Table 3."""

    whole_bytes: int
    reservation_bytes: int
    nogood_vertex_bytes: int
    nogood_edge_bytes: int

    @property
    def guard_bytes(self) -> int:
        return (
            self.reservation_bytes
            + self.nogood_vertex_bytes
            + self.nogood_edge_bytes
        )

    @property
    def guard_fraction(self) -> float:
        """Table 3's Guard/Whole column."""
        if self.whole_bytes == 0:
            return 0.0
        return self.guard_bytes / self.whole_bytes

    def row(self) -> Dict[str, object]:
        """One Table 3 row as a dict (bytes)."""
        return {
            "whole": self.whole_bytes,
            "reservation": self.reservation_bytes,
            "nogood_vertices": self.nogood_vertex_bytes,
            "nogood_edges": self.nogood_edge_bytes,
            "guard/whole": f"{100.0 * self.guard_fraction:.2f}%",
        }


def measure_memory(
    query: Graph,
    data: Optional[Graph] = None,
    config: Optional[GuPConfig] = None,
    limits: Optional[SearchLimits] = None,
    data_factory=None,
) -> MemoryReport:
    """Run GuP once under tracemalloc and report Table 3 columns.

    ``whole_bytes`` is the tracemalloc peak across data-graph
    construction (when ``data_factory`` is given — the paper's peak
    includes file buffers and the data-graph structure), GCS
    construction, and the search.  The data-graph share is why the guard
    fraction collapses on large graphs, exactly the paper's observation.
    """
    if data is None and data_factory is None:
        raise ValueError("provide data or data_factory")
    config = config or GuPConfig()
    limits = limits or SearchLimits(max_embeddings=10_000, collect=False)

    tracemalloc.start()
    try:
        if data_factory is not None:
            data = data_factory()
        gcs = build_gcs(query, data, config)
        search = GuPSearch(gcs, config=config, limits=limits)
        search.run()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    estimate = gcs.memory_estimate()
    return MemoryReport(
        whole_bytes=peak,
        reservation_bytes=estimate["reservation"],
        nogood_vertex_bytes=estimate["nogood_vertices"],
        nogood_edge_bytes=estimate["nogood_edges"],
    )
