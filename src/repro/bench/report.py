"""Plain-text rendering for benchmark outputs.

Every ``benchmarks/bench_*.py`` script prints the rows/series its paper
table or figure reports, using these helpers, so running the benchmark
suite regenerates a textual version of §4's artifacts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width ASCII table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.ljust(widths[i]) for i, cell in enumerate(cells)
        ).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), 8))
    lines.append(fmt_row(list(headers)))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_bar_chart(
    values: Dict[str, float],
    title: str = "",
    width: int = 48,
    unit: str = "",
    log: bool = False,
) -> str:
    """Horizontal ASCII bars (one per labelled value).

    ``log=True`` scales bars by log10, which is how the paper plots its
    recursion-count figures.
    """
    import math

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), 8))
    if not values:
        return "\n".join(lines + ["(no data)"])
    label_width = max(len(k) for k in values)

    def scaled(x: float) -> float:
        if x <= 0:
            return 0.0
        return math.log10(1 + x) if log else x

    peak = max(scaled(v) for v in values.values()) or 1.0
    for key, val in values.items():
        bar = "#" * max(0, round(width * scaled(val) / peak))
        suffix = f" {val:g}{unit}"
        lines.append(f"{key.ljust(label_width)} |{bar}{suffix}")
    return "\n".join(lines)


def format_grouped_bars(
    groups: Dict[str, Dict[str, float]],
    title: str = "",
    unit: str = "",
) -> str:
    """One table-of-bars per group key (used by Figs. 5 and 9)."""
    sections = []
    for group, values in groups.items():
        sections.append(format_bar_chart(values, title=group, unit=unit, log=True))
    header = [title, "=" * max(len(title), 8)] if title else []
    return "\n\n".join(["\n".join(header)] + sections) if header else "\n\n".join(sections)
