"""Statistics over query-set runs, matching the paper's presentations.

* Figs. 4/5 count queries whose processing time exceeds thresholds
  (1 s / 1 min / 1 hr in the paper; scaled in our harness).
* Fig. 6 reports mean time per query with timed-out queries *clamped to
  the kill limit* ("timed-out query graphs are counted as if they were
  completed in one hour").
* Fig. 7 compares total recursion counts.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

from repro.bench.runner import QueryRunRecord, QuerySetResult


def threshold_counts(
    records: Iterable[QueryRunRecord],
    thresholds: Sequence[float],
    clamp_timeouts_to: float,
    cost_of=None,
) -> Dict[float, int]:
    """Number of queries costing at least each threshold (Figs. 4/5).

    ``cost_of`` maps a record to its cost (defaults to wall seconds; the
    recursion-mode harness passes ``scale.cost``).  Timed-out queries
    count at the kill limit, so they land in every bucket up to that
    limit — mirroring the paper, where the over-an-hour bar equals the
    killed queries.
    """
    if cost_of is None:
        cost_of = lambda r: r.seconds  # noqa: E731
    costs = [
        clamp_timeouts_to if r.timed_out else cost_of(r) for r in records
    ]
    return {t: sum(1 for x in costs if x >= t) for t in thresholds}


def average_time_with_timeouts(
    result: QuerySetResult,
    clamp_timeouts_to: float,
) -> float:
    """Mean per-query seconds with the Fig. 6 timeout convention."""
    times = result.times(clamp_timeouts_to=clamp_timeouts_to)
    if not times:
        return 0.0
    return sum(times) / len(times)


def average_cost_with_timeouts(
    result: QuerySetResult,
    cost_of,
    clamp_timeouts_to: float,
) -> float:
    """Mean per-query cost (any unit) with the Fig. 6 timeout convention."""
    costs = [
        clamp_timeouts_to if r.timed_out else cost_of(r)
        for r in result.records
    ]
    if not costs:
        return 0.0
    return sum(costs) / len(costs)


def total_recursions(result: QuerySetResult) -> int:
    """Total backtracking recursions over the set (Fig. 7)."""
    return result.total_recursions()


def total_futile_recursions(result: QuerySetResult) -> int:
    """Total futile recursions over the set (Fig. 9)."""
    return result.total_futile()


def finished_matrix(
    results: Iterable[QuerySetResult],
) -> Dict[str, Dict[str, bool]]:
    """Table 2 shape: method -> set name -> finished (non-DNF)."""
    matrix: Dict[str, Dict[str, bool]] = {}
    for r in results:
        matrix.setdefault(r.method, {})[r.set_name] = r.finished
    return matrix


def finished_counts(results: Iterable[QuerySetResult]) -> Dict[str, int]:
    """Table 2's Count column: finished sets per method."""
    counts: Dict[str, int] = {}
    for r in results:
        counts[r.method] = counts.get(r.method, 0) + (1 if r.finished else 0)
    return counts


def geometric_mean(values: Sequence[float], floor: float = 1e-9) -> float:
    """Geometric mean with a floor (robust to zero timings)."""
    if not values:
        return 0.0
    log_sum = sum(math.log(max(v, floor)) for v in values)
    return math.exp(log_sum / len(values))
