"""Benchmark harness: the paper's evaluation protocol (§4.1), scaled.

* :mod:`~repro.bench.runner` — per-query limits, per-subgroup budgets,
  the DNF rule, and query-set execution for any registry matcher.
* :mod:`~repro.bench.stats` — processing-time threshold counts (Figs.
  4/5), averages with timeout clamping (Fig. 6), recursion totals.
* :mod:`~repro.bench.report` — plain-text tables and bars printed by the
  benchmark scripts (one per paper table/figure).
* :mod:`~repro.bench.memory` — peak-memory measurement and the guard
  breakdown of Table 3.
"""

from repro.bench.report import format_bar_chart, format_table
from repro.bench.runner import (
    BenchmarkScale,
    QueryRunRecord,
    QuerySetResult,
    run_query_set,
)
from repro.bench.stats import (
    average_time_with_timeouts,
    threshold_counts,
    total_recursions,
)

__all__ = [
    "BenchmarkScale",
    "QueryRunRecord",
    "QuerySetResult",
    "average_time_with_timeouts",
    "format_bar_chart",
    "format_table",
    "run_query_set",
    "threshold_counts",
    "total_recursions",
]
