"""Fig. 3-style search-tree reconstruction and rendering.

The paper's Fig. 3 draws the backtracking search as a tree: one node per
recursion (labelled with the data vertex assigned), an ``X`` mark per
conflicting extension, and shading for subtrees GuP prunes.  This module
rebuilds that tree from a :class:`~repro.analysis.trace.TraceRecorder`
event stream and renders it as indented text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.trace import TraceRecorder
from repro.core.backtrack import GuPSearch
from repro.core.config import GuPConfig
from repro.core.gcs import build_gcs
from repro.graph.graph import Graph
from repro.matching.limits import SearchLimits
from repro.utils.bitset import bits_of

_CONFLICT_MARKS = {
    "injectivity": "X inj",
    "reservation": "X R",
    "nogood_vertex": "X NV",
    "no_candidate": "X empty",
}


@dataclass
class TreeNode:
    """One search-tree node (a recursion) or conflict leaf."""

    depth: int
    vertex: Optional[int]       # data vertex assigned (None for the root)
    node_id: Optional[int]
    conflict: str = ""          # nonempty for conflict leaves
    found: bool = False
    mask: int = 0
    is_embedding_leaf: bool = False
    backjumped_after: bool = False
    children: List["TreeNode"] = field(default_factory=list)

    def count_recursions(self) -> int:
        own = 0 if self.conflict else 1
        return own + sum(c.count_recursions() for c in self.children)

    def count_conflicts(self) -> int:
        own = 1 if self.conflict else 0
        return own + sum(c.count_conflicts() for c in self.children)


@dataclass
class SearchTree:
    """The reconstructed tree plus run-level context."""

    root: TreeNode
    embeddings: List[tuple]
    query: Graph

    def num_recursions(self) -> int:
        return self.root.count_recursions()

    def num_conflicts(self) -> int:
        return self.root.count_conflicts()


def build_tree(recorder: TraceRecorder, query: Graph) -> SearchTree:
    """Fold the DFS event stream back into a tree."""
    root = TreeNode(depth=-1, vertex=None, node_id=0)
    stack = [root]
    embeddings: List[tuple] = []

    for event in recorder.events:
        top = stack[-1]
        if event.kind == "conflict":
            top.children.append(
                TreeNode(
                    depth=event.depth,
                    vertex=event.vertex,
                    node_id=None,
                    conflict=event.conflict,
                    mask=event.mask,
                )
            )
        elif event.kind == "descend":
            node = TreeNode(
                depth=event.depth,
                vertex=event.vertex,
                node_id=event.node_id,
            )
            top.children.append(node)
            stack.append(node)
        elif event.kind == "return":
            node = stack.pop()
            node.found = bool(event.found)
            node.mask = event.mask
        elif event.kind == "embedding":
            embeddings.append(event.embedding)
            top.is_embedding_leaf = True
            top.found = True
        elif event.kind == "backjump":
            top.backjumped_after = True
    return SearchTree(root=root, embeddings=embeddings, query=query)


def _render_node(node: TreeNode, lines: List[str], prefix: str, query: Graph) -> None:
    for i, child in enumerate(node.children):
        last = i == len(node.children) - 1
        branch = "`- " if last else "|- "
        label = f"u{child.depth}=v{child.vertex}"
        if child.conflict:
            mark = _CONFLICT_MARKS.get(child.conflict, "X")
            detail = ""
            if child.mask:
                detail = " mask={" + ",".join(f"u{b}" for b in bits_of(child.mask)) + "}"
            lines.append(f"{prefix}{branch}{label}  [{mark}{detail}]")
        else:
            suffix = ""
            if child.is_embedding_leaf:
                suffix = "  [FULL EMBEDDING]"
            elif not child.found:
                mask_txt = ",".join(f"u{b}" for b in bits_of(child.mask))
                suffix = f"  [deadend mask={{{mask_txt}}}]"
            if child.backjumped_after:
                suffix += "  <backjump>"
            lines.append(f"{prefix}{branch}{label}{suffix}")
            _render_node(
                child, lines, prefix + ("   " if last else "|  "), query
            )


def render_tree(tree: SearchTree) -> str:
    """Indented text rendering (the textual Fig. 3)."""
    lines = [
        f"search tree: {tree.num_recursions()} recursions, "
        f"{tree.num_conflicts()} conflicts, "
        f"{len(tree.embeddings)} embeddings"
    ]
    _render_node(tree.root, lines, "", tree.query)
    return "\n".join(lines)


def trace_search(
    query: Graph,
    data: Graph,
    config: Optional[GuPConfig] = None,
    limits: Optional[SearchLimits] = None,
    reorder: bool = True,
) -> SearchTree:
    """Run GuP under a recorder and return the reconstructed tree.

    With ``reorder=False`` the query's own vertex order is used as the
    matching order (what the paper's Fig. 3 does for its example).
    """
    config = config or GuPConfig()
    if reorder:
        gcs = build_gcs(query, data, config)
    else:
        from repro.core.gcs import GuardedCandidateSpace
        from repro.core.reservation import generate_reservation_guards
        from repro.filtering.candidate_space import build_candidate_space
        from repro.graph.algorithms import two_core_edges

        cs = build_candidate_space(query, data, method=config.filter_method)
        reservations = (
            generate_reservation_guards(cs, config.reservation_limit)
            if config.use_reservation
            else {}
        )
        gcs = GuardedCandidateSpace(
            original_query=query,
            query=query,
            data=data,
            order=list(query.vertices()),
            cs=cs,
            reservations=reservations,
            two_core=frozenset(two_core_edges(query)),
        )
    recorder = TraceRecorder()
    search = GuPSearch(gcs, config=config, limits=limits, observer=recorder)
    search.run()
    return build_tree(recorder, gcs.query)


def render_search_tree(
    query: Graph,
    data: Graph,
    config: Optional[GuPConfig] = None,
    limits: Optional[SearchLimits] = None,
    reorder: bool = True,
) -> str:
    """One-call text rendering of a traced search."""
    return render_tree(trace_search(query, data, config, limits, reorder))
