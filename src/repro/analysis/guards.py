"""Post-run guard inventories: what did a search learn?

Utilities that summarize the guard state after a GuP run — useful for
debugging pruning behaviour and for the guard-inspection example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.backtrack import GuPSearch
from repro.core.gcs import GuardedCandidateSpace
from repro.matching.result import SearchStats
from repro.utils.bitset import bit_count


@dataclass(frozen=True)
class GuardInventory:
    """Aggregate view of one run's guards."""

    reservations_total: int
    reservations_nontrivial: int
    reservation_size_histogram: Dict[int, int]
    nv_guards: int
    ne_guards: int
    nv_dom_histogram: Dict[int, int]
    prunes_by_kind: Dict[str, int]

    def lines(self) -> List[str]:
        """Human-readable rendering."""
        out = [
            f"reservation guards: {self.reservations_total} "
            f"({self.reservations_nontrivial} non-trivial)",
        ]
        for size in sorted(self.reservation_size_histogram):
            out.append(
                f"  |R| = {size}: {self.reservation_size_histogram[size]}"
            )
        out.append(f"nogood guards: {self.nv_guards} on vertices, "
                   f"{self.ne_guards} on edges")
        for size in sorted(self.nv_dom_histogram):
            out.append(f"  |dom(NV)| = {size}: {self.nv_dom_histogram[size]}")
        out.append("prunes: " + ", ".join(
            f"{kind}={count}" for kind, count in sorted(self.prunes_by_kind.items())
        ))
        return out

    def render(self) -> str:
        return "\n".join(self.lines())


def guard_inventory(
    gcs: GuardedCandidateSpace,
    stats: Optional[SearchStats] = None,
) -> GuardInventory:
    """Summarize the guards attached to a GCS after a search.

    ``gcs.nogoods`` holds the store of the *most recent* search over the
    GCS; pass the matching :class:`SearchStats` for prune counters.
    """
    size_hist: Dict[int, int] = {}
    nontrivial = 0
    for (i, v), guard in gcs.reservations.items():
        size_hist[len(guard)] = size_hist.get(len(guard), 0) + 1
        if guard != frozenset((v,)):
            nontrivial += 1

    store = gcs.nogoods
    nv_hist: Dict[int, int] = {}
    iter_guards = getattr(store, "iter_vertex_guards", None)
    vertex_guards = list(iter_guards()) if iter_guards is not None else []
    for guard in vertex_guards:
        if isinstance(guard, tuple) and len(guard) == 3 and isinstance(guard[2], int):
            dom_size = bit_count(guard[2])  # encoded triplet
        else:
            dom_size = len(guard)  # explicit assignment tuple
        nv_hist[dom_size] = nv_hist.get(dom_size, 0) + 1

    prunes: Dict[str, int] = {}
    if stats is not None:
        prunes = {
            "injectivity": stats.pruned_injectivity,
            "reservation": stats.pruned_reservation,
            "nogood_vertex": stats.pruned_nogood_vertex,
            "nogood_edge": stats.pruned_nogood_edge,
            "symmetry": stats.pruned_symmetry,
        }

    return GuardInventory(
        reservations_total=len(gcs.reservations),
        reservations_nontrivial=nontrivial,
        reservation_size_histogram=size_hist,
        nv_guards=store.num_vertex_guards,
        ne_guards=store.num_edge_guards,
        nv_dom_histogram=nv_hist,
        prunes_by_kind=prunes,
    )


def run_and_inventory(
    gcs: GuardedCandidateSpace,
    **search_kwargs,
) -> Tuple[GuPSearch, GuardInventory]:
    """Run a fresh search over ``gcs`` and return it with its inventory."""
    search = GuPSearch(gcs, **search_kwargs)
    search.run()
    return search, guard_inventory(gcs, search.stats)
