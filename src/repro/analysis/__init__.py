"""Search analysis and visualization tools.

* :class:`~repro.analysis.trace.SearchObserver` / ``TraceRecorder`` —
  event protocol + recorder for instrumented GuP runs.
* :func:`~repro.analysis.tree.render_search_tree` — Fig. 3-style text
  rendering of the search tree, with conflict annotations.
* :func:`~repro.analysis.tree.trace_search` — run GuP under a recorder
  and return the trace.
"""

from repro.analysis.guards import GuardInventory, guard_inventory, run_and_inventory
from repro.analysis.trace import SearchEvent, SearchObserver, TraceRecorder
from repro.analysis.tree import SearchTree, render_search_tree, trace_search

__all__ = [
    "GuardInventory",
    "SearchEvent",
    "SearchObserver",
    "SearchTree",
    "TraceRecorder",
    "guard_inventory",
    "render_search_tree",
    "run_and_inventory",
    "trace_search",
]
