"""Search-event protocol and recorder.

:class:`repro.core.backtrack.GuPSearch` accepts an ``observer`` whose
methods are called at the decision points of Algorithm 2.  The hooks are
pure notifications — tracing never changes the search.

Event stream grammar (DFS order)::

    on_conflict(depth, v, kind, mask)      candidate filtered before descent
    on_descend(depth, v, node_id)          recursion into M ⊕ v
    ... nested events ...
    on_return(depth, v, found, mask)       recursion finished
    on_embedding(embedding)                full embedding emitted (at leaves)
    on_backjump(depth, mask)               remaining siblings skipped

Not to be confused with the *service* tracing in :mod:`repro.obs`:
obs trace ids (``new_trace_id``) and spans (:mod:`repro.obs.spans`)
follow one request across client, server, and procpool workers and
carry only names and timings.  This module records the Algorithm-2
search event stream *inside* one engine run — per-recursion detail,
no timestamps, no cross-process identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class SearchEvent:
    """One recorded search event."""

    kind: str
    depth: int
    vertex: Optional[int] = None
    mask: int = 0
    node_id: Optional[int] = None
    found: Optional[bool] = None
    embedding: Optional[Tuple[int, ...]] = None
    conflict: str = ""


class SearchObserver:
    """No-op observer; subclass and override what you need."""

    def on_conflict(self, depth: int, v: int, kind: str, mask: int) -> None:
        """Candidate ``v`` for ``u_depth`` was filtered (Definition 3.22)."""

    def on_descend(self, depth: int, v: int, node_id: int) -> None:
        """The search recursed into ``M ⊕ v`` (search node ``node_id``)."""

    def on_return(self, depth: int, v: int, found: bool, mask: int) -> None:
        """The recursion for ``M ⊕ v`` finished; ``mask`` is its deadend
        mask when ``found`` is false."""

    def on_embedding(self, embedding: Tuple[int, ...]) -> None:
        """A full embedding was emitted."""

    def on_backjump(self, depth: int, mask: int) -> None:
        """The node abandoned its remaining candidates (line 14)."""


class TraceRecorder(SearchObserver):
    """Observer that stores every event (for tests and visualization).

    Records the in-engine search event stream; unrelated to the obs
    layer's trace ids/spans, which identify *requests*, not recursions.
    """

    def __init__(self) -> None:
        self.events: List[SearchEvent] = []

    def on_conflict(self, depth: int, v: int, kind: str, mask: int) -> None:
        self.events.append(
            SearchEvent("conflict", depth, vertex=v, mask=mask, conflict=kind)
        )

    def on_descend(self, depth: int, v: int, node_id: int) -> None:
        self.events.append(
            SearchEvent("descend", depth, vertex=v, node_id=node_id)
        )

    def on_return(self, depth: int, v: int, found: bool, mask: int) -> None:
        self.events.append(
            SearchEvent("return", depth, vertex=v, found=found, mask=mask)
        )

    def on_embedding(self, embedding: Tuple[int, ...]) -> None:
        self.events.append(
            SearchEvent("embedding", len(embedding), embedding=embedding)
        )

    def on_backjump(self, depth: int, mask: int) -> None:
        self.events.append(SearchEvent("backjump", depth, mask=mask))

    # -- conveniences ----------------------------------------------------

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def conflicts_by_kind(self) -> dict:
        out: dict = {}
        for e in self.events:
            if e.kind == "conflict":
                out[e.conflict] = out.get(e.conflict, 0) + 1
        return out
