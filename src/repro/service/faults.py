"""Deterministic fault injection for the service stack (DESIGN.md §10).

The fault-tolerance claims of this repo are *proven*, not assumed: every
recovery path has a test that forces the corresponding failure at an
exact, named point and asserts the system ends up in a declared-legal
state.  This module is the injection mechanism those tests share.

Production code declares **hook points** — short dotted names like
``"catalog.txn.journal"`` or ``"procpool.task.3"`` — and calls
:meth:`FaultPlan.reach` at each one.  A plan with no matching armed rule
makes ``reach`` a dictionary miss and an integer compare (nanoseconds);
the default plan :data:`NO_FAULTS` has no rules at all.  There is no
monkeypatching anywhere: a test builds a :class:`FaultPlan` and hands it
to the component under test (``GraphCatalog(faults=...)``,
``MatchingServer(faults=...)``, ``procpool.run_partitioned(...,
faults=...)``).

Actions
-------
``crash``
    Raise :class:`InjectedCrash` — a **BaseException** so ordinary
    ``except Exception`` recovery code cannot swallow it.  It models a
    process killed at that instant: whatever bytes are on disk stay on
    disk, nothing later in the operation runs.
``oserror``
    Raise an :class:`OSError` with a configurable errno (default
    ``ENOSPC`` — the full-disk case).  Unlike ``crash`` this *is* an
    ordinary exception: it exercises the error-reporting paths.
``die``
    ``os._exit(17)`` — the process vanishes without unwinding.  Used
    inside procpool workers to produce a real ``BrokenProcessPool``.
``delay``
    Sleep ``rule.seconds`` at the point (async call sites translate
    this into ``asyncio.sleep`` via :meth:`FaultPlan.consume`).
``refuse`` / ``overload``
    No-ops at this layer; call sites interpret them (the server closes
    the connection / sheds the request).  Tests use them to exercise
    client retry without real resource pressure.

Rules fire deterministically: a rule matches its ``point`` exactly,
skips its first ``after`` hits, then fires ``times`` times (``None`` =
every later hit).  All mutation happens under a lock; plans are
picklable (the lock is dropped and re-created) so they can ride the
procpool initializer into worker processes.
"""

from __future__ import annotations

import errno as errno_module
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

ACTIONS = ("crash", "oserror", "die", "delay", "refuse", "overload")


class InjectedCrash(BaseException):
    """A simulated kill -9 at a named persistence point.

    Deliberately a :class:`BaseException`: recovery code that catches
    ``Exception`` must never be able to "handle" a crash — the whole
    point is that nothing after the kill point runs.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected crash at {point!r}")
        self.point = point


@dataclass
class FaultRule:
    """One armed fault: *what* happens at *which* point, and *when*.

    ``after`` skips that many hits of the point before arming;
    ``times`` bounds how often the rule fires (``None`` = unlimited).
    """

    point: str
    action: str = "crash"
    after: int = 0
    times: Optional[int] = 1
    seconds: float = 0.0
    errno: int = errno_module.ENOSPC
    # Mutable firing state (managed by the plan, under its lock).
    seen: int = 0
    fired: int = 0

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r} (one of {ACTIONS})"
            )

    def _should_fire(self) -> bool:
        """Record one hit; report whether the rule fires on it."""
        self.seen += 1
        if self.seen <= self.after:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        self.fired += 1
        return True


class FaultPlan:
    """A set of :class:`FaultRule`\\ s plus a record of points reached.

    The empty plan is the production configuration: ``reach`` returns
    immediately.  Tests typically build one plan per scenario::

        plan = FaultPlan([FaultRule("catalog.txn.journal", "crash")])
        catalog = GraphCatalog(root, faults=plan)
        with pytest.raises(InjectedCrash):
            catalog.update(name, delta)

    ``history`` (the ordered list of points reached) makes sweeps
    self-checking: a test that kills at a declared point can assert the
    point was actually on the executed path.
    """

    def __init__(self, rules: Optional[List[FaultRule]] = None) -> None:
        self._rules: Dict[str, List[FaultRule]] = {}
        self.history: List[str] = []
        self.record_history = False
        self._lock = threading.Lock()
        for rule in rules or []:
            self.add(rule)

    # -- configuration -------------------------------------------------

    def add(self, rule: FaultRule) -> "FaultPlan":
        with self._lock:
            self._rules.setdefault(rule.point, []).append(rule)
        return self

    @property
    def rules(self) -> List[FaultRule]:
        with self._lock:
            return [r for rules in self._rules.values() for r in rules]

    # -- hook points ---------------------------------------------------

    def consume(self, point: str) -> Optional[FaultRule]:
        """Record a hit of ``point``; return the rule that fires, if any.

        Used by call sites that must interpret the action themselves
        (async contexts cannot ``time.sleep``).  At most one rule fires
        per hit, in insertion order.
        """
        with self._lock:
            if self.record_history:
                self.history.append(point)
            for rule in self._rules.get(point, ()):  # miss = no iteration
                if rule._should_fire():
                    return rule
        return None

    def reach(self, point: str) -> None:
        """Hit ``point`` and *execute* the firing rule's action, if any.

        This is the one-liner production hook: ``faults.reach("...")``.
        """
        rule = self.consume(point)
        if rule is None:
            return
        if rule.action == "crash":
            raise InjectedCrash(point)
        if rule.action == "oserror":
            raise OSError(rule.errno, os.strerror(rule.errno), point)
        if rule.action == "die":
            os._exit(17)
        if rule.action == "delay":
            time.sleep(rule.seconds)
        # "refuse"/"overload" are interpreted by the call site via
        # consume(); reached through reach() they are recorded no-ops.

    # -- introspection -------------------------------------------------

    def fired(self, point: Optional[str] = None) -> int:
        """How many times rules have fired (optionally just at ``point``)."""
        with self._lock:
            total = 0
            for p, rules in self._rules.items():
                if point is None or p == point:
                    total += sum(r.fired for r in rules)
            return total

    # -- pickling (procpool initializer support) -----------------------

    def __getstate__(self) -> Tuple[Dict, List[str], bool]:
        with self._lock:
            return (self._rules, list(self.history), self.record_history)

    def __setstate__(self, state) -> None:
        self._rules, self.history, self.record_history = state
        self._lock = threading.Lock()


NO_FAULTS = FaultPlan()
"""The shared production plan: no rules, ``reach`` is effectively free.

Components default their ``faults`` parameter to this instance; never
add rules to it (build a fresh :class:`FaultPlan` per test instead).
"""


def crash_at(point: str, after: int = 0) -> FaultPlan:
    """Shorthand for the single-kill-point plans the sweeps use."""
    return FaultPlan([FaultRule(point, "crash", after=after)])
