"""Persistent graph catalog: named data graphs + warm artifacts on disk.

Layout (one directory per registered graph under the catalog root)::

    <root>/<name>/graph.graph      the graph, portable ``.graph`` text
    <root>/<name>/artifacts.bin    serialized DataArtifacts payload
    <root>/<name>/meta.json        sidecar: format version + checksums

The sidecar records the catalog format version, the SHA-256 of each
file's bytes, and the graph's semantic checksum
(:func:`repro.graph.io.graph_checksum`).  On load everything is
verified; **any** mismatch — truncated or bit-flipped artifacts, a
hand-edited graph file, a stale format version, a missing or corrupt
sidecar — causes the artifacts to be *rebuilt from the graph and
rewritten*, never trusted.  The graph file itself is the single source
of truth; if it does not parse, the entry is unusable and a
:class:`CatalogError` is raised.

In memory the catalog keeps an LRU of warm :class:`GuPEngine` instances
(graph + artifacts resident), so a long-running server reuses engines
across requests instead of re-reading the store.  All counters needed
by the service ``stats`` endpoint are kept on the catalog:
``artifact_builds`` (from-scratch builds, e.g. on ``add``),
``artifact_loads`` (clean loads from disk), ``artifact_rebuilds``
(corruption/staleness recoveries), ``engine_hits`` / ``engine_misses``
(LRU), and ``engine_evictions``.
"""

from __future__ import annotations

import hashlib
import json
import re
import shutil
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.config import GuPConfig
from repro.core.engine import GuPEngine
from repro.filtering.artifacts import (
    ARTIFACTS_FORMAT_VERSION,
    ArtifactsFormatError,
    DataArtifacts,
    dumps_artifacts,
    loads_artifacts,
)
from repro.graph.graph import Graph
from repro.graph.io import graph_checksum, load_graph, loads_graph, saves_graph

CATALOG_FORMAT_VERSION = 1

GRAPH_FILE = "graph.graph"
ARTIFACTS_FILE = "artifacts.bin"
META_FILE = "meta.json"

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class CatalogError(Exception):
    """A catalog operation failed (unknown name, unparseable graph, ...)."""


def _sha256(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


class GraphCatalog:
    """Named data graphs with persisted artifacts and warm engines.

    Thread-safe: a single lock serializes store access and LRU updates
    (engine *searches* run outside the catalog and share freely).
    """

    def __init__(
        self,
        root: Union[str, Path],
        config: Optional[GuPConfig] = None,
        max_resident: int = 4,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.config = config or GuPConfig()
        self.max_resident = max_resident
        self._resident: "OrderedDict[str, GuPEngine]" = OrderedDict()
        self._lock = threading.RLock()
        # Serializes update() calls against each other (epoch
        # read-modify-write) without holding the main lock across the
        # patch/serialization work, which must not stall engine() calls.
        self._update_mutex = threading.Lock()
        self.counters: Dict[str, int] = {
            "artifact_builds": 0,
            "artifact_loads": 0,
            "artifact_rebuilds": 0,
            "artifact_patches": 0,
            "engine_hits": 0,
            "engine_misses": 0,
            "engine_evictions": 0,
            "updates": 0,
            "removes": 0,
        }

    # -- registration --------------------------------------------------

    def add(
        self,
        name: str,
        graph: Union[Graph, str, Path],
        overwrite: bool = False,
    ) -> Dict[str, object]:
        """Register ``graph`` (a :class:`Graph` or a ``.graph`` path).

        Builds the artifacts, persists everything, and leaves a warm
        engine resident.  Re-adding an identical graph under the same
        name is a no-op; a different graph requires ``overwrite=True``.
        Returns the entry's info dict.
        """
        directory = self._entry_dir(name)
        if not isinstance(graph, Graph):
            graph = load_graph(graph)
        checksum = graph_checksum(graph)
        with self._lock:
            if directory.exists() and (directory / GRAPH_FILE).exists():
                existing = self._read_meta(directory)
                if (
                    not overwrite
                    and existing is not None
                    and existing.get("graph_checksum") == checksum
                ):
                    return self.info(name)
                if not overwrite:
                    raise CatalogError(
                        f"catalog entry {name!r} already exists with a "
                        "different graph (use overwrite)"
                    )
                self._resident.pop(name, None)
        # Build outside the lock: artifacts construction can take seconds
        # on a large graph and must not stall concurrent engine() calls.
        # (Two racing adds of the same name both build; the later write
        # wins — acceptable for a registration operation.)
        graph_text = saves_graph(graph)
        artifacts = DataArtifacts(graph)
        with self._lock:
            self.counters["artifact_builds"] += 1
            directory.mkdir(parents=True, exist_ok=True)
            (directory / GRAPH_FILE).write_text(graph_text, encoding="utf-8")
            self._write_artifacts(directory, graph, graph_text, artifacts)
            self._install(name, GuPEngine(graph, self.config, artifacts=artifacts))
        return self.info(name)

    def names(self) -> List[str]:
        """Sorted names of all registered graphs.

        Directories whose names this catalog could not have created
        (failing the name rules) are ignored rather than poisoning
        listings."""
        out = []
        for child in sorted(self.root.iterdir()) if self.root.exists() else []:
            if (
                child.is_dir()
                and _NAME_RE.match(child.name)
                and (child / GRAPH_FILE).exists()
            ):
                out.append(child.name)
        return out

    def info(self, name: str) -> Dict[str, object]:
        """The entry's sidecar metadata plus residency."""
        directory = self._entry_dir(name)
        if not (directory / GRAPH_FILE).exists():
            raise CatalogError(f"unknown catalog entry {name!r}")
        meta = self._read_meta(directory) or {}
        with self._lock:
            resident = name in self._resident
        return {
            "name": name,
            "num_vertices": meta.get("num_vertices"),
            "num_edges": meta.get("num_edges"),
            "graph_checksum": meta.get("graph_checksum"),
            "format_version": meta.get("format_version"),
            "epoch": meta.get("epoch"),
            "resident": resident,
        }

    def update(self, name: str, delta) -> Tuple[Dict[str, object], object]:
        """Apply a :class:`repro.dynamic.delta.GraphDelta` to an entry.

        The entry's graph is replaced by the delta-applied graph, its
        on-disk artifacts by the **incrementally patched** ones
        (:meth:`DataArtifacts.apply_delta` — counted under
        ``artifact_patches``, never a rebuild), its sidecar epoch is
        bumped, and a fresh warm engine is installed that inherits the
        old engine's build-invariant cache (those entries never go
        stale).  Returns ``(info, summary)``.

        Updates serialize against each other on a dedicated mutex; the
        catalog lock is held only to fetch the engine and to swap in
        the new state, so the patch and the O(graph) serialization
        never stall concurrent ``engine()`` calls (the same contract
        :meth:`add` keeps for its artifact build).  Engines handed out
        earlier keep serving the pre-update graph snapshot.  As with
        two racing ``add`` calls, an ``add(overwrite=True)`` racing an
        update of the same name resolves by last-write-wins.
        """
        from repro.dynamic.delta import apply_delta

        with self._update_mutex:
            with self._lock:
                engine = self.engine(name)  # raises CatalogError when unknown
            new_graph, summary = apply_delta(engine.data, delta)
            artifacts = engine.artifacts.apply_delta(new_graph, summary)
            graph_text = saves_graph(new_graph)
            with self._lock:
                self.counters["artifact_patches"] += 1
                self.counters["updates"] += 1
                directory = self._entry_dir(name)
                meta = self._read_meta(directory) or {}
                epoch = int(meta.get("epoch") or 1) + 1
                (directory / GRAPH_FILE).write_text(
                    graph_text, encoding="utf-8"
                )
                self._write_artifacts(
                    directory, new_graph, graph_text, artifacts, epoch=epoch
                )
                self._install(
                    name,
                    GuPEngine(
                        new_graph,
                        self.config,
                        artifacts=artifacts,
                        invariants=engine.invariants,
                    ),
                )
        return self.info(name), summary

    def remove(self, name: str) -> None:
        """Delete an entry (its directory and any resident engine)."""
        directory = self._entry_dir(name)
        with self._lock:
            if not (directory / GRAPH_FILE).exists():
                raise CatalogError(f"unknown catalog entry {name!r}")
            self._resident.pop(name, None)
            shutil.rmtree(directory)
            self.counters["removes"] += 1

    # -- engines -------------------------------------------------------

    def engine(self, name: str) -> GuPEngine:
        """The warm engine for ``name`` (LRU; loads from disk on miss)."""
        with self._lock:
            engine = self._resident.get(name)
            if engine is not None:
                self.counters["engine_hits"] += 1
                self._resident.move_to_end(name)
                return engine
            self.counters["engine_misses"] += 1
            graph, artifacts, _rebuilt = self._load(name)
            engine = GuPEngine(graph, self.config, artifacts=artifacts)
            self._install(name, engine)
            return engine

    def warm(self, name: str) -> bool:
        """Ensure ``name``'s on-disk artifacts are valid and its engine
        resident.  Returns whether the artifacts had to be rebuilt."""
        with self._lock:
            before = self.counters["artifact_rebuilds"]
            if name in self._resident:
                # Residency says nothing about the disk copy: re-verify it
                # so ``warm`` always leaves a loadable store behind.
                graph, artifacts, rebuilt = self._load(name)
                self._install(name, GuPEngine(graph, self.config, artifacts=artifacts))
                return rebuilt
            self.engine(name)
            return self.counters["artifact_rebuilds"] > before

    # -- internals -----------------------------------------------------

    def _entry_dir(self, name: str) -> Path:
        if not _NAME_RE.match(name):
            raise CatalogError(
                f"invalid catalog name {name!r} (allowed: letters, digits, "
                "'.', '_', '-'; must not start with a separator)"
            )
        return self.root / name

    def _read_meta(self, directory: Path) -> Optional[Dict[str, object]]:
        try:
            meta = json.loads((directory / META_FILE).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return meta if isinstance(meta, dict) else None

    def _write_artifacts(
        self,
        directory: Path,
        graph: Graph,
        graph_text: str,
        artifacts: DataArtifacts,
        epoch: int = 1,
    ) -> None:
        blob = dumps_artifacts(artifacts)
        (directory / ARTIFACTS_FILE).write_bytes(blob)
        meta = {
            "format_version": CATALOG_FORMAT_VERSION,
            "artifacts_format_version": ARTIFACTS_FORMAT_VERSION,
            "name": directory.name,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "epoch": epoch,
            "graph_checksum": graph_checksum(graph),
            "graph_file_sha256": _sha256(graph_text.encode("utf-8")),
            "artifacts_sha256": _sha256(blob),
        }
        (directory / META_FILE).write_text(
            json.dumps(meta, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def _load(self, name: str) -> Tuple[Graph, DataArtifacts, bool]:
        """Load an entry from disk, rebuilding artifacts when needed."""
        directory = self._entry_dir(name)
        try:
            graph_text = (directory / GRAPH_FILE).read_text(encoding="utf-8")
        except OSError:
            raise CatalogError(f"unknown catalog entry {name!r}")
        try:
            graph = loads_graph(graph_text)
        except ValueError as exc:
            raise CatalogError(f"catalog entry {name!r} graph is corrupt: {exc}")

        meta = self._read_meta(directory)
        blob: Optional[bytes] = None
        if (
            meta is not None
            and meta.get("format_version") == CATALOG_FORMAT_VERSION
            # A sidecar from before an artifact-format bump is *stale*,
            # not corrupt: skip the blob entirely and rebuild cleanly
            # (loads_artifacts would reject its version anyway).
            and meta.get("artifacts_format_version") == ARTIFACTS_FORMAT_VERSION
            and meta.get("graph_file_sha256")
            == _sha256(graph_text.encode("utf-8"))
        ):
            try:
                candidate = (directory / ARTIFACTS_FILE).read_bytes()
            except OSError:
                candidate = None
            if (
                candidate is not None
                and meta.get("artifacts_sha256") == _sha256(candidate)
            ):
                blob = candidate
        if blob is not None:
            try:
                artifacts = loads_artifacts(blob, graph)
                self.counters["artifact_loads"] += 1
                return graph, artifacts, False
            except ArtifactsFormatError:
                pass  # fall through to rebuild
        artifacts = DataArtifacts(graph)
        self.counters["artifact_rebuilds"] += 1
        # A rebuild recovers the artifacts, not the entry's history:
        # keep whatever epoch the (possibly corrupt) sidecar still had.
        epoch = 1
        if meta is not None:
            try:
                epoch = max(1, int(meta.get("epoch") or 1))
            except (TypeError, ValueError):
                epoch = 1
        self._write_artifacts(
            directory, graph, graph_text, artifacts, epoch=epoch
        )
        return graph, artifacts, True

    def _install(self, name: str, engine: GuPEngine) -> None:
        self._resident[name] = engine
        self._resident.move_to_end(name)
        while len(self._resident) > self.max_resident:
            self._resident.popitem(last=False)
            self.counters["engine_evictions"] += 1

    def stats(self) -> Dict[str, object]:
        """Counter snapshot plus residency, for the service ``stats`` op."""
        with self._lock:
            out: Dict[str, object] = dict(self.counters)
            out["resident"] = list(self._resident)
            out["entries"] = self.names()
            return out
