"""Persistent graph catalog: named data graphs + warm artifacts on disk.

Layout (one directory per registered graph under the catalog root)::

    <root>/<name>/graph.graph      the graph, portable ``.graph`` text
    <root>/<name>/artifacts.bin    serialized DataArtifacts payload
    <root>/<name>/meta.json        sidecar: format version + checksums
    <root>/<name>/journal.json     transient: an in-flight transaction
    <root>/<name>/*.tmp            transient: staged new file versions

The sidecar records the catalog format version, the SHA-256 of each
file's bytes, and the graph's semantic checksum
(:func:`repro.graph.io.graph_checksum`).  On load everything is
verified; **any** mismatch — truncated or bit-flipped artifacts, a
hand-edited graph file, a stale format version, a missing or corrupt
sidecar — causes the artifacts to be *rebuilt from the graph and
rewritten*, never trusted.  The graph file itself is the single source
of truth; if it does not parse, the entry is unusable and a
:class:`CatalogError` is raised.

Crash safety (DESIGN.md §10): every multi-file mutation (``add``,
``update``, ``remove``, and the rebuild-on-load) is a **journaled
transaction**.  New file versions are staged as fsynced ``*.tmp``
files, then a journal records the transaction's target state (epoch +
per-file SHA-256), then each file is atomically renamed into place,
then the journal is deleted (the commit point).  Recovery on the next
load rolls the transaction *forward* when the journal is durable (all
staged bytes are then durable too, by write ordering) and *discards*
it otherwise — a kill at **any** point leaves the entry either fully
at epoch N or fully at epoch N+1, never torn.  The named persistence
points (:func:`txn_points`) double as fault-injection hooks; the
crash-point sweep in ``tests/test_service_faults.py`` kills at every
one of them and proves the old-or-new invariant byte for byte.

In memory the catalog keeps an LRU of warm :class:`GuPEngine` instances
(graph + artifacts resident), so a long-running server reuses engines
across requests instead of re-reading the store.  All counters needed
by the service ``stats`` endpoint are kept on the catalog:
``artifact_builds`` (from-scratch builds, e.g. on ``add``),
``artifact_loads`` (clean loads from disk), ``artifact_rebuilds``
(corruption/staleness recoveries), ``engine_hits`` / ``engine_misses``
(LRU), ``engine_evictions``, and the transaction recovery counters
``txn_rollforwards`` / ``txn_rollbacks``.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import re
import shutil
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.config import GuPConfig
from repro.core.engine import GuPEngine
from repro.filtering.artifacts import (
    ARTIFACTS_FORMAT_VERSION,
    ArtifactsFormatError,
    DataArtifacts,
    dumps_artifacts,
    loads_artifacts,
)
from repro.graph.graph import Graph
from repro.graph.io import graph_checksum, load_graph, loads_graph, saves_graph
from repro.obs.explain import (
    ANALYZE_SIDECAR_MAX_RECORDS,
    ANALYZE_SIDECAR_VERSION,
)
from repro.obs.metrics import CounterGroup
from repro.service.faults import NO_FAULTS, FaultPlan

CATALOG_FORMAT_VERSION = 1

GRAPH_FILE = "graph.graph"
ARTIFACTS_FILE = "artifacts.bin"
META_FILE = "meta.json"
JOURNAL_FILE = "journal.json"
ANALYZE_FILE = "analyze.json"
TMP_SUFFIX = ".tmp"

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

logger = logging.getLogger("repro.service.catalog")


class CatalogError(Exception):
    """A catalog operation failed (unknown name, unparseable graph, ...)."""


def _sha256(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


def _file_sha256(path: Path) -> Optional[str]:
    try:
        return _sha256(path.read_bytes())
    except OSError:
        return None


def _write_durable(path: Path, blob: bytes) -> None:
    """Write ``blob`` and fsync it: the bytes survive a crash after this."""
    with open(path, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())


def _fsync_dir(directory: Path) -> None:
    """Make renames/unlinks in ``directory`` durable (no-op where
    directory fsync is unsupported)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def txn_points(op: str) -> Tuple[str, ...]:
    """Every declared persistence point of one catalog operation, in
    execution order.  ``op`` is ``"add"``/``"update"`` (full three-file
    transaction), ``"rebuild"`` (artifacts + sidecar only), or
    ``"remove"``.  The fault-injection sweep enumerates these, so the
    list *is* the contract: add a hook, and the sweep covers it.
    """
    if op == "remove":
        return (
            "catalog.remove.begin",
            "catalog.remove.journal",
            f"catalog.remove.unlink.{GRAPH_FILE}",
            f"catalog.remove.unlink.{ARTIFACTS_FILE}",
            f"catalog.remove.unlink.{META_FILE}",
            "catalog.remove.commit",
        )
    if op in ("add", "update"):
        files: Tuple[str, ...] = (GRAPH_FILE, ARTIFACTS_FILE, META_FILE)
    elif op == "rebuild":
        files = (ARTIFACTS_FILE, META_FILE)
    else:
        raise ValueError(f"unknown catalog operation {op!r}")
    points = ["catalog.txn.begin"]
    points += [f"catalog.txn.tmp.{name}" for name in files]
    points += ["catalog.txn.journal"]
    points += [f"catalog.txn.rename.{name}" for name in files]
    points += ["catalog.txn.commit"]
    return tuple(points)


class GraphCatalog:
    """Named data graphs with persisted artifacts and warm engines.

    Thread-safe: a single lock serializes store access and LRU updates
    (engine *searches* run outside the catalog and share freely).
    ``faults`` is the injection plan threaded through every persistence
    point; production leaves it at :data:`repro.service.faults.NO_FAULTS`.
    """

    def __init__(
        self,
        root: Union[str, Path],
        config: Optional[GuPConfig] = None,
        max_resident: int = 4,
        faults: FaultPlan = NO_FAULTS,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.config = config or GuPConfig()
        self.max_resident = max_resident
        self.faults = faults
        self._resident: "OrderedDict[str, GuPEngine]" = OrderedDict()
        self._lock = threading.RLock()
        # Serializes update() calls against each other (epoch
        # read-modify-write) without holding the main lock across the
        # patch/serialization work, which must not stall engine() calls.
        self._update_mutex = threading.Lock()
        # A CounterGroup (dict-like, thread-safe) so a metrics registry
        # can attach it and render the very same storage the ``stats``
        # op snapshots (repro.obs.metrics).
        self.counters = CounterGroup({
            "artifact_builds": 0,
            "artifact_loads": 0,
            "artifact_rebuilds": 0,
            "artifact_patches": 0,
            "engine_hits": 0,
            "engine_misses": 0,
            "engine_evictions": 0,
            "updates": 0,
            "removes": 0,
            "reloads": 0,
            "txn_rollforwards": 0,
            "txn_rollbacks": 0,
        })
        # Last known epoch per entry, maintained on every persist/load,
        # so request logs can stamp graph+epoch without a disk read.
        self._epochs: Dict[str, int] = {}

    # -- registration --------------------------------------------------

    def add(
        self,
        name: str,
        graph: Union[Graph, str, Path],
        overwrite: bool = False,
    ) -> Dict[str, object]:
        """Register ``graph`` (a :class:`Graph` or a ``.graph`` path).

        Builds the artifacts, persists everything in one journaled
        transaction, and leaves a warm engine resident.  Re-adding an
        identical graph under the same name is a no-op; a different
        graph requires ``overwrite=True`` and **bumps the epoch** —
        epochs are monotonic per name across adds, updates, and
        rebuilds, so caches and subscriptions stamped with an epoch can
        always detect that an entry changed underneath them.  Returns
        the entry's info dict.
        """
        directory = self._entry_dir(name)
        if not isinstance(graph, Graph):
            graph = load_graph(graph)
        checksum = graph_checksum(graph)
        epoch = 1
        with self._lock:
            self._recover(directory)
            if directory.exists() and (directory / GRAPH_FILE).exists():
                existing = self._read_meta(directory)
                if (
                    not overwrite
                    and existing is not None
                    and existing.get("graph_checksum") == checksum
                ):
                    return self.info(name)
                if not overwrite:
                    raise CatalogError(
                        f"catalog entry {name!r} already exists with a "
                        "different graph (use overwrite)"
                    )
                try:
                    epoch = max(1, int((existing or {}).get("epoch") or 1)) + 1
                except (TypeError, ValueError):
                    epoch = 2
                self._resident.pop(name, None)
        # Build outside the lock: artifacts construction can take seconds
        # on a large graph and must not stall concurrent engine() calls.
        # (Two racing adds of the same name both build; the later write
        # wins — acceptable for a registration operation.)
        graph_text = saves_graph(graph)
        artifacts = DataArtifacts(graph)
        with self._lock:
            self.counters["artifact_builds"] += 1
            directory.mkdir(parents=True, exist_ok=True)
            self._persist_entry(directory, graph, graph_text, artifacts,
                                epoch=epoch)
            self._install(name, GuPEngine(graph, self.config, artifacts=artifacts))
        return self.info(name)

    def names(self) -> List[str]:
        """Sorted names of all registered graphs.

        Directories whose names this catalog could not have created
        (failing the name rules) are ignored rather than poisoning
        listings; so are entries whose pending transaction is a
        removal (they are already logically gone)."""
        out = []
        for child in sorted(self.root.iterdir()) if self.root.exists() else []:
            if (
                child.is_dir()
                and _NAME_RE.match(child.name)
                and (child / GRAPH_FILE).exists()
                and not self._pending_remove(child)
            ):
                out.append(child.name)
        return out

    def info(self, name: str) -> Dict[str, object]:
        """The entry's sidecar metadata plus residency."""
        directory = self._entry_dir(name)
        with self._lock:
            self._recover(directory)
            if not (directory / GRAPH_FILE).exists():
                raise CatalogError(f"unknown catalog entry {name!r}")
            meta = self._read_meta(directory) or {}
            resident = name in self._resident
        return {
            "name": name,
            "num_vertices": meta.get("num_vertices"),
            "num_edges": meta.get("num_edges"),
            "graph_checksum": meta.get("graph_checksum"),
            "format_version": meta.get("format_version"),
            "epoch": meta.get("epoch"),
            "resident": resident,
        }

    def update(self, name: str, delta) -> Tuple[Dict[str, object], object]:
        """Apply a :class:`repro.dynamic.delta.GraphDelta` to an entry.

        The entry's graph is replaced by the delta-applied graph, its
        on-disk artifacts by the **incrementally patched** ones
        (:meth:`DataArtifacts.apply_delta` — counted under
        ``artifact_patches``, never a rebuild), its sidecar epoch is
        bumped, and a fresh warm engine is installed that inherits the
        old engine's build-invariant cache (those entries never go
        stale).  The three files move to the new epoch in one journaled
        transaction: a crash at any point leaves the entry wholly at
        the old epoch or wholly at the new one.  Returns
        ``(info, summary)``.

        Updates serialize against each other on a dedicated mutex; the
        catalog lock is held only to fetch the engine and to swap in
        the new state, so the patch and the O(graph) serialization
        never stall concurrent ``engine()`` calls (the same contract
        :meth:`add` keeps for its artifact build).  Engines handed out
        earlier keep serving the pre-update graph snapshot.  As with
        two racing ``add`` calls, an ``add(overwrite=True)`` racing an
        update of the same name resolves by last-write-wins.
        """
        from repro.dynamic.delta import apply_delta

        with self._update_mutex:
            with self._lock:
                engine = self.engine(name)  # raises CatalogError when unknown
            new_graph, summary = apply_delta(engine.data, delta)
            artifacts = engine.artifacts.apply_delta(new_graph, summary)
            graph_text = saves_graph(new_graph)
            with self._lock:
                directory = self._entry_dir(name)
                meta = self._read_meta(directory) or {}
                epoch = int(meta.get("epoch") or 1) + 1
                self._persist_entry(
                    directory, new_graph, graph_text, artifacts, epoch=epoch
                )
                self.counters["artifact_patches"] += 1
                self.counters["updates"] += 1
                self._install(
                    name,
                    GuPEngine(
                        new_graph,
                        self.config,
                        artifacts=artifacts,
                        invariants=engine.invariants,
                    ),
                )
        return self.info(name), summary

    def remove(self, name: str) -> None:
        """Delete an entry (its directory and any resident engine).

        Journaled like every other mutation: a remove-intent record is
        made durable first, so a crash mid-deletion is rolled *forward*
        on the next load — the entry is never resurrected half-deleted.
        """
        directory = self._entry_dir(name)
        with self._lock:
            self._recover(directory)
            if not (directory / GRAPH_FILE).exists():
                raise CatalogError(f"unknown catalog entry {name!r}")
            self._resident.pop(name, None)
            self.faults.reach("catalog.remove.begin")
            journal = {"op": "remove", "name": directory.name}
            _write_durable(
                directory / JOURNAL_FILE,
                (json.dumps(journal) + "\n").encode("utf-8"),
            )
            _fsync_dir(directory)
            self.faults.reach("catalog.remove.journal")
            for filename in (GRAPH_FILE, ARTIFACTS_FILE, META_FILE):
                try:
                    (directory / filename).unlink()
                except FileNotFoundError:
                    pass
                self.faults.reach(f"catalog.remove.unlink.{filename}")
            shutil.rmtree(directory)
            _fsync_dir(self.root)
            self.counters["removes"] += 1
            self._epochs.pop(name, None)
            self.faults.reach("catalog.remove.commit")

    # -- engines -------------------------------------------------------

    def engine(self, name: str) -> GuPEngine:
        """The warm engine for ``name`` (LRU; loads from disk on miss)."""
        return self.engine_ex(name)[0]

    def engine_ex(self, name: str) -> Tuple[GuPEngine, str, int]:
        """Like :meth:`engine`, plus provenance for request logs:
        ``(engine, source, epoch)`` with ``source`` one of
        ``"resident"`` (LRU hit), ``"load"`` (clean disk load), or
        ``"rebuild"`` (corruption/staleness recovery)."""
        with self._lock:
            engine = self._resident.get(name)
            if engine is not None:
                self.counters["engine_hits"] += 1
                self._resident.move_to_end(name)
                return engine, "resident", self._epochs.get(name, 1)
            self.counters["engine_misses"] += 1
            graph, artifacts, rebuilt = self._load(name)
            engine = GuPEngine(graph, self.config, artifacts=artifacts)
            self._install(name, engine)
            source = "rebuild" if rebuilt else "load"
            return engine, source, self._epochs.get(name, 1)

    def warm(self, name: str) -> bool:
        """Ensure ``name``'s on-disk artifacts are valid and its engine
        resident.  Returns whether the artifacts had to be rebuilt."""
        with self._lock:
            before = self.counters["artifact_rebuilds"]
            if name in self._resident:
                # Residency says nothing about the disk copy: re-verify it
                # so ``warm`` always leaves a loadable store behind.
                graph, artifacts, rebuilt = self._load(name)
                self._install(name, GuPEngine(graph, self.config, artifacts=artifacts))
                return rebuilt
            self.engine(name)
            return self.counters["artifact_rebuilds"] > before

    # -- zero-downtime reload (DESIGN.md §13) --------------------------

    def reload(
        self, faults: Optional[FaultPlan] = None
    ) -> Dict[str, Dict[str, object]]:
        """Re-scan the store and atomically refresh resident engines.

        Built for the server's zero-downtime ``reload`` op: another
        process (or a ``repro catalog`` invocation) may have added,
        updated, rebuilt, or removed entries under this root since we
        opened it.  The scan and any loads happen **without replacing a
        single resident engine**; only then does one locked *swap phase*
        install every staged engine and epoch at once.  Engines handed
        out before the swap keep serving their admitted epoch — the
        epoch-handoff half of the proof obligation; the server's
        lifecycle layer owes the other half (subscription diff-replay).

        Per entry the returned report records ``action`` —

        * ``"kept"``: disk epoch and graph checksum match the resident
          engine; nothing moved.
        * ``"reloaded"``: the entry changed on disk; a new-epoch engine
          was staged and swapped in.
        * ``"removed"``: the directory is gone; the resident engine was
          evicted at swap.
        * ``"lazy"``: the entry is not resident; the next ``engine()``
          call loads whatever epoch disk then holds (nothing to swap).

        — plus ``old_epoch``/``epoch`` and whether the load had to
        rebuild artifacts.  ``faults`` (default: the catalog's own
        plan) fires the ``lifecycle.reload.{begin,scan,build,swap}``
        hooks; an injected crash before the swap point leaves every
        resident engine and remembered epoch untouched (old state), a
        crash at/after it leaves the new state — never a mix, which is
        exactly the journaled old-or-new invariant lifted from files to
        the resident set.
        """
        plan = self.faults if faults is None else faults
        plan.reach("lifecycle.reload.begin")
        with self._lock:
            resident = dict(self._resident)
            old_epochs = dict(self._epochs)
        disk_names = set(self.names())
        plan.reach("lifecycle.reload.scan")

        report: Dict[str, Dict[str, object]] = {}
        staged: Dict[str, Tuple[GuPEngine, int, bool]] = {}
        for name in sorted(resident):
            if name not in disk_names:
                report[name] = {
                    "action": "removed",
                    "old_epoch": old_epochs.get(name, 1),
                    "epoch": None,
                    "rebuilt": False,
                }
        for name in sorted(disk_names):
            old_epoch = old_epochs.get(name)
            engine = resident.get(name)
            if engine is None:
                report[name] = {
                    "action": "lazy",
                    "old_epoch": old_epoch,
                    "epoch": None,
                    "rebuilt": False,
                }
                continue
            with self._lock:
                directory = self._entry_dir(name)
                self._recover(directory)
                meta = self._read_meta(directory) or {}
            try:
                disk_epoch = max(1, int(meta.get("epoch") or 1))
            except (TypeError, ValueError):
                disk_epoch = 1
            if (
                disk_epoch == (old_epoch or 1)
                and meta.get("graph_checksum") == graph_checksum(engine.data)
            ):
                report[name] = {
                    "action": "kept",
                    "old_epoch": old_epoch or 1,
                    "epoch": old_epoch or 1,
                    "rebuilt": False,
                }
                continue
            # Changed on disk: load the new epoch WITHOUT touching the
            # resident map, and put the remembered epoch back until the
            # swap phase so concurrent requests keep logging the epoch
            # they are actually served from.
            with self._lock:
                graph, artifacts, rebuilt = self._load(name)
                new_epoch = self._epochs.get(name, disk_epoch)
                if old_epoch is not None:
                    self._epochs[name] = old_epoch
                else:
                    self._epochs.pop(name, None)
            staged[name] = (
                GuPEngine(graph, self.config, artifacts=artifacts),
                new_epoch,
                rebuilt,
            )
            report[name] = {
                "action": "reloaded",
                "old_epoch": old_epoch or 1,
                "epoch": new_epoch,
                "rebuilt": rebuilt,
            }
        plan.reach("lifecycle.reload.build")

        with self._lock:
            for name, info in report.items():
                if info["action"] == "removed":
                    self._resident.pop(name, None)
                    self._epochs.pop(name, None)
            for name, (engine, epoch, _rebuilt) in staged.items():
                self._install(name, engine)
                self._epochs[name] = epoch
            self.counters["reloads"] += 1
        plan.reach("lifecycle.reload.swap")
        return report

    # -- transactions (DESIGN.md §10) ----------------------------------

    def _txn_commit(
        self, directory: Path, files: Dict[str, bytes], epoch: int
    ) -> None:
        """Replace ``files`` in ``directory`` all-or-nothing.

        Write ordering is the whole proof: (1) stage every new version
        as an fsynced ``*.tmp``; (2) make the journal — target epoch +
        per-file SHA-256 — durable; (3) rename each file into place;
        (4) delete the journal.  The journal's existence therefore
        implies every staged byte is durable, so recovery can always
        roll forward once it finds a journal, and must always discard
        when it does not.  ``self.faults`` fires after each step — the
        points listed by :func:`txn_points`.
        """
        faults = self.faults
        faults.reach("catalog.txn.begin")
        for filename, blob in files.items():
            _write_durable(directory / (filename + TMP_SUFFIX), blob)
            faults.reach(f"catalog.txn.tmp.{filename}")
        journal = {
            "op": "write",
            "epoch": epoch,
            "files": {
                filename: _sha256(blob) for filename, blob in files.items()
            },
        }
        _write_durable(
            directory / JOURNAL_FILE,
            (json.dumps(journal, sort_keys=True) + "\n").encode("utf-8"),
        )
        _fsync_dir(directory)
        faults.reach("catalog.txn.journal")
        for filename in files:
            os.replace(
                directory / (filename + TMP_SUFFIX), directory / filename
            )
            faults.reach(f"catalog.txn.rename.{filename}")
        _fsync_dir(directory)
        (directory / JOURNAL_FILE).unlink()
        _fsync_dir(directory)
        faults.reach("catalog.txn.commit")

    def _recover(self, directory: Path) -> Optional[int]:
        """Finish or discard an interrupted transaction in ``directory``.

        Returns an epoch hint for the caller's rebuild path: when a
        *forged* torn state left the new graph renamed into place but
        the journal unable to roll forward (impossible under our own
        write ordering, but the tests forge it), the graph content
        belongs to the journal's target epoch and the rebuilt sidecar
        should say so.  ``None`` otherwise.  Call with ``self._lock``
        held.
        """
        journal_path = directory / JOURNAL_FILE
        try:
            raw = journal_path.read_text(encoding="utf-8")
        except OSError:
            # No journal: any leftover tmps predate the commit record
            # and are garbage from a pre-journal crash.
            self._discard_tmps(directory)
            return None
        try:
            journal = json.loads(raw)
        except ValueError:
            journal = None
        if not isinstance(journal, dict):
            logger.warning("catalog %s: corrupt journal, discarding", directory)
            self._discard_tmps(directory)
            journal_path.unlink(missing_ok=True)
            self.counters["txn_rollbacks"] += 1
            return None

        if journal.get("op") == "remove":
            # The remove intent was durable: the entry is logically
            # gone — complete the deletion.
            logger.info("catalog %s: rolling forward remove", directory)
            shutil.rmtree(directory, ignore_errors=True)
            _fsync_dir(self.root)
            self.counters["txn_rollforwards"] += 1
            return None

        files = journal.get("files")
        if not isinstance(files, dict):
            self._discard_tmps(directory)
            journal_path.unlink(missing_ok=True)
            self.counters["txn_rollbacks"] += 1
            return None

        # A file is recoverable at its new version if either the rename
        # already happened (final bytes match the journal) or the staged
        # tmp is intact.
        state: Dict[str, Optional[str]] = {}
        for filename, sha in files.items():
            if _file_sha256(directory / filename) == sha:
                state[filename] = "done"
            elif _file_sha256(directory / (filename + TMP_SUFFIX)) == sha:
                state[filename] = "staged"
            else:
                state[filename] = None

        if all(state.values()):
            logger.info(
                "catalog %s: rolling forward to epoch %s",
                directory, journal.get("epoch"),
            )
            for filename, how in state.items():
                if how == "staged":
                    os.replace(
                        directory / (filename + TMP_SUFFIX),
                        directory / filename,
                    )
            self._discard_tmps(directory)
            _fsync_dir(directory)
            journal_path.unlink(missing_ok=True)
            _fsync_dir(directory)
            self.counters["txn_rollforwards"] += 1
            return None

        # Roll back: some staged version is torn or missing.  Under our
        # own write ordering this only happens *before* the journal was
        # written, i.e. before any rename — the final files are still
        # wholly the old epoch.  Forged states (renames done, tmps torn)
        # degrade gracefully: the graph file is the source of truth and
        # the ordinary load path rebuilds everything derived from it.
        logger.info("catalog %s: discarding unrecoverable txn", directory)
        self._discard_tmps(directory)
        journal_path.unlink(missing_ok=True)
        _fsync_dir(directory)
        self.counters["txn_rollbacks"] += 1
        graph_sha = files.get(GRAPH_FILE)
        if (
            graph_sha is not None
            and _file_sha256(directory / GRAPH_FILE) == graph_sha
        ):
            try:
                return max(1, int(journal.get("epoch") or 1))
            except (TypeError, ValueError):
                return None
        return None

    @staticmethod
    def _discard_tmps(directory: Path) -> None:
        for tmp in directory.glob("*" + TMP_SUFFIX):
            tmp.unlink(missing_ok=True)

    @staticmethod
    def _pending_remove(directory: Path) -> bool:
        """Whether ``directory`` holds a durable remove intent."""
        try:
            journal = json.loads(
                (directory / JOURNAL_FILE).read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return False
        return isinstance(journal, dict) and journal.get("op") == "remove"

    # -- analyze sidecar (EXPLAIN ANALYZE feature corpus) --------------

    def store_analysis(
        self, name: str, record: Dict[str, object]
    ) -> Dict[str, object]:
        """Append one EXPLAIN ANALYZE record to the entry's sidecar."""
        return self.store_analyses(name, [record])

    def store_analyses(
        self, name: str, new_records: List[Dict[str, object]]
    ) -> Dict[str, object]:
        """Append EXPLAIN ANALYZE records in one sidecar rewrite.

        The rewrite is O(full sidecar), so the server's background
        writer batches a burst of analyzed queries into a single call
        per entry rather than paying one rewrite per query.

        ``analyze.json`` is *derived observational data* and deliberately
        lives outside the journaled three-file transaction — losing it
        in a crash loses telemetry, not truth.  The write is atomic
        (tmp + rename) so readers never observe a torn file, but skips
        the fsyncs the graph artifacts pay: this runs on the serving
        hot path for every analyzed query, and an fsync costs more than
        the analyze itself — a power cut may lose the newest records,
        never corrupt the file.  Keeps the newest
        :data:`~repro.obs.explain.ANALYZE_SIDECAR_MAX_RECORDS` records,
        oldest dropped first.  Returns the sidecar as written.
        """
        directory = self._entry_dir(name)
        with self._lock:
            if not (directory / META_FILE).exists():
                raise CatalogError(f"unknown catalog entry {name!r}")
            sidecar = self._read_analysis(directory)
            records = sidecar["records"]
            records.extend(new_records)
            del records[:-ANALYZE_SIDECAR_MAX_RECORDS]
            blob = (json.dumps(sidecar, sort_keys=True) + "\n").encode(
                "utf-8"
            )
            tmp = directory / (ANALYZE_FILE + TMP_SUFFIX)
            tmp.write_bytes(blob)
            os.replace(tmp, directory / ANALYZE_FILE)
            return sidecar

    def load_analysis(self, name: str) -> Dict[str, object]:
        """The entry's ``analyze.json`` sidecar.

        Missing, unreadable, or wrong-schema-version sidecars all yield
        a fresh empty shell — the sidecar is best-effort by design and
        a version bump invalidates old records wholesale.
        """
        directory = self._entry_dir(name)
        with self._lock:
            if not (directory / META_FILE).exists():
                raise CatalogError(f"unknown catalog entry {name!r}")
            return self._read_analysis(directory)

    @staticmethod
    def _read_analysis(directory: Path) -> Dict[str, object]:
        try:
            sidecar = json.loads(
                (directory / ANALYZE_FILE).read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            sidecar = None
        if (
            not isinstance(sidecar, dict)
            or sidecar.get("version") != ANALYZE_SIDECAR_VERSION
            or not isinstance(sidecar.get("records"), list)
        ):
            return {"version": ANALYZE_SIDECAR_VERSION, "records": []}
        return sidecar

    # -- internals -----------------------------------------------------

    def _entry_dir(self, name: str) -> Path:
        if not _NAME_RE.match(name):
            raise CatalogError(
                f"invalid catalog name {name!r} (allowed: letters, digits, "
                "'.', '_', '-'; must not start with a separator)"
            )
        return self.root / name

    def _read_meta(self, directory: Path) -> Optional[Dict[str, object]]:
        try:
            meta = json.loads((directory / META_FILE).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return meta if isinstance(meta, dict) else None

    def _persist_entry(
        self,
        directory: Path,
        graph: Graph,
        graph_text: str,
        artifacts: DataArtifacts,
        epoch: int = 1,
        include_graph: bool = True,
    ) -> None:
        """Persist one entry state as a single journaled transaction.

        ``include_graph=False`` is the rebuild-on-load path: the graph
        file on disk *is* the source being recovered from and must not
        be rewritten.
        """
        blob = dumps_artifacts(artifacts)
        meta = {
            "format_version": CATALOG_FORMAT_VERSION,
            "artifacts_format_version": ARTIFACTS_FORMAT_VERSION,
            "name": directory.name,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "epoch": epoch,
            "graph_checksum": graph_checksum(graph),
            "graph_file_sha256": _sha256(graph_text.encode("utf-8")),
            "artifacts_sha256": _sha256(blob),
        }
        files: Dict[str, bytes] = {}
        if include_graph:
            files[GRAPH_FILE] = graph_text.encode("utf-8")
        files[ARTIFACTS_FILE] = blob
        files[META_FILE] = (
            json.dumps(meta, indent=2, sort_keys=True) + "\n"
        ).encode("utf-8")
        self._txn_commit(directory, files, epoch)
        self._epochs[directory.name] = epoch

    def _load(self, name: str) -> Tuple[Graph, DataArtifacts, bool]:
        """Load an entry from disk, recovering any interrupted
        transaction first and rebuilding artifacts when needed."""
        directory = self._entry_dir(name)
        epoch_hint: Optional[int] = None
        if directory.exists():
            epoch_hint = self._recover(directory)
        try:
            graph_text = (directory / GRAPH_FILE).read_text(encoding="utf-8")
        except OSError:
            raise CatalogError(f"unknown catalog entry {name!r}")
        try:
            graph = loads_graph(graph_text)
        except ValueError as exc:
            raise CatalogError(f"catalog entry {name!r} graph is corrupt: {exc}")

        meta = self._read_meta(directory)
        blob: Optional[bytes] = None
        if (
            meta is not None
            and meta.get("format_version") == CATALOG_FORMAT_VERSION
            # A sidecar from before an artifact-format bump is *stale*,
            # not corrupt: skip the blob entirely and rebuild cleanly
            # (loads_artifacts would reject its version anyway).
            and meta.get("artifacts_format_version") == ARTIFACTS_FORMAT_VERSION
            and meta.get("graph_file_sha256")
            == _sha256(graph_text.encode("utf-8"))
        ):
            try:
                candidate = (directory / ARTIFACTS_FILE).read_bytes()
            except OSError:
                candidate = None
            if (
                candidate is not None
                and meta.get("artifacts_sha256") == _sha256(candidate)
            ):
                blob = candidate
        if blob is not None:
            try:
                artifacts = loads_artifacts(blob, graph)
                self.counters["artifact_loads"] += 1
                try:
                    self._epochs[name] = max(1, int(meta.get("epoch") or 1))
                except (TypeError, ValueError):
                    self._epochs[name] = 1
                return graph, artifacts, False
            except ArtifactsFormatError:
                pass  # fall through to rebuild
        artifacts = DataArtifacts(graph)
        self.counters["artifact_rebuilds"] += 1
        # A rebuild recovers the artifacts, not the entry's history:
        # keep whatever epoch the (possibly corrupt) sidecar still had,
        # unless recovery determined the graph content already belongs
        # to an aborted transaction's target epoch.
        epoch = epoch_hint or 1
        if epoch_hint is None and meta is not None:
            try:
                epoch = max(1, int(meta.get("epoch") or 1))
            except (TypeError, ValueError):
                epoch = 1
        self._persist_entry(
            directory, graph, graph_text, artifacts, epoch=epoch,
            include_graph=False,
        )
        return graph, artifacts, True

    def _install(self, name: str, engine: GuPEngine) -> None:
        self._resident[name] = engine
        self._resident.move_to_end(name)
        while len(self._resident) > self.max_resident:
            self._resident.popitem(last=False)
            self.counters["engine_evictions"] += 1

    def stats(self) -> Dict[str, object]:
        """Counter snapshot plus residency, for the service ``stats`` op."""
        with self._lock:
            out: Dict[str, object] = dict(self.counters)
            out["resident"] = list(self._resident)
            out["entries"] = self.names()
            return out
