"""Per-tenant admission control: rate limits, quotas, weighted fairness.

The server's original admission path is tenant-blind: one greedy client
saturates ``max_inflight + max_pending`` and every other connection is
shed.  This module adds the *per-client admission classes* half of
ROADMAP item 4 (DESIGN.md §13):

* :class:`TokenBucket` — a deterministic token bucket with an
  **injectable clock**, so rate-limit decisions are exactly testable
  (no sleeping, no flakes).  ``try_take`` returns ``(admitted,
  retry_after)``; the hint is the exact time until the next token.
* :class:`TenantSpec` / :class:`TenantTable` — the tenant registry.
  Specs come from a ``--tenants`` JSON file or inline ``--tenant``
  CLI flags; requests name their tenant in a ``"tenant"`` header field
  and legacy clients land on the ``default`` tenant.  Unknown names
  are admitted under a private copy of the default spec, so every
  tenant — configured or not — gets its own bucket, quota accounting,
  and tenant-labeled ``repro_tenant_*`` counters.
* :class:`FairSlots` — a **deficit-round-robin** gate over the matching
  slots, replacing the server's plain semaphore.  Waiters queue *per
  tenant*, tenants are served in weighted round-robin order (weight 2
  drains twice as fast as weight 1), and within one tenant the
  priority order ``high < normal < low`` is preserved.  No tenant can
  monopolize matching slots: a backlog of 50 queued requests from one
  tenant still lets another tenant's next request claim roughly its
  weight-share of freed slots.

Admission pipeline (see ``MatchingServer._op_query``): draining check →
forced-overload fault hook → global priority shedding (unchanged
semantics) → per-tenant token bucket → per-tenant inflight quota →
fair-slot queue.  Every rejection carries a ``retry_after`` hint that
:class:`repro.service.client.RetryPolicy` honors instead of blind
exponential backoff.

Fault hooks (swept by ``tests/test_service_tenancy.py``):
``tenancy.bucket.refill`` fires on every bucket refill,
``tenancy.admit`` on every per-tenant admission decision.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.obs.metrics import CounterGroup
from repro.service.faults import NO_FAULTS, FaultPlan

DEFAULT_TENANT = "default"

#: Priority rank inside one tenant's queue: lower rank drains first.
PRIORITY_RANKS: Dict[str, int] = {"high": 0, "normal": 1, "low": 2}

#: ``shed_*`` reasons a tenant rejection can carry.
SHED_REASONS = ("rate", "quota", "capacity", "draining")


class TenancyError(ValueError):
    """Bad tenant configuration (file, spec string, or field value)."""


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's admission class.

    ``rate`` is tokens (queries) per second, ``None`` = unlimited;
    ``burst`` is the bucket capacity (how many queries may arrive
    back-to-back after an idle period).  ``max_inflight`` caps the
    tenant's concurrently admitted queries (``None`` = no per-tenant
    cap; the global limits still apply).  ``weight`` is the
    deficit-round-robin share of matching slots under contention.
    ``max_workers`` clamps per-request procpool fan-out, so one tenant
    cannot monopolize worker processes either.
    """

    name: str
    rate: Optional[float] = None
    burst: float = 1.0
    max_inflight: Optional[int] = None
    weight: int = 1
    max_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rate is not None and self.rate <= 0:
            raise TenancyError(f"tenant {self.name!r}: rate must be > 0")
        if self.burst < 1:
            raise TenancyError(f"tenant {self.name!r}: burst must be >= 1")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise TenancyError(
                f"tenant {self.name!r}: max_inflight must be >= 1"
            )
        if self.weight < 1:
            raise TenancyError(f"tenant {self.name!r}: weight must be >= 1")
        if self.max_workers is not None and self.max_workers < 1:
            raise TenancyError(
                f"tenant {self.name!r}: max_workers must be >= 1"
            )


class TokenBucket:
    """Deterministic token bucket (``rate`` tokens/s, ``burst`` deep).

    The clock is injectable (monotonic seconds); a fake clock makes
    refill arithmetic exactly reproducible.  ``rate=None`` disables the
    bucket entirely.  The ``tenancy.bucket.refill`` fault hook fires on
    every refill so lifecycle sweeps can kill or stall the decision
    point itself.
    """

    __slots__ = ("rate", "burst", "tokens", "_clock", "_last", "faults")

    def __init__(
        self,
        rate: Optional[float],
        burst: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        faults: FaultPlan = NO_FAULTS,
    ) -> None:
        self.rate = float(rate) if rate is not None else None
        self.burst = max(1.0, float(burst))
        self.tokens = self.burst
        self._clock = clock
        self._last: Optional[float] = None
        self.faults = faults

    def try_take(self, amount: float = 1.0) -> Tuple[bool, float]:
        """Take ``amount`` tokens: ``(True, 0.0)`` or ``(False, wait)``.

        ``wait`` is the exact time until the bucket holds ``amount``
        tokens again — the ``retry_after`` hint the server sends.
        """
        if self.rate is None:
            return True, 0.0
        now = self._clock()
        if self._last is None:
            self._last = now
        self.faults.reach("tenancy.bucket.refill")
        elapsed = max(0.0, now - self._last)
        if elapsed > 0.0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
            self._last = now
        if self.tokens >= amount:
            self.tokens -= amount
            return True, 0.0
        return False, (amount - self.tokens) / self.rate


class TenantState:
    """Live per-tenant accounting: bucket, inflight, counters.

    ``counters`` is a :class:`CounterGroup` so the metrics registry can
    attach it as the ``repro_tenant_*_total{tenant=...}`` families —
    the same storage the ``stats`` op snapshots (reconciliation by
    construction, as everywhere else in this repo).
    """

    __slots__ = ("spec", "bucket", "inflight", "counters")

    def __init__(
        self,
        spec: TenantSpec,
        clock: Callable[[], float],
        faults: FaultPlan,
    ) -> None:
        self.spec = spec
        self.bucket = TokenBucket(
            spec.rate, spec.burst, clock=clock, faults=faults
        )
        self.inflight = 0
        self.counters = CounterGroup({
            "queries": 0,
            "admitted": 0,
            "served": 0,
            **{f"shed_{reason}": 0 for reason in SHED_REASONS},
        })

    def stats(self) -> Dict[str, object]:
        out: Dict[str, object] = dict(self.counters)
        out["inflight"] = self.inflight
        out["weight"] = self.spec.weight
        return out


@dataclass(frozen=True)
class Rejection:
    """One per-tenant admission rejection: why, and when to come back."""

    reason: str  # one of SHED_REASONS
    retry_after: Optional[float]


class TenantTable:
    """The tenant registry + per-tenant admission decisions.

    Single-threaded by design: every method runs on the server's event
    loop (admission is loop-side), so plain ints suffice for inflight
    accounting.  ``on_create`` is called once per newly materialized
    :class:`TenantState` — the server uses it to attach the tenant's
    counter group to the metrics registry.
    """

    def __init__(
        self,
        specs: Union[Mapping[str, TenantSpec], List[TenantSpec], None] = None,
        default_spec: Optional[TenantSpec] = None,
        clock: Callable[[], float] = time.monotonic,
        faults: FaultPlan = NO_FAULTS,
        slot_retry_after: float = 0.05,
        on_create: Optional[Callable[[str, TenantState], None]] = None,
    ) -> None:
        if isinstance(specs, Mapping):
            spec_list = list(specs.values())
        else:
            spec_list = list(specs or [])
        self._clock = clock
        self.faults = faults
        self.slot_retry_after = float(slot_retry_after)
        self.on_create = on_create
        self.default_spec = default_spec or TenantSpec(DEFAULT_TENANT)
        self._specs: Dict[str, TenantSpec] = {
            spec.name: spec for spec in spec_list
        }
        self._specs.setdefault(DEFAULT_TENANT, self.default_spec)
        self.default_spec = self._specs[DEFAULT_TENANT]
        self._states: Dict[str, TenantState] = {}

    # -- resolution ----------------------------------------------------

    def resolve(self, name: Optional[str]) -> TenantState:
        """The live state for ``name`` (``None`` = the default tenant).

        Unknown names materialize a private state under a copy of the
        default spec — each gets its own bucket and counters, so
        unconfigured tenants are still isolated from each other.
        """
        key = name if name else DEFAULT_TENANT
        state = self._states.get(key)
        if state is None:
            spec = self._specs.get(key)
            if spec is None:
                spec = replace(self.default_spec, name=key)
            state = TenantState(spec, self._clock, self.faults)
            self._states[key] = state
            if self.on_create is not None:
                self.on_create(key, state)
        return state

    def known(self) -> List[str]:
        """Configured tenant names (sorted), before any traffic."""
        return sorted(self._specs)

    def states(self) -> Dict[str, TenantState]:
        """Live (traffic-seen) tenant states."""
        return dict(self._states)

    # -- admission -----------------------------------------------------

    def admit(self, state: TenantState) -> Optional[Rejection]:
        """Per-tenant admission: token bucket, then inflight quota.

        Returns ``None`` when admitted, else a :class:`Rejection` whose
        ``retry_after`` is exact for rate limits (time to next token)
        and the configured slot hint for quota rejections.  Does *not*
        bump counters — the server owns counter semantics so global and
        per-tenant accounting stay in one place.
        """
        self.faults.reach("tenancy.admit")
        ok, wait = state.bucket.try_take()
        if not ok:
            return Rejection("rate", wait)
        quota = state.spec.max_inflight
        if quota is not None and state.inflight >= quota:
            return Rejection("quota", self.slot_retry_after)
        return None

    def stats(self) -> Dict[str, Dict[str, object]]:
        return {name: state.stats() for name, state in self._states.items()}


# ----------------------------------------------------------------------
# Configuration parsing (--tenants file / --tenant specs)
# ----------------------------------------------------------------------

_SPEC_FIELDS = {
    "rate": float,
    "burst": float,
    "max_inflight": int,
    "weight": int,
    "max_workers": int,
}


def _spec_from_mapping(name: str, raw: Mapping) -> TenantSpec:
    if not isinstance(raw, Mapping):
        raise TenancyError(f"tenant {name!r}: config must be an object")
    kwargs: Dict[str, object] = {}
    for key, value in raw.items():
        if key not in _SPEC_FIELDS:
            raise TenancyError(
                f"tenant {name!r}: unknown field {key!r} "
                f"(allowed: {sorted(_SPEC_FIELDS)})"
            )
        if value is None:
            continue
        try:
            kwargs[key] = _SPEC_FIELDS[key](value)
        except (TypeError, ValueError):
            raise TenancyError(
                f"tenant {name!r}: field {key!r} must be a number"
            )
    return TenantSpec(name=name, **kwargs)


def tenants_from_json(text: str) -> Dict[str, TenantSpec]:
    """Parse the ``--tenants`` file format into specs.

    Two accepted shapes::

        {"default": {...}, "tenants": {"alice": {...}, "bob": {...}}}
        {"alice": {...}, "bob": {...}}

    The first names the default tenant's class explicitly; in the
    second every top-level key is a tenant (an entry literally named
    ``default`` configures the default class).  Fields per tenant:
    ``rate`` (queries/s), ``burst``, ``max_inflight``, ``weight``,
    ``max_workers`` — all optional.
    """
    try:
        raw = json.loads(text)
    except ValueError as exc:
        raise TenancyError(f"tenants file is not valid JSON: {exc}")
    if not isinstance(raw, Mapping):
        raise TenancyError("tenants file must be a JSON object")
    if "tenants" in raw:
        entries = raw.get("tenants") or {}
        if not isinstance(entries, Mapping):
            raise TenancyError("'tenants' must be an object")
        entries = dict(entries)
        if "default" in raw and raw["default"] is not None:
            entries[DEFAULT_TENANT] = raw["default"]
    else:
        entries = dict(raw)
    specs = {
        str(name): _spec_from_mapping(str(name), cfg)
        for name, cfg in entries.items()
    }
    return specs


def tenants_from_file(path: Union[str, Path]) -> Dict[str, TenantSpec]:
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise TenancyError(f"cannot read tenants file {path!r}: {exc}")
    return tenants_from_json(text)


def tenant_from_spec(spec: str) -> TenantSpec:
    """Parse one inline ``--tenant`` flag: ``name:key=value,key=value``.

    ``repro serve --tenant free:rate=2,weight=1 --tenant paid:weight=4``
    """
    name, _, rest = spec.partition(":")
    name = name.strip()
    if not name:
        raise TenancyError(f"bad tenant spec {spec!r}: empty name")
    raw: Dict[str, object] = {}
    if rest.strip():
        for item in rest.split(","):
            key, sep, value = item.partition("=")
            if not sep:
                raise TenancyError(
                    f"bad tenant spec {spec!r}: {item!r} is not key=value"
                )
            raw[key.strip()] = value.strip()
    return _spec_from_mapping(name, raw)


# ----------------------------------------------------------------------
# Weighted fair slots (deficit round robin)
# ----------------------------------------------------------------------


class FairSlots:
    """An asyncio gate handing ``capacity`` slots out fairly by tenant.

    Replaces the server's ``asyncio.Semaphore``: acquisition order is
    **weighted deficit round robin** across tenants instead of global
    FIFO.  Each tenant owns one queue of waiters ordered by priority
    rank (``high`` before ``normal`` before ``low``) then FIFO; when a
    slot frees, the dispatcher rotates through tenants with waiters,
    granting each ``weight`` serves per rotation — so a tenant with
    weight 2 drains twice as fast as weight 1, and a tenant with a
    thousand queued requests cannot starve one with a single request
    (it waits at most one rotation).

    Single-threaded: all methods run on the event loop.  Cancellation
    safe: a waiter cancelled while queued is skipped at grant time; a
    waiter granted and cancelled in the same tick releases its slot.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = max(1, capacity)
        self._free = self.capacity
        # tenant -> one deque per priority rank, each of (seq, future)
        self._queues: Dict[str, List[Deque[Tuple[int, object]]]] = {}
        self._weights: Dict[str, int] = {}
        self._credits: Dict[str, float] = {}
        self._rotation: Deque[str] = deque()
        self._seq = 0

    # -- introspection -------------------------------------------------

    @property
    def free(self) -> int:
        return self._free

    def pending(self, tenant: Optional[str] = None) -> int:
        """Waiters queued (for one tenant, or overall)."""
        if tenant is not None:
            ranks = self._queues.get(tenant)
            return sum(len(q) for q in ranks) if ranks else 0
        return sum(
            len(q) for ranks in self._queues.values() for q in ranks
        )

    # -- acquisition ---------------------------------------------------

    async def acquire(
        self, tenant: str, weight: int = 1, rank: int = 1
    ) -> None:
        """Claim one slot for ``tenant`` (rank = priority, 0 drains
        first).  Waits in the tenant's DRR queue when none is free."""
        import asyncio

        self._weights[tenant] = max(1, weight)
        if self._free > 0 and self.pending() == 0:
            self._free -= 1
            return
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[None]" = loop.create_future()
        ranks = self._queues.get(tenant)
        if ranks is None:
            ranks = [deque(), deque(), deque()]
            self._queues[tenant] = ranks
        self._seq += 1
        ranks[min(max(rank, 0), 2)].append((self._seq, future))
        if tenant not in self._rotation:
            self._rotation.append(tenant)
        # A free slot with queued waiters (e.g. released while the loop
        # was busy) dispatches now, possibly to this very future.
        self._dispatch()
        try:
            await future
        except asyncio.CancelledError:
            if future.done() and not future.cancelled():
                # Granted and cancelled in the same tick: the slot was
                # already handed to us — give it back.
                self.release()
            else:
                self._discard(tenant, future)
            raise

    def release(self) -> None:
        """Return one slot and hand it to the next DRR waiter, if any."""
        self._free += 1
        self._dispatch()

    # -- internals -----------------------------------------------------

    def _discard(self, tenant: str, future: object) -> None:
        ranks = self._queues.get(tenant)
        if ranks is None:
            return
        for q in ranks:
            try:
                q.remove(next(item for item in q if item[1] is future))
            except StopIteration:
                continue
            break
        if not any(ranks):
            self._forget(tenant)

    def _forget(self, tenant: str) -> None:
        self._queues.pop(tenant, None)
        self._credits.pop(tenant, None)
        try:
            self._rotation.remove(tenant)
        except ValueError:
            pass

    def _dispatch(self) -> None:
        while self._free > 0:
            future = self._pick()
            if future is None:
                return
            if future.cancelled():
                continue
            self._free -= 1
            future.set_result(None)

    def _pick(self):
        """Next waiter under deficit round robin, or ``None``.

        Visiting a tenant with credit < 1 tops it up by its weight and
        rotates on; a visit with credit >= 1 serves one waiter and pays
        1.  Weights are >= 1, so one full rotation always produces a
        servable tenant — the loop is bounded by 2 * len(rotation).
        A tenant whose queue empties is dropped from the rotation and
        its credit reset (standard DRR: credit never accumulates while
        idle).
        """
        for _ in range(2 * len(self._rotation) + 1):
            if not self._rotation:
                return None
            tenant = self._rotation[0]
            ranks = self._queues.get(tenant)
            if ranks is None or not any(ranks):
                self._forget(tenant)
                continue
            credit = self._credits.get(tenant, 0.0)
            if credit < 1.0:
                self._credits[tenant] = credit + self._weights.get(tenant, 1)
                self._rotation.rotate(-1)
                continue
            self._credits[tenant] = credit - 1.0
            for q in ranks:
                if q:
                    _, future = q.popleft()
                    break
            if not any(ranks):
                self._forget(tenant)
            return future
        return None
