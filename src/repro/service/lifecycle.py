"""Server lifecycle: zero-downtime reload and graceful drain.

The other half of ROADMAP item 4 (DESIGN.md §13).  A running
:class:`~repro.service.server.MatchingServer` owns one
:class:`LifecycleManager` that moves it through the states

    serving  →  reloading  →  serving          (``reload`` op / SIGHUP)
    serving  →  draining   →  stopped          (``drain`` op / SIGTERM)

**Reload** picks up whatever another process left under the catalog
root — new entries, new epochs from out-of-band updates or rebuilds,
removed entries — without dropping a single in-flight query or
standing subscription:

1. :meth:`GraphCatalog.reload` scans and loads new-epoch engines *off
   the event loop* (on the server's auxiliary executor, so not even a
   matching slot is consumed), then atomically swaps the resident set.
   Queries admitted before the swap finish on their admitted epoch;
   queries admitted after see the new one.
2. Query caches of every changed entry are dropped (results cached
   against the old epoch would be wrong; "kept" entries keep theirs).
3. Every subscription on a changed entry is **re-attached across the
   epoch boundary with exact diff-replay**: the standing query is
   re-enumerated on the new engine and the subscriber receives one
   delta event ``added = new − old``, ``removed = old − new`` — so its
   replayed set satisfies the PR 5 invariant ``old − removed + added
   == new`` *by construction*, with no lost and no duplicated events.
   Subscriptions on removed entries get a terminal error event.

The whole sequence runs under the server's update lock, so an in-band
``update`` op can never interleave with a reload replay (and an entry
updated in-band is "kept" by the scan — its subscribers were already
notified on the update path, never twice).

**Drain** stops admitting (new queries are shed with reason
``draining`` and a ``retry_after`` hint), waits for in-flight work
bounded by a deadline, and reports whether the server emptied in time;
the ``drain`` op then shuts the server down either way.

Every decision point is a named :class:`FaultPlan` hook
(:func:`lifecycle_points`), so the ``tests/test_service_faults.py``
style sweep can crash or delay at each one; the catalog-side points
(`begin`/`scan`/`build`/`swap`) bracket the resident-set swap and a
crash on either side of it leaves a consistent old-or-new epoch —
the journaled file-level invariant lifted to the serving layer.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Dict, List, Optional, Tuple

from repro.matching.limits import SearchLimits
from repro.matching.result import TerminationStatus
from repro.obs import new_trace_id
from repro.service.catalog import CatalogError
from repro.service.faults import InjectedCrash

SERVING = "serving"
RELOADING = "reloading"
DRAINING = "draining"
STOPPED = "stopped"

logger = logging.getLogger("repro.service.lifecycle")


def lifecycle_points(op: str) -> Tuple[str, ...]:
    """Every named fault hook of one lifecycle operation, in execution
    order — the sweep contract, mirroring ``catalog.txn_points``.  The
    ``reload`` points fire inside :meth:`GraphCatalog.reload` (begin /
    scan / build / swap) and around the server-side replay (replay /
    commit); the ``drain`` points bracket admission stop, the bounded
    wait, the deadline expiry, and the close decision."""
    if op == "reload":
        return (
            "lifecycle.reload.begin",
            "lifecycle.reload.scan",
            "lifecycle.reload.build",
            "lifecycle.reload.swap",
            "lifecycle.reload.replay",
            "lifecycle.reload.commit",
        )
    if op == "drain":
        return (
            "lifecycle.drain.begin",
            "lifecycle.drain.wait",
            "lifecycle.drain.timeout",
            "lifecycle.drain.close",
        )
    raise ValueError(f"unknown lifecycle operation {op!r}")


class LifecycleManager:
    """State machine + reload/drain orchestration for one server.

    A friend class of :class:`MatchingServer`: it reaches into the
    server's update lock, subscription registry, caches, and executors
    on purpose — lifecycle *is* a server concern, split out so the
    state transitions and replay proof live in one reviewable place.
    """

    def __init__(self, server) -> None:
        self.server = server
        self.state = SERVING
        self.reloads = 0
        self.drains = 0

    async def _afault(self, point: str) -> None:
        """Async-side fault hook: crash raises, delay sleeps on the loop."""
        rule = self.server.faults.consume(point)
        if rule is None:
            return
        if rule.action == "crash":
            raise InjectedCrash(point)
        if rule.action == "delay":
            await asyncio.sleep(rule.seconds)

    # -- reload --------------------------------------------------------

    async def reload(self) -> Tuple[Dict[str, Dict[str, object]], int]:
        """Zero-downtime catalog reload; returns ``(report, replayed)``.

        ``report`` is :meth:`GraphCatalog.reload`'s per-entry action
        map; ``replayed`` counts subscription delta events emitted by
        the epoch-boundary re-attach.  Runs under the server's update
        lock.  An injected crash propagates (the server's ``reload`` op
        turns it into an error reply); the state flag always returns to
        its pre-reload value.
        """
        server = self.server
        if self.state == STOPPED:
            raise RuntimeError("server is stopped")
        assert server._update_lock is not None, "start() first"
        # One trace id per reload: the reload event and every replayed
        # subscription delta carry it, so an operator can attribute a
        # surprise diff to the reload that caused it.
        trace = new_trace_id()
        loop = asyncio.get_running_loop()
        async with server._update_lock:
            prev = self.state
            self.state = RELOADING
            try:
                # Scan + load off the event loop, on the auxiliary
                # executor: reload must not consume a matching slot,
                # or a saturated server could never be reloaded.
                report = await loop.run_in_executor(
                    server._aux_executor,
                    lambda: server.catalog.reload(faults=server.faults),
                )
                for name, info in report.items():
                    # Cached results belong to the old epoch.  "kept"
                    # entries normally keep theirs — unless the cache's
                    # recorded epoch trails the entry's, which happens
                    # when a previous reload crashed between the catalog
                    # swap and this very invalidation step.
                    drop = info["action"] != "kept"
                    if not drop:
                        with server._counters_lock:
                            stamp = server._cache_epochs.get(name)
                        drop = stamp is not None and stamp != info["epoch"]
                    if drop:
                        with server._counters_lock:
                            server._caches.pop(name, None)
                            server._cache_epochs.pop(name, None)
                replayed = await self._replay_subscriptions(
                    report, trace=trace
                )
                await self._afault("lifecycle.reload.replay")
            finally:
                if self.state == RELOADING:
                    self.state = prev
            self.reloads += 1
            await self._afault("lifecycle.reload.commit")
        server.obs.emit(
            "reload",
            trace=trace,
            entries={name: info["action"] for name, info in report.items()},
            epochs={
                name: info.get("epoch") for name, info in report.items()
            },
            replayed=replayed,
        )
        logger.info(
            "reload complete: %s (replayed %d subscription diffs)",
            {name: info["action"] for name, info in report.items()},
            replayed,
        )
        return report, replayed

    async def _replay_subscriptions(
        self, report: Dict[str, Dict[str, object]], trace=None
    ) -> int:
        """Re-attach standing subscriptions across the epoch boundary.

        For each changed entry, every subscription's query is re-run on
        the new engine and the subscriber gets exactly one delta event
        with the set difference — ``old − removed + added == new`` by
        construction.  Unchanged entries emit nothing (their sets are
        already exact); removed entries' subscribers get an error event
        and are dropped.  Caller holds the update lock.
        """
        server = self.server
        loop = asyncio.get_running_loop()
        replayed = 0
        for name, info in sorted(report.items()):
            action = info["action"]
            with server._counters_lock:
                subs = list(server._subs.get(name, {}).values())
            if not subs:
                continue
            if action == "removed":
                for sub in subs:
                    server._bump("subscribers_dropped")
                    server._drop_subscription(sub)
                    try:
                        await server._send(
                            sub.writer,
                            {"event": "error", "subscription": sub.id,
                             "error": f"catalog entry {name!r} removed"},
                        )
                    except (ConnectionResetError, BrokenPipeError, OSError):
                        pass
                continue
            epoch = info["epoch"]
            if action == "lazy":
                # The engine was LRU-evicted but subscriptions stand;
                # disk may hold a newer epoch than they last saw.
                try:
                    epoch = await loop.run_in_executor(
                        server._aux_executor,
                        lambda n=name: server.catalog.info(n).get("epoch"),
                    )
                except CatalogError:
                    continue
            # Replay any subscription whose last-reconciled epoch trails
            # the entry's — on a plain reload that is exactly the
            # "reloaded" entries, but it also catches subscriptions left
            # behind by a crash at the swap hook (the retry reports
            # "kept") and changes that landed while an entry was
            # non-resident.
            stale = [sub for sub in subs if sub.epoch != epoch]
            if not stale:
                continue  # standing sets are already exact
            engine = await loop.run_in_executor(
                server._aux_executor, server.catalog.engine, name
            )
            for sub in stale:
                try:
                    result = await loop.run_in_executor(
                        server._aux_executor,
                        lambda q=sub.query: engine.match(
                            q, limits=SearchLimits()
                        ),
                    )
                    if result.status is not TerminationStatus.COMPLETE:
                        raise RuntimeError(
                            "re-enumeration incomplete "
                            f"({result.status.value})"
                        )
                except Exception as exc:  # noqa: BLE001 - drop, keep serving
                    server._bump("subscribers_dropped")
                    server._drop_subscription(sub)
                    try:
                        await server._send(
                            sub.writer,
                            {"event": "error", "subscription": sub.id,
                             "error": f"reload replay failed: {exc!r}"},
                        )
                    except (ConnectionResetError, BrokenPipeError, OSError):
                        pass
                    continue
                new = {tuple(e) for e in result.embeddings}
                added = sorted(new - sub.matches)
                removed = sorted(sub.matches - new)
                sub.matches = new
                sub.epoch = epoch
                if not added and not removed:
                    continue  # epoch moved but this query's set did not
                if server._enqueue_event(
                    sub,
                    {
                        "event": "delta",
                        "subscription": sub.id,
                        "data": name,
                        "epoch": epoch,
                        "trace": trace,
                        "added": [list(e) for e in added],
                        "removed": [list(e) for e in removed],
                        "reload": True,
                    },
                ):
                    replayed += 1
        return replayed

    # -- drain ---------------------------------------------------------

    async def drain(self, timeout: float) -> Tuple[bool, int]:
        """Stop admitting, wait (bounded) for in-flight work to finish.

        Returns ``(drained, active)``: whether the server emptied
        before the deadline, and how many queries were still running
        at the end.  The state stays ``draining`` while waiting (new
        queries are shed with reason ``"draining"``; ``healthz`` /
        ``stats`` / ``GET /metrics`` keep answering) and becomes
        ``stopped`` at the close decision either way — the caller shuts
        the server down and reports the truth to the operator.
        """
        server = self.server
        if self.state == STOPPED:
            return True, 0
        await self._afault("lifecycle.drain.begin")
        self.state = DRAINING
        loop = asyncio.get_running_loop()
        deadline = loop.time() + max(0.0, timeout)
        await self._afault("lifecycle.drain.wait")
        while server._active > 0 and loop.time() < deadline:
            await asyncio.sleep(0.005)
        active = server._active
        drained = active == 0
        if not drained:
            await self._afault("lifecycle.drain.timeout")
            logger.warning(
                "drain deadline (%ss) expired with %d queries in flight",
                timeout, active,
            )
        await self._afault("lifecycle.drain.close")
        self.state = STOPPED
        self.drains += 1
        server.obs.emit("drain", drained=drained, active=active)
        return drained, active
