"""Blocking JSON-lines client for the matching server.

Small by design: one socket, synchronous requests, used by the
``repro query`` CLI command, the tests, and the throughput benchmark.
For the wire protocol see :mod:`repro.service.server`.
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.graph.graph import Graph
from repro.graph.io import saves_graph
from repro.service.server import DEFAULT_PORT


class ServiceError(Exception):
    """The server reported an error or the connection broke."""


@dataclass
class QueryReply:
    """One served query: counts, status, cache disposition, embeddings."""

    num_embeddings: int
    status: str
    cache: str
    elapsed: float
    recursions: int
    embeddings: List[Tuple[int, ...]] = field(default_factory=list)


@dataclass
class SubscribeReply:
    """An accepted subscription: id, epoch, and the current matches."""

    subscription: int
    num_embeddings: int
    epoch: Optional[int]
    embeddings: List[Tuple[int, ...]] = field(default_factory=list)


@dataclass
class UpdateReply:
    """One applied delta: new entry info plus invalidation accounting."""

    entry: Dict
    summary: Dict
    qcache_kept: int
    qcache_evicted: int
    subscribers_notified: int

    @property
    def epoch(self) -> Optional[int]:
        return self.entry.get("epoch")


class ServiceClient:
    """Synchronous client; usable as a context manager."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 300.0,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- transport -----------------------------------------------------

    def _send(self, payload: Dict) -> None:
        self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
        self._file.flush()

    def _recv(self) -> Dict:
        line = self._file.readline()
        if not line:
            raise ServiceError("connection closed by server")
        try:
            reply = json.loads(line)
        except ValueError as exc:
            raise ServiceError(f"malformed server reply: {exc}")
        if not isinstance(reply, dict):
            raise ServiceError("malformed server reply: not an object")
        return reply

    def request(self, payload: Dict) -> Dict:
        """One request → one reply line (raises on ``ok: false``)."""
        self._send(payload)
        reply = self._recv()
        if not reply.get("ok", False):
            raise ServiceError(reply.get("error", "unknown server error"))
        return reply

    # -- operations ----------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def stats(self) -> Dict:
        return self.request({"op": "stats"})

    def catalog_list(self) -> List[Dict]:
        return list(self.request({"op": "catalog_list"})["entries"])

    def catalog_add(
        self, name: str, graph: Union[Graph, str], overwrite: bool = False
    ) -> Dict:
        text = saves_graph(graph) if isinstance(graph, Graph) else str(graph)
        reply = self.request(
            {"op": "catalog_add", "name": name, "graph": text,
             "overwrite": overwrite}
        )
        return reply["entry"]

    def shutdown(self) -> None:
        self.request({"op": "shutdown"})

    def update(self, name: str, delta) -> UpdateReply:
        """Apply a delta to the catalog entry ``name`` on the server.

        ``delta`` is a :class:`repro.dynamic.delta.GraphDelta` or an
        already-encoded payload dict.
        """
        from repro.dynamic.delta import GraphDelta, delta_to_payload

        payload = (
            delta_to_payload(delta) if isinstance(delta, GraphDelta)
            else dict(delta)
        )
        reply = self.request({"op": "update", "name": name, "delta": payload})
        return UpdateReply(
            entry=dict(reply.get("entry", {})),
            summary=dict(reply.get("summary", {})),
            qcache_kept=int(reply.get("qcache_kept", 0)),
            qcache_evicted=int(reply.get("qcache_evicted", 0)),
            subscribers_notified=int(reply.get("subscribers_notified", 0)),
        )

    def subscribe(self, graph: Union[Graph, str], data: str) -> SubscribeReply:
        """Register a standing query on catalog entry ``data``.

        Returns the current (complete) embedding set; afterwards every
        server-side ``update`` of that graph pushes one event line per
        subscription, read with :meth:`next_event`.  Use a dedicated
        client/connection for subscriptions — events interleave with any
        reply stream on the same socket.
        """
        text = saves_graph(graph) if isinstance(graph, Graph) else str(graph)
        header = self.request(
            {"op": "subscribe", "data": data, "graph": text}
        )
        embeddings: List[Tuple[int, ...]] = []
        for _ in range(int(header.get("chunks", 0))):
            message = self._recv()
            if "chunk" not in message:
                raise ServiceError("missing chunk in streamed response")
            embeddings.extend(tuple(e) for e in message["chunk"])
        trailer = self._recv()
        if not trailer.get("end"):
            raise ServiceError("missing end-of-stream marker")
        epoch = header.get("epoch")
        return SubscribeReply(
            subscription=int(header["subscription"]),
            num_embeddings=int(header["num_embeddings"]),
            epoch=int(epoch) if epoch is not None else None,
            embeddings=embeddings,
        )

    def next_event(self, timeout: Optional[float] = None) -> Dict:
        """Block until the server pushes the next event line.

        ``timeout`` temporarily overrides the socket timeout.  The
        returned dict carries ``event`` (``"delta"`` or ``"error"``)
        plus the event payload; embedding lists are tuple-ized.
        """
        previous = self._sock.gettimeout()
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            event = self._recv()
        finally:
            if timeout is not None:
                self._sock.settimeout(previous)
        if "event" not in event:
            raise ServiceError(f"expected an event line, got {event!r}")
        for key in ("added", "removed"):
            if key in event:
                event[key] = [tuple(e) for e in event[key]]
        return event

    def query(
        self,
        graph: Union[Graph, str],
        data: str,
        limit: Optional[int] = None,
        time_limit: Optional[float] = None,
        recursion_limit: Optional[int] = None,
        workers: int = 1,
        count_only: bool = False,
        cache: bool = True,
        chunk_size: Optional[int] = None,
    ) -> QueryReply:
        """Match ``graph`` (a :class:`Graph` or ``.graph`` text) against
        the catalog entry ``data``; collects the streamed chunks."""
        text = saves_graph(graph) if isinstance(graph, Graph) else str(graph)
        payload: Dict = {"op": "query", "data": data, "graph": text}
        if limit is not None:
            payload["limit"] = limit
        if time_limit is not None:
            payload["time_limit"] = time_limit
        if recursion_limit is not None:
            payload["recursion_limit"] = recursion_limit
        if workers != 1:
            payload["workers"] = workers
        if count_only:
            payload["count_only"] = True
        if not cache:
            payload["cache"] = False
        if chunk_size is not None:
            payload["chunk_size"] = chunk_size
        header = self.request(payload)
        embeddings: List[Tuple[int, ...]] = []
        for _ in range(int(header.get("chunks", 0))):
            message = self._recv()
            if "chunk" not in message:
                raise ServiceError("missing chunk in streamed response")
            embeddings.extend(tuple(e) for e in message["chunk"])
        trailer = self._recv()
        if not trailer.get("end"):
            raise ServiceError("missing end-of-stream marker")
        return QueryReply(
            num_embeddings=int(header["num_embeddings"]),
            status=str(header["status"]),
            cache=str(header.get("cache", "")),
            elapsed=float(header.get("elapsed", 0.0)),
            recursions=int(header.get("recursions", 0)),
            embeddings=embeddings,
        )
