"""Blocking JSON-lines client for the matching server.

Small by design: one socket, synchronous requests, used by the
``repro query`` CLI command, the tests, and the throughput benchmark.
For the wire protocol see :mod:`repro.service.server`.

Resilience (DESIGN.md §10)
--------------------------
Pass a :class:`RetryPolicy` to make the **idempotent** operations
(``ping``/``healthz``/``stats``/``catalog_list``/``query``/
``subscribe``) survive transient failures: a dropped or refused
connection (:class:`ServiceUnavailable`) triggers a reconnect, a shed
request (:class:`ServiceOverloaded`) a plain re-send, both after an
exponential backoff with jitter.  When the rejection carried a server
``retry_after`` hint (tenant rate limits, quotas, capacity, draining)
the hint replaces the exponential schedule for that attempt — jittered
and still capped by the ``deadline=`` budget.  Mutating operations
(``catalog_add``, ``update``, ``drain``, ``shutdown``) are never
retried — the caller must decide whether re-applying is safe.

``query(..., deadline=...)`` propagates a wall-clock budget end to end:
the remaining budget is re-computed per attempt and sent as the
server-side ``time_limit`` (which becomes a ``SearchLimits`` bound), so
a retried query can never overrun the caller's deadline by stacking
full-length attempts.
"""

from __future__ import annotations

import json
import random
import socket
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, TypeVar, Union

from repro.graph.graph import Graph
from repro.graph.io import saves_graph
from repro.obs.log import StructuredLog, new_trace_id, trace_context
from repro.obs.spans import span
from repro.service.server import DEFAULT_PORT

T = TypeVar("T")


class ServiceError(Exception):
    """The server reported an error or the connection broke."""


class ServiceUnavailable(ServiceError):
    """Transport-level failure: connection refused, reset, or closed.

    Retryable — the request may never have reached the server, and for
    idempotent operations re-sending is always safe.
    """


class ServiceOverloaded(ServiceError):
    """The server shed this request (``overloaded: true`` in the reply).

    Retryable after backoff — by design the server rejects instantly
    instead of queueing, so the client owns the waiting.  When the
    rejection carried a ``retry_after`` hint (capacity sheds, tenant
    rate limits and quotas, draining), it is preserved here and
    :class:`RetryPolicy` waits exactly that long (plus jitter) instead
    of a blind exponential guess; ``reason`` preserves the server's
    shed reason (``capacity``/``rate``/``quota``/``draining``).
    """

    def __init__(
        self,
        message: str,
        retry_after: Optional[float] = None,
        reason: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.reason = reason


@dataclass
class RetryPolicy:
    """Exponential backoff with jitter for idempotent operations.

    Attempt ``i`` (0-based) failing sleeps
    ``min(base_delay * multiplier**i, max_delay)`` scaled by a random
    factor in ``[1, 1 + jitter]``; after ``attempts`` total attempts the
    last error propagates.  ``sleep`` and ``rng`` are injectable so
    tests can record the exact schedule instead of actually waiting.
    """

    attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    sleep: Callable[[float], None] = time.sleep
    rng: random.Random = field(default_factory=random.Random)

    def backoff(self, attempt: int) -> float:
        delay = min(
            self.base_delay * self.multiplier ** attempt, self.max_delay
        )
        if self.jitter:
            delay *= 1.0 + self.jitter * self.rng.random()
        return delay

    def delay_for(
        self, attempt: int, retry_after: Optional[float] = None
    ) -> float:
        """The wait before the next attempt.

        With a server ``retry_after`` hint, wait exactly that long
        (jittered, capped by ``max_delay``) — the server knows when a
        token or slot frees, so guessing exponentially would either
        hammer it early or waste the tail.  Without a hint, fall back
        to :meth:`backoff`.
        """
        if retry_after is None:
            return self.backoff(attempt)
        delay = min(max(0.0, retry_after), self.max_delay)
        if self.jitter:
            delay *= 1.0 + self.jitter * self.rng.random()
        return delay


@dataclass
class QueryReply:
    """One served query: counts, status, cache disposition, embeddings.

    ``queue_seconds`` (admission-queue wait) is reported separately from
    ``server_seconds`` (total server-side handling); ``trace`` is the
    request's trace id — the one its structured log lines share across
    client, server, and pool workers; ``profile`` is the sampling-
    profiler summary when the query ran with ``profile=``; ``explain``
    is the EXPLAIN/ANALYZE report when the query ran with ``explain=``.
    """

    num_embeddings: int
    status: str
    cache: str
    elapsed: float
    recursions: int
    embeddings: List[Tuple[int, ...]] = field(default_factory=list)
    queue_seconds: float = 0.0
    server_seconds: float = 0.0
    trace: Optional[str] = None
    profile: Optional[Dict] = None
    explain: Optional[Dict] = None


@dataclass
class SubscribeReply:
    """An accepted subscription: id, epoch, and the current matches."""

    subscription: int
    num_embeddings: int
    epoch: Optional[int]
    embeddings: List[Tuple[int, ...]] = field(default_factory=list)


@dataclass
class UpdateReply:
    """One applied delta: new entry info plus invalidation accounting."""

    entry: Dict
    summary: Dict
    qcache_kept: int
    qcache_evicted: int
    subscribers_notified: int

    @property
    def epoch(self) -> Optional[int]:
        return self.entry.get("epoch")


class ServiceClient:
    """Synchronous client; usable as a context manager."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 300.0,
        retry: Optional[RetryPolicy] = None,
        log: Optional[StructuredLog] = None,
        tenant: Optional[str] = None,
    ) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self.retry = retry
        self.log = log
        # Stamped on every query/subscribe so the server applies this
        # tenant's admission class; None = the server's default tenant.
        self.tenant = tenant
        self.counters = {"retries": 0, "reconnects": 0}
        self._connect()

    def _emit(self, event: str, **fields) -> None:
        if self.log is not None:
            self.log.emit(event, **fields)

    def _connect(self) -> None:
        try:
            self._sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
        except OSError as exc:
            raise ServiceUnavailable(f"cannot connect: {exc}") from exc
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        finally:
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- transport -----------------------------------------------------

    def _send(self, payload: Dict) -> None:
        try:
            self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
            self._file.flush()
        except OSError as exc:
            raise ServiceUnavailable(f"connection broke: {exc}") from exc

    def _recv(self) -> Dict:
        try:
            line = self._file.readline()
        except OSError as exc:
            raise ServiceUnavailable(f"connection broke: {exc}") from exc
        if not line:
            raise ServiceUnavailable("connection closed by server")
        try:
            reply = json.loads(line)
        except ValueError as exc:
            raise ServiceError(f"malformed server reply: {exc}")
        if not isinstance(reply, dict):
            raise ServiceError("malformed server reply: not an object")
        return reply

    def request(self, payload: Dict) -> Dict:
        """One request → one reply line (raises on ``ok: false``)."""
        self._send(payload)
        reply = self._recv()
        if not reply.get("ok", False):
            message = reply.get("error", "unknown server error")
            if reply.get("overloaded"):
                hint = reply.get("retry_after")
                if (
                    isinstance(hint, bool)
                    or not isinstance(hint, (int, float))
                    or hint < 0
                ):
                    hint = None
                raise ServiceOverloaded(
                    message,
                    retry_after=float(hint) if hint is not None else None,
                    reason=reply.get("reason"),
                )
            raise ServiceError(message)
        return reply

    def _with_retry(
        self,
        op: Callable[[], T],
        deadline_at: Optional[float] = None,
    ) -> T:
        """Run an **idempotent** operation under the retry policy.

        Transport failures reconnect before the next attempt (the old
        socket may hold half a streamed reply); overload rejections
        re-send on the live connection.  A retry never starts past
        ``deadline_at`` (monotonic) — the current error propagates.
        """
        attempt = 0
        while True:
            try:
                if self._file.closed:
                    self.counters["reconnects"] += 1
                    self._connect()
                return op()
            except (ServiceUnavailable, ServiceOverloaded) as exc:
                retry = self.retry
                if retry is None or attempt >= retry.attempts - 1:
                    raise
                delay = retry.delay_for(
                    attempt, getattr(exc, "retry_after", None)
                )
                if (
                    deadline_at is not None
                    and time.monotonic() + delay >= deadline_at
                ):
                    raise
                if isinstance(exc, ServiceUnavailable):
                    # The dead socket may hold half a streamed reply;
                    # drop it and reconnect at the top of the loop.
                    self.close()
                self.counters["retries"] += 1
                retry.sleep(delay)
                attempt += 1

    # -- operations ----------------------------------------------------

    def ping(self) -> bool:
        return bool(
            self._with_retry(lambda: self.request({"op": "ping"})).get("pong")
        )

    def healthz(self) -> Dict:
        """The server's cheap health probe (status, load, epochs, pool)."""
        return self._with_retry(lambda: self.request({"op": "healthz"}))

    def stats(self) -> Dict:
        return self._with_retry(lambda: self.request({"op": "stats"}))

    def metrics(self) -> str:
        """The server's Prometheus text exposition (``metrics`` op)."""
        return str(
            self._with_retry(lambda: self.request({"op": "metrics"}))[
                "metrics"
            ]
        )

    def catalog_list(self) -> List[Dict]:
        return list(
            self._with_retry(
                lambda: self.request({"op": "catalog_list"})
            )["entries"]
        )

    def catalog_add(
        self, name: str, graph: Union[Graph, str], overwrite: bool = False
    ) -> Dict:
        text = saves_graph(graph) if isinstance(graph, Graph) else str(graph)
        reply = self.request(
            {"op": "catalog_add", "name": name, "graph": text,
             "overwrite": overwrite}
        )
        return reply["entry"]

    def shutdown(self) -> None:
        self.request({"op": "shutdown"})

    def reload(self) -> Dict:
        """Zero-downtime catalog reload (``reload`` op).

        Returns the server reply: ``report`` (per-entry action map),
        ``replayed`` (subscription diffs emitted), ``status``.
        Idempotent — a reload that finds nothing changed is a no-op —
        so it retries under the policy like the other reads.
        """
        return self._with_retry(lambda: self.request({"op": "reload"}))

    def drain(self, timeout: Optional[float] = None) -> Dict:
        """Gracefully drain and stop the server (``drain`` op).

        Returns the reply: ``drained`` (whether in-flight work finished
        before the deadline) and ``active`` (queries still running when
        it expired).  A state change, so — like ``shutdown`` — it is
        never retried.
        """
        payload: Dict = {"op": "drain"}
        if timeout is not None:
            payload["timeout"] = timeout
        return self.request(payload)

    def update(self, name: str, delta) -> UpdateReply:
        """Apply a delta to the catalog entry ``name`` on the server.

        ``delta`` is a :class:`repro.dynamic.delta.GraphDelta` or an
        already-encoded payload dict.
        """
        from repro.dynamic.delta import GraphDelta, delta_to_payload

        payload = (
            delta_to_payload(delta) if isinstance(delta, GraphDelta)
            else dict(delta)
        )
        reply = self.request({"op": "update", "name": name, "delta": payload})
        return UpdateReply(
            entry=dict(reply.get("entry", {})),
            summary=dict(reply.get("summary", {})),
            qcache_kept=int(reply.get("qcache_kept", 0)),
            qcache_evicted=int(reply.get("qcache_evicted", 0)),
            subscribers_notified=int(reply.get("subscribers_notified", 0)),
        )

    def subscribe(self, graph: Union[Graph, str], data: str) -> SubscribeReply:
        """Register a standing query on catalog entry ``data``.

        Returns the current (complete) embedding set; afterwards every
        server-side ``update`` of that graph pushes one event line per
        subscription, read with :meth:`next_event`.  Use a dedicated
        client/connection for subscriptions — events interleave with any
        reply stream on the same socket.
        """
        text = saves_graph(graph) if isinstance(graph, Graph) else str(graph)

        def attempt() -> SubscribeReply:
            # Idempotent re-attach: each attempt registers a *fresh*
            # subscription and snapshots the current epoch, so a retry
            # after a torn stream never resumes a stale one.
            sub_payload: Dict = {"op": "subscribe", "data": data, "graph": text}
            if self.tenant is not None:
                sub_payload["tenant"] = self.tenant
            header = self.request(sub_payload)
            embeddings: List[Tuple[int, ...]] = []
            for _ in range(int(header.get("chunks", 0))):
                message = self._recv()
                if "chunk" not in message:
                    raise ServiceError("missing chunk in streamed response")
                embeddings.extend(tuple(e) for e in message["chunk"])
            trailer = self._recv()
            if not trailer.get("end"):
                raise ServiceError("missing end-of-stream marker")
            epoch = header.get("epoch")
            return SubscribeReply(
                subscription=int(header["subscription"]),
                num_embeddings=int(header["num_embeddings"]),
                epoch=int(epoch) if epoch is not None else None,
                embeddings=embeddings,
            )

        return self._with_retry(attempt)

    def next_event(self, timeout: Optional[float] = None) -> Dict:
        """Block until the server pushes the next event line.

        ``timeout`` temporarily overrides the socket timeout.  The
        returned dict carries ``event`` (``"delta"`` or ``"error"``)
        plus the event payload; embedding lists are tuple-ized.
        """
        previous = self._sock.gettimeout()
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            event = self._recv()
        finally:
            if timeout is not None:
                self._sock.settimeout(previous)
        if "event" not in event:
            raise ServiceError(f"expected an event line, got {event!r}")
        for key in ("added", "removed"):
            if key in event:
                event[key] = [tuple(e) for e in event[key]]
        return event

    def query(
        self,
        graph: Union[Graph, str],
        data: str,
        limit: Optional[int] = None,
        time_limit: Optional[float] = None,
        recursion_limit: Optional[int] = None,
        workers: int = 1,
        count_only: bool = False,
        cache: bool = True,
        chunk_size: Optional[int] = None,
        priority: Optional[str] = None,
        deadline: Optional[float] = None,
        profile: Union[bool, int] = False,
        explain: Optional[str] = None,
    ) -> QueryReply:
        """Match ``graph`` (a :class:`Graph` or ``.graph`` text) against
        the catalog entry ``data``; collects the streamed chunks.

        ``priority`` (``"high"``/``"normal"``/``"low"``) selects the
        server's load-shedding class.  ``deadline`` is a wall-clock
        budget in seconds for the *whole call including retries*: every
        attempt sends the remaining budget as the server-side
        ``time_limit`` (tightened against an explicit ``time_limit``),
        and no retry starts once the budget is spent.  ``profile``
        (``True`` or a sampling stride) attaches the server's search
        profiler summary to the reply.  ``explain`` (``"plan"`` or
        ``"analyze"``) attaches the server's EXPLAIN/ANALYZE report —
        ``"plan"`` replies with zero embeddings (the plan only),
        ``"analyze"`` runs the real search cache-bypassed.

        One trace id is generated per *call* and sent with every
        attempt, so a retried query's client attempts, server handling,
        and pool worker executions all log under the same id.  Each
        attempt additionally opens a ``client.attempt`` span and sends
        its id, which the server's request span adopts as parent — the
        exported span tree covers the full round trip.
        """
        text = saves_graph(graph) if isinstance(graph, Graph) else str(graph)
        trace = new_trace_id()
        payload: Dict = {
            "op": "query", "data": data, "graph": text, "trace": trace,
        }
        if self.tenant is not None:
            payload["tenant"] = self.tenant
        if profile:
            payload["profile"] = profile
        if explain is not None:
            payload["explain"] = explain
        if limit is not None:
            payload["limit"] = limit
        if recursion_limit is not None:
            payload["recursion_limit"] = recursion_limit
        if workers != 1:
            payload["workers"] = workers
        if count_only:
            payload["count_only"] = True
        if not cache:
            payload["cache"] = False
        if chunk_size is not None:
            payload["chunk_size"] = chunk_size
        if priority is not None:
            payload["priority"] = priority
        deadline_at = (
            time.monotonic() + deadline if deadline is not None else None
        )

        attempts = [0]

        def attempt() -> QueryReply:
            attempts[0] += 1
            self._emit(
                "client.attempt", trace=trace, attempt=attempts[0], data=data
            )
            budget = time_limit
            if deadline_at is not None:
                remaining = deadline_at - time.monotonic()
                if remaining <= 0:
                    raise ServiceError("deadline exceeded before send")
                budget = (
                    remaining if budget is None else min(budget, remaining)
                )
            if budget is not None:
                payload["time_limit"] = budget
            # The attempt span brackets send → last streamed chunk; its
            # id travels in the payload so the server parents under it —
            # but only when this client has a log to emit the span to:
            # advertising a parent that is never written would leave the
            # server-side tree rootless with an unresolved parent.
            with trace_context(trace, self.log), \
                    span("client.attempt", attempt=attempts[0]) as att:
                if self.log is not None:
                    payload["span"] = att.id
                header = self.request(payload)
                embeddings: List[Tuple[int, ...]] = []
                for _ in range(int(header.get("chunks", 0))):
                    message = self._recv()
                    if "chunk" not in message:
                        raise ServiceError(
                            "missing chunk in streamed response"
                        )
                    embeddings.extend(tuple(e) for e in message["chunk"])
                trailer = self._recv()
                if not trailer.get("end"):
                    raise ServiceError("missing end-of-stream marker")
            return QueryReply(
                num_embeddings=int(header["num_embeddings"]),
                status=str(header["status"]),
                cache=str(header.get("cache", "")),
                elapsed=float(header.get("elapsed", 0.0)),
                recursions=int(header.get("recursions", 0)),
                embeddings=embeddings,
                queue_seconds=float(header.get("queue_seconds", 0.0)),
                server_seconds=float(header.get("server_seconds", 0.0)),
                trace=header.get("trace", trace),
                profile=header.get("profile"),
                explain=header.get("explain"),
            )

        return self._with_retry(attempt, deadline_at=deadline_at)
