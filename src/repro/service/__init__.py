"""Long-running matching service on top of the GuP engine.

The library's pipeline (filter → GCS → guarded backtracking) factors
into per-*data-graph* state that is identical for every query and
per-*query* work that is highly repetitive across a real workload.
This package exploits both:

* :mod:`repro.service.catalog` — a persistent, versioned on-disk store
  of named data graphs plus their precomputed
  :class:`~repro.filtering.artifacts.DataArtifacts`, with an in-memory
  LRU of warm :class:`~repro.core.engine.GuPEngine` instances;
* :mod:`repro.service.qcache` — query canonicalization (isomorphic
  queries share one cache slot) and an LRU result cache with exact
  semantics under differing ``max_embeddings`` caps;
* :mod:`repro.service.server` — an asyncio JSON-lines TCP server with
  admission control, per-request :class:`~repro.matching.limits.SearchLimits`,
  chunked streaming of large embedding sets, and procpool dispatch for
  heavy requests;
* :mod:`repro.service.client` — a small blocking client (used by the
  ``repro query`` CLI command and the tests) with opt-in retry/backoff
  and end-to-end deadlines;
* :mod:`repro.service.faults` — the deterministic fault-injection
  plans threaded through catalog, server, and procpool;
* :mod:`repro.service.tenancy` — per-tenant admission classes: token
  buckets, inflight quotas, and weighted deficit-round-robin sharing
  of the matching slots;
* :mod:`repro.service.lifecycle` — zero-downtime catalog reload and
  graceful drain with exact subscription diff-replay across epochs.

See DESIGN.md §7 for the architecture, §10 for the failure model,
§13 for multi-tenancy & zero-downtime operations, and README.md
("Serving", "Fault tolerance", "Multi-tenancy") for a quickstart.
"""

from repro.service.catalog import CatalogError, GraphCatalog
from repro.service.client import (
    RetryPolicy,
    ServiceClient,
    ServiceError,
    ServiceOverloaded,
    ServiceUnavailable,
)
from repro.service.faults import FaultPlan, FaultRule, InjectedCrash
from repro.service.lifecycle import LifecycleManager, lifecycle_points
from repro.service.qcache import QueryCache, canonical_form
from repro.service.server import MatchingServer, ServerThread
from repro.service.tenancy import (
    FairSlots,
    TenancyError,
    TenantSpec,
    TenantTable,
    TokenBucket,
    tenant_from_spec,
    tenants_from_file,
    tenants_from_json,
)

__all__ = [
    "CatalogError",
    "FairSlots",
    "FaultPlan",
    "FaultRule",
    "GraphCatalog",
    "InjectedCrash",
    "LifecycleManager",
    "MatchingServer",
    "QueryCache",
    "RetryPolicy",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceUnavailable",
    "TenancyError",
    "TenantSpec",
    "TenantTable",
    "TokenBucket",
    "canonical_form",
    "lifecycle_points",
    "tenant_from_spec",
    "tenants_from_file",
    "tenants_from_json",
]
