"""Asyncio JSON-lines TCP server fronting the GuP engine.

Protocol: newline-delimited JSON both ways.  Each request is one
object with an ``"op"`` field; each response is one or more lines:

``{"op": "ping"}``
    → ``{"ok": true, "pong": true}``
``{"op": "stats"}``
    → ``{"ok": true, "server": {...}, "catalog": {...}, "qcache": {...}}``
``{"op": "metrics"}``
    → ``{"ok": true, "metrics": text}`` — the whole metrics registry in
      Prometheus text exposition format.  The same exposition answers a
      plain-HTTP ``GET /metrics`` sent to this port (and ``GET
      /healthz`` returns the healthz payload as JSON), so a stock
      Prometheus scraper or curl can point at the JSON-lines port
      directly.
``{"op": "catalog_list"}`` / ``{"op": "catalog_add", "name": n, "graph": text}``
    → ``{"ok": true, "entries": [...]}`` / the new entry's info
``{"op": "query", "data": name, "graph": text, "limit": N, "workers": W,
   "time_limit": S, "recursion_limit": R, "count_only": b, "cache": b,
   "trace": id, "profile": b|stride}``
    → header ``{"ok": true, "num_embeddings": N, "status": s,
      "cache": "hit"|"miss"|"bypass", "queue_seconds": q,
      "server_seconds": t, "trace": id, "chunks": k, ...}``, then ``k``
      lines ``{"chunk": [[...], ...]}``, then ``{"end": true}`` —
      large embedding sets stream in bounded chunks instead of one
      giant line.  ``queue_seconds`` is admission-queue wait, reported
      separately from execution; ``trace`` echoes (or generates) the
      request's trace id, the one its structured log lines share;
      ``profile`` attaches a search-level sampling-profiler summary
      (depth histogram, conflicts by kind, backjumps) to the header.
``{"op": "update", "name": n, "delta": {"add_vertices": [...],
   "add_edges": [[u, v], ...], "remove_edges": [[u, v], ...]}}``
    → ``{"ok": true, "entry": info, "summary": {...},
      "qcache_kept": k, "qcache_evicted": e, "subscribers_notified": m}``
      — applies the delta to the catalog entry (epoch bump, artifacts
      patched incrementally), selectively invalidates the entry's query
      cache (only entries whose label set meets the delta's touched
      labels), and pushes an embedding-diff event to every standing
      subscriber of that graph.
``{"op": "subscribe", "data": name, "graph": text}``
    → header ``{"ok": true, "subscription": id, "num_embeddings": N,
      "epoch": E, "chunks": k}``, then the current embeddings in ``k``
      chunk lines and ``{"end": true}``.  Afterwards every ``update``
      of that graph pushes one line
      ``{"event": "delta", "subscription": id, "data": name,
      "epoch": E, "added": [...], "removed": [...]}`` with the exact
      embedding diff.  Subscriptions end with the connection.  Use a
      dedicated connection per subscriber: events are pushed
      asynchronously and would interleave with reply streams of
      requests issued on the same socket.
``{"op": "healthz"}``
    → ``{"ok": true, "status": "ok"|"overloaded", "active": n,
      "capacity": c, "entries": {name: epoch, ...}, "pool":
      {"respawns": r, "tasks_rerun": t}, "subscriptions": s,
      "uptime_seconds": u}`` — liveness + load + catalog/epoch/pool
      state in one cheap line (never touches the executor, so it
      answers even when matching is saturated).
``{"op": "reload"}``
    → ``{"ok": true, "report": {name: {"action": ..., "epoch": E}},
      "replayed": n, "status": s}`` — zero-downtime catalog reload
      (DESIGN.md §13): picks up entries another process added, updated,
      or removed under the catalog root.  New-epoch engines are built
      off the event loop and swapped in atomically; in-flight queries
      finish on their admitted epoch, standing subscriptions are
      re-attached across the epoch boundary with one exact diff-replay
      event (``"reload": true``).  SIGHUP triggers the same path.
``{"op": "drain", "timeout": S}``
    → ``{"ok": true, "drained": b, "active": n, "stopping": true}`` —
      graceful stop: stops admitting (new queries are shed with reason
      ``"draining"``), waits for in-flight work bounded by the
      deadline, then shuts down; ``drained`` reports whether the server
      emptied in time.
``{"op": "shutdown"}``
    → ``{"ok": true, "stopping": true}`` and the server stops.

Every error is a single ``{"ok": false, "error": msg}`` line; the
connection stays usable (malformed requests don't kill it).

Concurrency model: the event loop only parses and streams; matching is
CPU-bound and runs on a thread-pool executor bounded by
``max_inflight`` (admission control).  Queries beyond the capacity
``max_inflight + max_pending`` are *rejected immediately* with an
``overloaded`` error rather than queued without bound.  Requests carry
a ``"priority"`` of ``"low"``/``"normal"`` (default)/``"high"``; under
load the lowest class is shed first: ``low`` never queues (rejected as
soon as every matching slot is busy), ``normal`` is rejected at
capacity, and ``high`` may use ``high_headroom`` extra queue slots
reserved for it (DESIGN.md §10).  Requests may also carry a
``"tenant"`` name (legacy clients land on the default tenant): each
tenant has its own token-bucket rate limit, inflight quota, and
weighted share of the matching slots (deficit round robin — no tenant
can monopolize slots or procpool workers; DESIGN.md §13).  Every
rejection reply carries ``"reason"`` (``capacity``/``rate``/``quota``/
``draining``) and a ``"retry_after"`` hint the client's RetryPolicy
honors.  Heavy requests set ``"workers": W >
1`` and are dispatched root-partitioned over the
:mod:`repro.core.procpool` process pool — the executor thread then
mostly waits on worker processes, so a procpool query does not hog the
GIL.  Per-request ``SearchLimits`` (embedding cap, wall-clock timeout,
recursion budget) bound each query; the server can impose default
budgets on requests that specify none.

Subscriber backpressure: every subscription owns a **bounded** event
queue drained by a dedicated sender task, so one slow subscriber can
never stall updates or other subscribers.  When a queue overflows the
``subscriber_policy`` decides: ``"disconnect"`` (default) drops the
subscription and closes its connection — the client notices and can
re-subscribe by epoch; ``"drop"`` discards the event and marks the next
delivered one with ``"lost": k`` so the client knows its standing set
is stale.
"""

from __future__ import annotations

import asyncio
import json
import logging
import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Set, Tuple

from repro.core.procpool import POOL_COUNTERS
from repro.dynamic.continuous import embedding_diff
from repro.dynamic.delta import DeltaError, delta_from_payload
from repro.filtering.artifacts import DataArtifacts
from repro.graph.graph import Graph
from repro.graph.io import loads_graph
from repro.matching.limits import SearchLimits
from repro.matching.result import MatchResult, SearchStats, TerminationStatus
from repro.obs import Observability, SamplingProfiler, new_trace_id, trace_context
from repro.obs.explain import sidecar_record
from repro.obs.metrics import CounterGroup
from repro.obs.spans import emit_spans, new_span_id, span_scope
from repro.service.catalog import CatalogError, GraphCatalog
from repro.service.faults import NO_FAULTS, FaultPlan, InjectedCrash
from repro.service.lifecycle import (
    DRAINING,
    SERVING,
    STOPPED,
    LifecycleManager,
)
from repro.service.qcache import DEFAULT_LEAF_BUDGET, QueryCache
from repro.service.tenancy import (
    PRIORITY_RANKS,
    FairSlots,
    TenantState,
    TenantTable,
)

DEFAULT_PORT = 7464

PRIORITIES = ("high", "normal", "low")

logger = logging.getLogger("repro.service.server")


class _Subscription:
    """One standing query registered by a connected client."""

    __slots__ = (
        "id", "name", "query", "matches", "writer", "queue", "sender",
        "lost", "epoch",
    )

    def __init__(
        self,
        sub_id: int,
        name: str,
        query: Graph,
        matches: Set[Tuple[int, ...]],
        writer: asyncio.StreamWriter,
        queue_limit: int,
    ) -> None:
        self.id = sub_id
        self.name = name
        self.query = query
        self.matches = matches
        self.writer = writer
        self.queue: "asyncio.Queue[Dict]" = asyncio.Queue(maxsize=queue_limit)
        self.sender: Optional[asyncio.Task] = None
        self.lost = 0  # events discarded under the "drop" policy
        # Epoch the standing set was last reconciled against; a reload
        # replays any subscription whose epoch trails the catalog's.
        self.epoch: Optional[int] = None


class MatchingServer:
    """Long-running matching server over a :class:`GraphCatalog`.

    One :class:`QueryCache` per catalog entry (results are only valid
    for the data graph + config that produced them).  All counters are
    exposed by the ``stats`` op — including the catalog's artifact
    build/load/rebuild counters, which is how tests assert that the
    warm path rebuilds nothing.
    """

    def __init__(
        self,
        catalog: GraphCatalog,
        max_inflight: int = 2,
        max_pending: int = 8,
        cache_entries: int = 256,
        chunk_size: int = 512,
        max_request_workers: int = 8,
        default_time_limit: Optional[float] = None,
        default_recursion_limit: Optional[int] = None,
        leaf_budget: int = DEFAULT_LEAF_BUDGET,
        high_headroom: int = 1,
        subscriber_queue: int = 64,
        subscriber_policy: str = "disconnect",
        faults: FaultPlan = NO_FAULTS,
        obs: Optional[Observability] = None,
        tenants: Optional[TenantTable] = None,
        drain_timeout: float = 30.0,
        retry_after_hint: float = 0.05,
    ) -> None:
        if subscriber_policy not in ("disconnect", "drop"):
            raise ValueError(
                "subscriber_policy must be 'disconnect' or 'drop', "
                f"got {subscriber_policy!r}"
            )
        self.catalog = catalog
        self.max_inflight = max(1, max_inflight)
        self.max_pending = max(0, max_pending)
        self.chunk_size = max(1, chunk_size)
        self.cache_entries = cache_entries
        self.max_request_workers = max(1, max_request_workers)
        self.default_time_limit = default_time_limit
        self.default_recursion_limit = default_recursion_limit
        self.leaf_budget = leaf_budget
        self.high_headroom = max(0, high_headroom)
        self.subscriber_queue = max(1, subscriber_queue)
        self.subscriber_policy = subscriber_policy
        self.faults = faults
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._caches: Dict[str, QueryCache] = {}
        # Epoch each cache's entries were computed against — lets a
        # reload recognize (and drop) a cache left stale by a crash
        # between the catalog swap and the cache-invalidation step.
        self._cache_epochs: Dict[str, int] = {}
        self._counters_lock = threading.Lock()
        # A CounterGroup so the metrics registry below exposes the very
        # same storage the ``stats`` op snapshots (repro.obs.metrics:
        # "reconciliation by construction").
        self.counters = CounterGroup({
            "queries": 0,
            "served": 0,
            "rejected": 0,
            "shed_low": 0,
            "shed_normal": 0,
            "shed_high": 0,
            "errors": 0,
            "cache_bypass": 0,
            "procpool_dispatches": 0,
            "updates": 0,
            "subscriptions": 0,
            "events_pushed": 0,
            "events_dropped": 0,
            "subscribers_dropped": 0,
            "connections_refused": 0,
        })
        self.obs = obs if obs is not None else Observability()
        # Multi-tenant admission (DESIGN.md §13): every tenant — named
        # by the request's "tenant" field, configured or not — gets its
        # own token bucket, inflight quota, DRR weight, and counters.
        self.tenants = tenants if tenants is not None else TenantTable(
            faults=faults
        )
        self.tenants.on_create = self._attach_tenant
        self.drain_timeout = max(0.0, drain_timeout)
        self.retry_after_hint = max(0.0, retry_after_hint)
        self.lifecycle = LifecycleManager(self)
        self._wire_metrics()
        for tenant_name, state in self.tenants.states().items():
            self._attach_tenant(tenant_name, state)
        self._active = 0
        self._started_at: Optional[float] = None
        self._slots: Optional[FairSlots] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._aux_executor: Optional[ThreadPoolExecutor] = None
        self._conn_tasks: set = set()
        self._subs: Dict[str, Dict[int, _Subscription]] = {}
        self._next_sub_id = 1
        self._update_lock: Optional[asyncio.Lock] = None
        # EXPLAIN ANALYZE sidecar persistence happens off the request
        # path: rewriting a full 64-record analyze.json costs multiples
        # of the analyze itself, so query threads enqueue the distilled
        # record here and a lazily-started daemon writes it out;
        # aclose() drains the queue so a stopped server has flushed
        # every record.
        self._analysis_queue: "queue.Queue" = queue.Queue()
        self._analysis_thread: Optional[threading.Thread] = None

    # -- observability (DESIGN.md §12) ---------------------------------

    def _wire_metrics(self) -> None:
        """Attach every counter group + register gauges/histograms.

        Counter families are *attached* live mappings — rendering reads
        the same objects the ``stats`` op snapshots, so ``/metrics`` and
        ``stats`` can never disagree.  Gauges are refreshed by an
        ``on_scrape`` hook; histograms are fed on the query path.
        """
        reg = self.obs.registry
        reg.attach_group(
            "repro_server", self.counters,
            help_text="MatchingServer request/subscription counters",
        )
        reg.attach_group(
            "repro_catalog", self.catalog.counters,
            help_text="GraphCatalog artifact/engine/transaction counters",
        )
        reg.attach_group(
            "repro_pool", POOL_COUNTERS,
            help_text="Procpool worker-crash recovery counters",
        )
        phase = reg.histogram(
            "repro_server_phase_seconds",
            "Per-phase query latency: queue wait, engine build (GCS "
            "construction), search, reply streaming",
            labelnames=["phase"],
        )
        self._phase_hist = {
            name: phase.labels(phase=name)
            for name in ("queue", "build", "search", "stream")
        }
        self._request_hist = reg.histogram(
            "repro_server_request_seconds",
            "End-to-end server-side query latency (admission to reply)",
        )
        self._gauges = {
            "active": reg.gauge(
                "repro_server_active", "Queries currently admitted"
            ),
            "capacity": reg.gauge(
                "repro_server_capacity",
                "Admission capacity (max_inflight + max_pending)",
            ),
            "subscriptions": reg.gauge(
                "repro_server_subscriptions_active",
                "Standing subscriptions currently registered",
            ),
            "uptime": reg.gauge(
                "repro_server_uptime_seconds", "Seconds since start()"
            ),
            "builds_in_process": reg.gauge(
                "repro_artifact_builds_in_process",
                "DataArtifacts built from scratch in this process",
            ),
            "qcache_entries": reg.gauge(
                "repro_qcache_entries",
                "Live query-cache entries", labelnames=["data"],
            ),
            "tenant_inflight": reg.gauge(
                "repro_tenant_inflight",
                "Queries currently admitted per tenant",
                labelnames=["tenant"],
            ),
        }
        reg.on_scrape(self._refresh_gauges)

    def _attach_tenant(self, name: str, state: TenantState) -> None:
        """Expose a newly materialized tenant's counters as the
        ``repro_tenant_*_total{tenant=...}`` families — live attachment,
        same storage the ``stats`` op snapshots."""
        self.obs.registry.attach_group(
            "repro_tenant", state.counters, labels={"tenant": name},
            help_text="Per-tenant admission counters",
        )

    def _refresh_gauges(self) -> None:
        with self._counters_lock:
            caches = dict(self._caches)
            subscriptions = sum(len(per) for per in self._subs.values())
        g = self._gauges
        g["active"].set(self._active)
        g["capacity"].set(self.max_inflight + self.max_pending)
        g["subscriptions"].set(subscriptions)
        g["uptime"].set(
            time.monotonic() - self._started_at
            if self._started_at is not None else 0.0
        )
        g["builds_in_process"].set(DataArtifacts.builds_performed)
        for name, cache in caches.items():
            g["qcache_entries"].labels(data=name).set(len(cache))
        for name, state in self.tenants.states().items():
            g["tenant_inflight"].labels(tenant=name).set(state.inflight)

    def metrics_text(self) -> str:
        """The full Prometheus text exposition (``metrics`` op body)."""
        return self.obs.registry.render()

    # -- lifecycle -----------------------------------------------------

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Bind and start accepting; returns the actual ``(host, port)``
        (useful with ``port=0``)."""
        self._slots = FairSlots(self.max_inflight)
        self._shutdown = asyncio.Event()
        self._update_lock = asyncio.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_inflight, thread_name_prefix="repro-match"
        )
        # Lifecycle work (reload scans/loads, subscription replay) runs
        # here, never on the matching executor: a saturated server must
        # still be reloadable without stealing a matching slot.
        self._aux_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-aux"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._started_at = time.monotonic()
        logger.info("serving on %s:%s", self.host, self.port)
        return self.host, self.port

    async def wait_closed(self) -> None:
        """Serve until a ``shutdown`` op (or :meth:`request_shutdown`)."""
        assert self._shutdown is not None, "start() first"
        await self._shutdown.wait()
        await self.aclose()

    def request_shutdown(self) -> None:
        """Signal the server to stop (threadsafe only via its loop)."""
        if self._shutdown is not None:
            self._shutdown.set()

    def request_drain(self) -> None:
        """Graceful stop: drain (bounded by ``drain_timeout``), then
        shut down.  Must run on the server's loop (e.g. from a signal
        handler registered with ``loop.add_signal_handler``)."""
        if self._shutdown is None or self._shutdown.is_set():
            return
        asyncio.get_running_loop().create_task(self._drain_and_stop())

    async def _drain_and_stop(self) -> None:
        try:
            await self.lifecycle.drain(self.drain_timeout)
        finally:
            if self._shutdown is not None:
                self._shutdown.set()

    def request_reload(self) -> None:
        """Schedule a zero-downtime catalog reload (e.g. on SIGHUP).
        Must run on the server's loop; failures are logged, never
        fatal — the server keeps serving the old epoch."""
        if self._shutdown is None or self._shutdown.is_set():
            return

        async def _reload() -> None:
            try:
                await self.lifecycle.reload()
            except InjectedCrash:
                raise
            except Exception:  # noqa: BLE001 - keep serving the old epoch
                self._bump("errors")
                logger.exception("reload failed; still serving old epoch")

        asyncio.get_running_loop().create_task(_reload())

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            # Cancel live connection handlers explicitly: an idle client
            # blocked in readline() would otherwise keep
            # ``Server.wait_closed()`` (which awaits handlers on Python
            # >= 3.12.1) from ever returning.
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks, return_exceptions=True)
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        if self._aux_executor is not None:
            self._aux_executor.shutdown(wait=False, cancel_futures=True)
            self._aux_executor = None
        if self._analysis_thread is not None:
            # FIFO queue: the sentinel lands behind every pending
            # record, so joining here means the sidecar holds every
            # analyze the server acknowledged.
            self._analysis_queue.put(None)
            self._analysis_thread.join(timeout=10.0)
            self._analysis_thread = None
        self.lifecycle.state = STOPPED

    def _enqueue_analysis(self, name: str, record: Dict) -> None:
        """Queue one analyze record for the background sidecar writer."""
        with self._counters_lock:
            if self._analysis_thread is None:
                self._analysis_thread = threading.Thread(
                    target=self._analysis_writer,
                    name="analysis-writer",
                    daemon=True,
                )
                self._analysis_thread.start()
        self._analysis_queue.put((name, record))

    def _analysis_writer(self) -> None:
        while True:
            item = self._analysis_queue.get()
            if item is None:
                return
            batch = [item]
            stop = False
            # Debounce: the sidecar rewrite is O(full file), so a burst
            # of analyzed queries coalesces into one rewrite per entry
            # — per-record writes would let the writer's GIL time tax
            # the very queries whose work it records.
            deadline = time.monotonic() + 0.05
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    nxt = self._analysis_queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt is None:
                    stop = True
                    break
                batch.append(nxt)
            by_name: Dict[str, List[Dict]] = {}
            for name, record in batch:
                by_name.setdefault(name, []).append(record)
            for name, records in by_name.items():
                try:
                    self.catalog.store_analyses(name, records)
                except (CatalogError, OSError) as exc:
                    # Derived telemetry: a lost write is reported on
                    # the obs stream, never surfaced to (or failing)
                    # the queries that produced it — long answered.
                    self.obs.emit(
                        "analysis_sidecar_error", data=name,
                        error=str(exc),
                    )
            if stop:
                return

    # -- connection handling -------------------------------------------

    async def _send(self, writer: asyncio.StreamWriter, payload: Dict) -> None:
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await writer.drain()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        conn_subs: List[_Subscription] = []
        try:
            # Fault-injection hook: a flaky network between client and
            # server.  "refuse" closes the connection before any request
            # is read (the client sees an immediate EOF); "delay" stalls
            # the accept path without blocking the event loop.
            rule = self.faults.consume("server.accept")
            if rule is not None:
                if rule.action == "refuse":
                    self._bump("connections_refused")
                    logger.info("refusing connection (injected fault)")
                    self.obs.emit("fault.refuse")
                    return
                if rule.action == "delay":
                    await asyncio.sleep(rule.seconds)
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                if line.startswith(b"GET "):
                    # Plain-HTTP scrape support: a Prometheus scraper
                    # (or curl) pointed at the JSON-lines port gets a
                    # real HTTP/1.0 response for /metrics and /healthz,
                    # then the connection closes (HTTP/1.0 semantics).
                    await self._handle_http(reader, writer, line)
                    break
                try:
                    request = json.loads(line)
                except ValueError:
                    await self._send(
                        writer, {"ok": False, "error": "malformed JSON request"}
                    )
                    continue
                if not isinstance(request, dict):
                    await self._send(
                        writer,
                        {"ok": False, "error": "request must be a JSON object"},
                    )
                    continue
                op = request.get("op")
                if op == "ping":
                    await self._send(writer, {"ok": True, "pong": True})
                elif op == "healthz":
                    await self._send(writer, self._healthz_payload())
                elif op == "stats":
                    await self._send(writer, self._stats_payload())
                elif op == "metrics":
                    await self._send(
                        writer, {"ok": True, "metrics": self.metrics_text()}
                    )
                elif op == "catalog_list":
                    await self._op_catalog_list(writer)
                elif op == "catalog_add":
                    await self._op_catalog_add(request, writer)
                elif op == "query":
                    await self._op_query(request, writer)
                elif op == "update":
                    await self._op_update(request, writer)
                elif op == "subscribe":
                    await self._op_subscribe(request, writer, conn_subs)
                elif op == "reload":
                    await self._op_reload(request, writer)
                elif op == "drain":
                    stopping = await self._op_drain(request, writer)
                    if stopping:
                        break
                elif op == "shutdown":
                    await self._send(writer, {"ok": True, "stopping": True})
                    if self._shutdown is not None:
                        self._shutdown.set()
                    break
                else:
                    await self._send(
                        writer, {"ok": False, "error": f"unknown op {op!r}"}
                    )
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Loop teardown cancels live connection handlers; finish
            # quietly (the streams machinery would otherwise log it).
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            for sub in conn_subs:
                self._drop_subscription(sub)
            try:
                writer.close()
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                OSError,
                asyncio.CancelledError,
            ):
                pass

    async def _handle_http(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        request_line: bytes,
    ) -> None:
        """Answer one ``GET`` request on the JSON-lines port.

        ``/metrics`` returns the text exposition, ``/healthz`` the
        healthz payload as JSON; anything else is a 404.  Request
        headers are drained (up to a sane cap) so well-behaved HTTP
        clients don't see a reset, then the connection closes.
        """
        parts = request_line.decode("latin-1").split()
        path = parts[1] if len(parts) >= 2 else "/"
        for _ in range(64):  # drain headers until the blank line
            header = await reader.readline()
            if not header or header in (b"\r\n", b"\n"):
                break
        if path.split("?")[0] == "/metrics":
            status, ctype, body = (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                self.metrics_text(),
            )
        elif path.split("?")[0] == "/healthz":
            status, ctype, body = (
                "200 OK",
                "application/json",
                json.dumps(self._healthz_payload()) + "\n",
            )
        else:
            status, ctype, body = ("404 Not Found", "text/plain", "not found\n")
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.0 {status}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    # -- ops -----------------------------------------------------------

    async def _op_catalog_list(self, writer: asyncio.StreamWriter) -> None:
        entries = [self.catalog.info(name) for name in self.catalog.names()]
        await self._send(writer, {"ok": True, "entries": entries})

    async def _op_catalog_add(
        self, request: Dict, writer: asyncio.StreamWriter
    ) -> None:
        name = request.get("name")
        text = request.get("graph")
        if not isinstance(name, str) or not isinstance(text, str):
            await self._send(
                writer,
                {"ok": False, "error": "catalog_add needs 'name' and 'graph'"},
            )
            return
        loop = asyncio.get_running_loop()

        def work() -> Dict:
            graph = loads_graph(text)
            return self.catalog.add(
                name, graph, overwrite=bool(request.get("overwrite", False))
            )

        try:
            info = await loop.run_in_executor(self._executor, work)
        except (CatalogError, ValueError, OSError) as exc:
            self._bump("errors")
            await self._send(writer, {"ok": False, "error": str(exc)})
            return
        # The entry may have replaced a different graph under the same
        # name: results cached against the old graph are now wrong.
        with self._counters_lock:
            self._caches.pop(name, None)
            self._cache_epochs.pop(name, None)
        await self._send(writer, {"ok": True, "entry": info})

    # -- dynamic ops (DESIGN.md §9) ------------------------------------

    def _drop_subscription(self, sub: _Subscription) -> None:
        with self._counters_lock:
            per_name = self._subs.get(sub.name)
            if per_name is not None and per_name.pop(sub.id, None) is not None:
                if not per_name:
                    del self._subs[sub.name]
        sender = sub.sender
        if sender is not None and sender is not asyncio.current_task():
            sender.cancel()

    async def _sub_sender(self, sub: _Subscription) -> None:
        """Drain one subscription's bounded event queue to its socket.

        A slow subscriber only ever blocks *here*, never the update
        path or other subscribers.  ``server.subscriber.send`` is the
        fault hook tests use to make this sender arbitrarily slow.
        """
        try:
            while True:
                event = await sub.queue.get()
                rule = self.faults.consume("server.subscriber.send")
                if rule is not None and rule.action == "delay":
                    await asyncio.sleep(rule.seconds)
                await self._send(sub.writer, event)
                self._bump("events_pushed")
        except asyncio.CancelledError:
            pass
        except (ConnectionResetError, BrokenPipeError, OSError):
            self._bump("subscribers_dropped")
            self._drop_subscription(sub)

    def _enqueue_event(self, sub: _Subscription, event: Dict) -> bool:
        """Queue one event for ``sub`` under the backpressure policy.

        Returns whether the subscription is still alive afterwards.
        """
        if sub.lost:
            # Tell the client how many diffs it missed so it knows its
            # standing set is stale and can re-subscribe by epoch.
            event = {**event, "lost": sub.lost}
        try:
            sub.queue.put_nowait(event)
        except asyncio.QueueFull:
            if self.subscriber_policy == "drop":
                sub.lost += 1
                self._bump("events_dropped")
                logger.info(
                    "subscription %d lagging: dropped event (%d lost)",
                    sub.id, sub.lost,
                )
                self.obs.emit(
                    "subscriber.drop", subscription=sub.id,
                    data=sub.name, lost=sub.lost,
                )
                return True
            self._bump("subscribers_dropped")
            logger.info(
                "subscription %d too slow: disconnecting", sub.id
            )
            self.obs.emit(
                "subscriber.disconnect", subscription=sub.id, data=sub.name
            )
            self._drop_subscription(sub)
            try:
                sub.writer.close()
            except OSError:
                pass
            return False
        sub.lost = 0
        return True

    async def _op_update(
        self, request: Dict, writer: asyncio.StreamWriter
    ) -> None:
        name = request.get("name")
        payload = request.get("delta")
        if not isinstance(name, str) or payload is None:
            await self._send(
                writer, {"ok": False, "error": "update needs 'name' and 'delta'"}
            )
            return
        # Same trace discipline as queries: honor the client's id, else
        # generate one — the update event and every subscriber delta it
        # fans out to carry it, so a diff can be traced to its cause.
        trace = request.get("trace")
        if not isinstance(trace, str) or not (1 <= len(trace) <= 64):
            trace = new_trace_id()
        loop = asyncio.get_running_loop()
        assert self._update_lock is not None

        def apply() -> Tuple[Dict, object]:
            delta = delta_from_payload(payload)
            return self.catalog.update(name, delta)

        # One update at a time: the summary -> qcache-invalidation ->
        # subscriber-diff sequence must observe graph epochs in order.
        async with self._update_lock:
            try:
                info, summary = await loop.run_in_executor(
                    self._executor, apply
                )
            except (CatalogError, DeltaError, ValueError, OSError) as exc:
                # OSError: the catalog could not persist (disk full,
                # read-only root) — report it, keep the connection.
                self._bump("errors")
                await self._send(writer, {"ok": False, "error": str(exc)})
                return

            with self._counters_lock:
                cache = self._caches.get(name)
                if cache is not None:
                    # Surviving entries are revalidated against the new
                    # epoch below, so the cache tracks it.
                    self._cache_epochs[name] = info.get("epoch")
            kept = evicted = 0
            if cache is not None:
                kept, evicted = cache.invalidate_labels(summary.touched_labels)

            notified = await self._notify_subscribers(
                name, info, summary, trace=trace
            )

        self._bump("updates")
        self.obs.emit(
            "update", trace=trace, data=name, epoch=info.get("epoch"),
            qcache_kept=kept, qcache_evicted=evicted,
            subscribers_notified=notified,
        )
        await self._send(
            writer,
            {
                "ok": True,
                "entry": info,
                "summary": summary.counts(),
                "qcache_kept": kept,
                "qcache_evicted": evicted,
                "subscribers_notified": notified,
                "trace": trace,
            },
        )

    async def _notify_subscribers(
        self, name: str, info: Dict, summary, trace: Optional[str] = None
    ) -> int:
        """Push the exact embedding diff to every subscriber of ``name``."""
        with self._counters_lock:
            subs = list(self._subs.get(name, {}).values())
        if not subs:
            return 0
        loop = asyncio.get_running_loop()
        engine = await loop.run_in_executor(
            self._executor, self.catalog.engine, name
        )
        notified = 0
        for sub in subs:
            try:
                diff = await loop.run_in_executor(
                    self._executor,
                    embedding_diff,
                    engine,
                    sub.query,
                    sub.matches,
                    summary,
                )
            except Exception as exc:  # noqa: BLE001 - drop, keep serving
                self._bump("subscribers_dropped")
                self._drop_subscription(sub)
                try:
                    await self._send(
                        sub.writer,
                        {"event": "error", "subscription": sub.id,
                         "error": f"diff failed: {exc!r}"},
                    )
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass
                continue
            sub.matches.difference_update(diff.removed)
            sub.matches.update(diff.added)
            sub.epoch = info.get("epoch")
            # Enqueue, never send inline: the bounded queue + sender
            # task decouple the update path from slow subscriber
            # sockets (backpressure policy in _enqueue_event).
            if self._enqueue_event(
                sub,
                {
                    "event": "delta",
                    "subscription": sub.id,
                    "data": name,
                    "epoch": info.get("epoch"),
                    "trace": trace,
                    "added": [list(e) for e in diff.added],
                    "removed": [list(e) for e in diff.removed],
                },
            ):
                notified += 1
        return notified

    async def _op_subscribe(
        self,
        request: Dict,
        writer: asyncio.StreamWriter,
        conn_subs: List[_Subscription],
    ) -> None:
        name = request.get("data")
        text = request.get("graph")
        if not isinstance(name, str) or not isinstance(text, str):
            await self._send(
                writer,
                {"ok": False, "error": "subscribe needs 'data' and 'graph'"},
            )
            return
        trace = request.get("trace")
        if not isinstance(trace, str) or not (1 <= len(trace) <= 64):
            trace = new_trace_id()
        try:
            query = loads_graph(text)
        except ValueError as exc:
            self._bump("errors")
            await self._send(writer, {"ok": False, "error": str(exc)})
            return
        if self.lifecycle.state in (DRAINING, STOPPED):
            await self._send(
                writer,
                {"ok": False,
                 "error": "draining: not admitting new subscriptions",
                 "overloaded": True, "reason": "draining",
                 "retry_after": round(self.retry_after_hint, 6)},
            )
            return
        tenant_field = request.get("tenant")
        tstate = self.tenants.resolve(
            tenant_field if isinstance(tenant_field, str) else None
        )
        loop = asyncio.get_running_loop()

        def initial() -> MatchResult:
            engine = self.catalog.engine(name)
            return engine.match(query, limits=SearchLimits())

        assert self._slots is not None
        assert self._update_lock is not None
        # Serialized against updates end to end: the baseline must be
        # enumerated on the same epoch the subscription registers under
        # (an update landing in between would make every later diff
        # start from a stale set), and no event line may be pushed
        # between the header and its chunk stream.
        async with self._update_lock:
            try:
                await self._slots.acquire(
                    tstate.spec.name, weight=tstate.spec.weight,
                    rank=PRIORITY_RANKS["normal"],
                )
                try:
                    result = await loop.run_in_executor(
                        self._executor, initial
                    )
                finally:
                    self._slots.release()
            except CatalogError as exc:
                self._bump("errors")
                await self._send(writer, {"ok": False, "error": str(exc)})
                return
            if result.status is not TerminationStatus.COMPLETE:
                self._bump("errors")
                await self._send(
                    writer,
                    {"ok": False,
                     "error": "subscribe needs a complete initial "
                              f"enumeration (got {result.status.value})"},
                )
                return

            matches = {tuple(e) for e in result.embeddings}
            with self._counters_lock:
                sub_id = self._next_sub_id
                self._next_sub_id += 1
                sub = _Subscription(
                    sub_id, name, query, matches, writer,
                    queue_limit=self.subscriber_queue,
                )
                self._subs.setdefault(name, {})[sub_id] = sub
                self.counters["subscriptions"] += 1
            conn_subs.append(sub)

            try:
                epoch = self.catalog.info(name).get("epoch")
            except CatalogError:
                epoch = None
            sub.epoch = epoch
            self.obs.emit(
                "subscribe", trace=trace, data=name, subscription=sub_id,
                epoch=epoch, num_embeddings=len(matches),
                tenant=tstate.spec.name,
            )
            embeddings = sorted(matches)
            chunk_count = (
                len(embeddings) + self.chunk_size - 1
            ) // self.chunk_size
            await self._send(
                writer,
                {
                    "ok": True,
                    "subscription": sub_id,
                    "num_embeddings": len(embeddings),
                    "epoch": epoch,
                    "chunks": chunk_count,
                    "trace": trace,
                },
            )
            for i in range(chunk_count):
                await self._send(
                    writer,
                    {"chunk": [
                        list(e)
                        for e in embeddings[
                            i * self.chunk_size : (i + 1) * self.chunk_size
                        ]
                    ]},
                )
            await self._send(writer, {"end": True})
            # Only start draining events after the snapshot stream is
            # complete — the first queued diff must never interleave
            # with the header/chunk lines above (we still hold the
            # update lock here, so nothing can have been enqueued yet).
            sub.sender = asyncio.get_running_loop().create_task(
                self._sub_sender(sub)
            )

    # -- lifecycle ops (DESIGN.md §13) ---------------------------------

    async def _op_reload(
        self, request: Dict, writer: asyncio.StreamWriter
    ) -> None:
        """Zero-downtime catalog reload (also reachable via SIGHUP).

        Replies with the per-entry action report and the number of
        subscription diffs replayed across the epoch boundary.  An
        injected crash at a lifecycle hook is reported (``"crashed":
        true``) with the server still up — the catalog is consistent at
        the old or new epoch either way, which is what the fault sweep
        asserts.
        """
        try:
            report, replayed = await self.lifecycle.reload()
        except InjectedCrash as exc:
            self._bump("errors")
            await self._send(
                writer,
                {"ok": False, "error": f"injected crash at {exc}",
                 "crashed": True, "status": self.lifecycle.state},
            )
            return
        except (CatalogError, RuntimeError, OSError) as exc:
            self._bump("errors")
            await self._send(writer, {"ok": False, "error": str(exc)})
            return
        await self._send(
            writer,
            {
                "ok": True,
                "report": report,
                "replayed": replayed,
                "status": self.lifecycle.state,
            },
        )

    async def _op_drain(
        self, request: Dict, writer: asyncio.StreamWriter
    ) -> bool:
        """Graceful drain, then stop.  Returns whether we are stopping.

        The reply reports the truth: ``"drained": false`` with the
        number of queries still in flight when the deadline expired
        (the CLI verb exits nonzero on that).
        """
        timeout = request.get("timeout", self.drain_timeout)
        if isinstance(timeout, bool) or not isinstance(timeout, (int, float)) \
                or timeout < 0:
            await self._send(
                writer,
                {"ok": False,
                 "error": "'timeout' must be a non-negative number"},
            )
            return False
        try:
            drained, active = await self.lifecycle.drain(float(timeout))
        except InjectedCrash as exc:
            self._bump("errors")
            await self._send(
                writer,
                {"ok": False, "error": f"injected crash at {exc}",
                 "crashed": True, "status": self.lifecycle.state},
            )
            return False
        await self._send(
            writer,
            {
                "ok": True,
                "drained": drained,
                "active": active,
                "stopping": True,
            },
        )
        if self._shutdown is not None:
            self._shutdown.set()
        return True

    def _admission_limit(self, priority: str) -> int:
        """Active-query count at which ``priority`` work is shed.

        Lowest class first: ``low`` never queues (shed once every
        matching slot is busy), ``normal`` is shed at capacity,
        ``high`` may use ``high_headroom`` reserve slots beyond it.
        """
        capacity = self.max_inflight + self.max_pending
        if priority == "low":
            return self.max_inflight
        if priority == "high":
            return capacity + self.high_headroom
        return capacity

    async def _op_query(
        self, request: Dict, writer: asyncio.StreamWriter
    ) -> None:
        self._bump("queries")
        # One trace id per request: honor the client's (so its retry
        # attempts correlate with our handling), else generate one.
        trace = request.get("trace")
        if not isinstance(trace, str) or not (1 <= len(trace) <= 64):
            trace = new_trace_id()
        # Causal spans: the client's attempt span (if sent) parents our
        # request span, so one exported tree covers the whole round trip.
        client_span = request.get("span")
        if not isinstance(client_span, str) or not (1 <= len(client_span) <= 64):
            client_span = None
        request_span = new_span_id()
        request_t0 = time.monotonic()
        priority = request.get("priority", "normal")
        if priority not in PRIORITIES:
            self._bump("errors")
            self.obs.emit(
                "query", trace=trace, outcome="error",
                error=f"bad priority {priority!r}",
            )
            await self._send(
                writer,
                {"ok": False,
                 "error": f"priority must be one of {list(PRIORITIES)}",
                 "trace": trace},
            )
            return
        tenant_field = request.get("tenant")
        if tenant_field is not None and (
            not isinstance(tenant_field, str)
            or not (1 <= len(tenant_field) <= 128)
        ):
            self._bump("errors")
            self.obs.emit(
                "query", trace=trace, outcome="error",
                error="bad tenant field",
            )
            await self._send(
                writer,
                {"ok": False,
                 "error": "'tenant' must be a non-empty string (<=128 chars)",
                 "trace": trace},
            )
            return
        tstate = self.tenants.resolve(tenant_field)
        tenant = tstate.spec.name
        tstate.counters.inc("queries")
        # Admission pipeline (DESIGN.md §13), cheapest reason first:
        # draining → forced/global priority shedding (unchanged
        # semantics: reject *immediately*, no unbounded queueing,
        # lowest class first) → per-tenant token bucket → per-tenant
        # inflight quota.  Every rejection carries a retry_after hint
        # the client's RetryPolicy honors.  The fault hook lets tests
        # force a shed without real resource pressure.
        reason: Optional[str] = None
        retry_after: Optional[float] = None
        error_msg = "overloaded: too many in-flight queries"
        if self.lifecycle.state in (DRAINING, STOPPED):
            reason = "draining"
            retry_after = self.retry_after_hint
            error_msg = "draining: not admitting new queries"
        else:
            forced = self.faults.consume("server.admission")
            if (
                self._active >= self._admission_limit(priority)
                or (forced is not None and forced.action == "overload")
            ):
                reason = "capacity"
                retry_after = self.retry_after_hint
            else:
                rejection = self.tenants.admit(tstate)
                if rejection is not None:
                    reason = rejection.reason
                    retry_after = rejection.retry_after
                    error_msg = (
                        f"rate limited: tenant {tenant!r} over rate"
                        if reason == "rate"
                        else f"overloaded: tenant {tenant!r} at max inflight"
                    )
        if reason is not None:
            self._bump("rejected")
            self._bump(f"shed_{priority}")
            tstate.counters.inc(f"shed_{reason}")
            logger.info(
                "shedding %s-priority query from tenant %s "
                "(reason=%s active=%d)",
                priority, tenant, reason, self._active,
            )
            self.obs.emit(
                "query", trace=trace, outcome="shed", priority=priority,
                tenant=tenant, reason=reason,
                data=request.get("data"), active=self._active,
            )
            rejection_reply = {
                "ok": False,
                "error": error_msg,
                "overloaded": True,
                "priority": priority,
                "tenant": tenant,
                "reason": reason,
                "trace": trace,
            }
            if retry_after is not None:
                rejection_reply["retry_after"] = round(retry_after, 6)
            await self._send(writer, rejection_reply)
            return
        tstate.counters.inc("admitted")
        self._active += 1
        tstate.inflight += 1
        try:
            try:
                parsed, chunk_size = self._parse_query(request)
            except ValueError as exc:
                self._bump("errors")
                self.obs.emit(
                    "query", trace=trace, outcome="error",
                    priority=priority, tenant=tenant, error=str(exc),
                )
                await self._send(
                    writer, {"ok": False, "error": str(exc), "trace": trace}
                )
                return
            if tstate.spec.max_workers is not None:
                # Per-tenant procpool clamp: one tenant cannot
                # monopolize worker processes either.
                (
                    qname, query, limits, workers, use_cache, stride, explain
                ) = parsed
                parsed = (
                    qname, query, limits,
                    min(workers, tstate.spec.max_workers),
                    use_cache, stride, explain,
                )
            name = parsed[0]
            explain_mode = parsed[6]
            loop = asyncio.get_running_loop()
            started = time.perf_counter()
            queue_t0 = time.monotonic()
            assert self._slots is not None
            try:
                # Hold a matching slot only for the CPU work; streaming
                # the reply to a slow client must not block admission.
                # Slots are granted in weighted deficit-round-robin
                # order across tenants, priority-ordered within one.
                await self._slots.acquire(
                    tenant, weight=tstate.spec.weight,
                    rank=PRIORITY_RANKS[priority],
                )
                try:
                    queue_seconds = time.perf_counter() - started
                    result, cache_state, prov = await loop.run_in_executor(
                        self._executor, self._execute, *parsed, trace, tenant,
                        request_span,
                    )
                finally:
                    self._slots.release()
            except CatalogError as exc:
                self._bump("errors")
                self.obs.emit(
                    "query", trace=trace, outcome="error",
                    priority=priority, tenant=tenant, data=name,
                    error=str(exc),
                )
                await self._send(
                    writer, {"ok": False, "error": str(exc), "trace": trace}
                )
                return
            except Exception as exc:  # noqa: BLE001 - report, keep serving
                self._bump("errors")
                self.obs.emit(
                    "query", trace=trace, outcome="error",
                    priority=priority, tenant=tenant, data=name,
                    error=repr(exc),
                )
                await self._send(
                    writer,
                    {"ok": False, "error": f"internal error: {exc!r}",
                     "trace": trace},
                )
                return
            server_seconds = time.perf_counter() - started
            stream_started = time.perf_counter()
            stream_t0 = time.monotonic()
            await self._stream_result(
                writer, result, cache_state, server_seconds, chunk_size,
                queue_seconds=queue_seconds, trace=trace,
                profile=prov.get("profile"), explain=prov.get("explain"),
            )
            stream_seconds = time.perf_counter() - stream_started
            if self.obs.enabled:
                hist = self._phase_hist
                hist["queue"].observe(queue_seconds)
                hist["build"].observe(result.preprocessing_seconds)
                hist["search"].observe(result.elapsed_seconds)
                hist["stream"].observe(stream_seconds)
                self._request_hist.observe(server_seconds + stream_seconds)
                config = self.catalog.config
                self.obs.emit(
                    "query",
                    trace=trace,
                    outcome="served",
                    priority=priority,
                    tenant=tenant,
                    data=name,
                    epoch=prov.get("epoch"),
                    cache=prov.get("cache_detail", cache_state),
                    engine_source=prov.get("engine_source"),
                    workers=prov.get("workers"),
                    candidate_backend=config.candidate_backend,
                    build_backend=config.build_backend,
                    mask_backend=config.mask_backend,
                    num_embeddings=result.num_embeddings,
                    status=result.status.value,
                    queue_seconds=round(queue_seconds, 6),
                    build_seconds=round(result.preprocessing_seconds, 6),
                    search_seconds=round(result.elapsed_seconds, 6),
                    stream_seconds=round(stream_seconds, 6),
                    server_seconds=round(server_seconds, 6),
                    **({"explain": explain_mode} if explain_mode else {}),
                )
                # Server-side phase spans: queue and stream around the
                # engine spans _execute emitted under request_span, the
                # request span itself parented by the client's attempt.
                # One batched log pass — three emits would triple the
                # per-record bookkeeping on the hot path.
                emit_spans(self.obs.log, (
                    {"name": "server.queue", "span": new_span_id(),
                     "parent": request_span, "t0": round(queue_t0, 6),
                     "dur": round(queue_seconds, 6)},
                    {"name": "server.stream", "span": new_span_id(),
                     "parent": request_span, "t0": round(stream_t0, 6),
                     "dur": round(stream_seconds, 6)},
                    {"name": "server.request", "span": request_span,
                     "parent": client_span, "t0": round(request_t0, 6),
                     "dur": round(time.monotonic() - request_t0, 6),
                     "tenant": tenant, "data": name},
                ), trace=trace)
            self._bump("served")
            tstate.counters.inc("served")
        finally:
            self._active -= 1
            tstate.inflight -= 1

    def _parse_query(self, request: Dict) -> Tuple[Tuple, int]:
        name = request.get("data")
        if not isinstance(name, str):
            raise ValueError("query request needs a 'data' catalog name")
        text = request.get("graph")
        if not isinstance(text, str):
            raise ValueError("query request needs 'graph' (.graph text)")
        query = loads_graph(text)  # GraphFormatError is a ValueError

        def opt_number(key, default, kind):
            value = request[key] if key in request else default
            if value is None:
                return None
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"{key!r} must be a number or null")
            value = kind(value)
            if value < 0:
                raise ValueError(f"{key!r} must be non-negative")
            return value

        limits = SearchLimits(
            max_embeddings=opt_number("limit", None, int),
            time_limit=opt_number("time_limit", self.default_time_limit, float),
            collect=not bool(request.get("count_only", False)),
            max_recursions=opt_number(
                "recursion_limit", self.default_recursion_limit, int
            ),
        )
        workers = opt_number("workers", 1, int) or 1
        workers = min(workers, self.max_request_workers)
        use_cache = bool(request.get("cache", True))
        chunk_size = opt_number("chunk_size", self.chunk_size, int) or 1
        # profile: false (off), true (stride-1 sampling), or an int
        # stride — attaches a SamplingProfiler summary to the reply.
        profile = request.get("profile", False)
        if isinstance(profile, bool):
            stride = 1 if profile else 0
        elif isinstance(profile, int) and profile >= 1:
            stride = profile
        else:
            raise ValueError("'profile' must be a boolean or a stride >= 1")
        # explain: null (off), "plan" (report without searching), or
        # "analyze" (run the real search, attribute the work exactly).
        explain = request.get("explain")
        if explain is not None and explain not in ("plan", "analyze"):
            raise ValueError("'explain' must be null, 'plan', or 'analyze'")
        if explain is not None and stride > 0:
            raise ValueError("'explain' cannot be combined with 'profile'")
        return (
            name, query, limits, workers, use_cache, stride, explain
        ), chunk_size

    def _cache_for(self, name: str) -> QueryCache:
        with self._counters_lock:
            cache = self._caches.get(name)
            if cache is None:
                cache = QueryCache(
                    max_entries=self.cache_entries,
                    leaf_budget=self.leaf_budget,
                    cap_serving=not self.catalog.config.break_symmetry,
                )
                self._caches[name] = cache
                # Live attachment: this cache's counters become the
                # ``repro_qcache_*_total{data=...}`` metric families.
                self.obs.registry.attach_group(
                    "repro_qcache", cache.counters, labels={"data": name},
                    help_text="QueryCache counters (per catalog entry)",
                )
            return cache

    def _execute(
        self,
        name: str,
        query: Graph,
        limits: SearchLimits,
        workers: int,
        use_cache: bool,
        profile_stride: int,
        explain: Optional[str] = None,
        trace: Optional[str] = None,
        tenant: Optional[str] = None,
        parent_span: Optional[str] = None,
    ) -> Tuple[MatchResult, str, Dict]:
        """Blocking query execution (runs on the executor threads).

        Returns ``(result, cache_state, provenance)`` where provenance
        carries the request-log detail: cache hit/truncated-hit, engine
        source (resident/load/rebuild) + epoch, effective workers, the
        profiler summary when ``profile_stride > 0``, and the
        EXPLAIN/ANALYZE report when ``explain`` is set.  The trace id
        and structured log are bound thread-locally for the duration,
        so the procpool (and its fault hooks) log under this request's
        trace across the process boundary; ``parent_span`` (the request
        span) parents the engine's build/search spans the same way.
        """
        prov: Dict[str, object] = {}
        log = self.obs.log if self.obs.enabled else None
        fields = {"tenant": tenant} if tenant is not None else None
        with trace_context(trace, log, fields), span_scope(parent_span):
            cache = self._cache_for(name)
            form = None
            if profile_stride > 0:
                # A cache hit has no search to observe; profiled runs
                # always execute the engine.
                use_cache = False
            if explain == "plan":
                return self._explain_plan(name, query, limits, use_cache, prov)
            if explain == "analyze":
                # ANALYZE attributes real engine work; a cache hit has
                # none, so the cache is bypassed (never polluted: the
                # analyzed result is not stored either, keeping the
                # cache byte-identical to a no-analyze run).
                use_cache = False
            if use_cache:
                cached, form = cache.lookup(query, limits)
                if cached is not None:
                    # A hit served capped at the cached entry's known
                    # embedding count is a *truncated* hit: correct, but
                    # the client should know it saw a prefix.
                    prov["cache_detail"] = (
                        "truncated-hit"
                        if cached.status is TerminationStatus.EMBEDDING_LIMIT
                        else "hit"
                    )
                    return cached, "hit", prov
            engine, source, epoch = self.catalog.engine_ex(name)
            prov["engine_source"] = source
            prov["epoch"] = epoch
            if explain == "analyze":
                if workers > 1:
                    self._bump("procpool_dispatches")
                prov["workers"] = workers
                report, result = engine.explain(
                    query, mode="analyze", limits=limits, workers=workers
                )
                report["qcache"] = {"decision": "bypass", "reason": "analyze"}
                prov["explain"] = report
                self._enqueue_analysis(
                    name, sidecar_record(report, trace=trace)
                )
                self._bump("cache_bypass")
                return result, "bypass", prov
            observer = None
            if profile_stride > 0:
                observer = SamplingProfiler(stride=profile_stride)
            if workers > 1 and observer is None:
                self._bump("procpool_dispatches")
            prov["workers"] = 1 if observer is not None else workers
            result = engine.match(
                query, limits=limits, workers=workers, observer=observer
            )
            if observer is not None:
                prov["profile"] = observer.summary()
            if use_cache and form is not None:
                cache.store(form, limits, result)
                with self._counters_lock:
                    self._cache_epochs[name] = epoch
                return result, "miss", prov
            self._bump("cache_bypass")
            return result, "bypass", prov

    def _explain_plan(
        self,
        name: str,
        query: Graph,
        limits: SearchLimits,
        use_cache: bool,
        prov: Dict,
    ) -> Tuple[MatchResult, str, Dict]:
        """EXPLAIN (plan): build + report, never search.

        The qcache slot in the report comes from the cache's
        non-mutating :meth:`~repro.service.qcache.QueryCache.peek` — the
        decision a real request would get, with the cache left
        untouched.  The reply carries a zero-embedding COMPLETE result
        (EXPLAIN returns no rows).
        """
        cache = self._cache_for(name)
        engine, source, epoch = self.catalog.engine_ex(name)
        prov["engine_source"] = source
        prov["epoch"] = epoch
        prov["workers"] = 0
        report, _ = engine.explain(query, mode="plan")
        report["qcache"] = (
            cache.peek(query, limits)
            if use_cache
            else {"decision": "bypass", "reason": "cache_disabled"}
        )
        prov["explain"] = report
        result = MatchResult(
            embeddings=[],
            num_embeddings=0,
            status=TerminationStatus.COMPLETE,
            elapsed_seconds=0.0,
            stats=SearchStats(),
            preprocessing_seconds=report["build_seconds"],
            method="GuP",
        )
        self._bump("cache_bypass")
        return result, "bypass", prov

    def _bump(self, key: str) -> None:
        self.counters.inc(key)

    async def _stream_result(
        self,
        writer: asyncio.StreamWriter,
        result: MatchResult,
        cache_state: str,
        server_seconds: float,
        chunk_size: int,
        queue_seconds: float = 0.0,
        trace: Optional[str] = None,
        profile: Optional[Dict] = None,
        explain: Optional[Dict] = None,
    ) -> None:
        embeddings = result.embeddings
        chunk_count = (len(embeddings) + chunk_size - 1) // chunk_size
        header = {
            "ok": True,
            "num_embeddings": result.num_embeddings,
            "status": result.status.value,
            "cache": cache_state,
            "recursions": result.stats.recursions,
            "elapsed": round(result.total_seconds, 6),
            "server_seconds": round(server_seconds, 6),
            "queue_seconds": round(queue_seconds, 6),
            "chunks": chunk_count,
        }
        if trace is not None:
            header["trace"] = trace
        if profile is not None:
            header["profile"] = profile
        if explain is not None:
            header["explain"] = explain
        await self._send(
            writer,
            header,
        )
        for i in range(chunk_count):
            await self._send(
                writer,
                {"chunk": embeddings[i * chunk_size : (i + 1) * chunk_size]},
            )
        await self._send(writer, {"end": True})

    def _stats_payload(self) -> Dict:
        with self._counters_lock:
            server = dict(self.counters)
            caches = {name: c.stats() for name, c in self._caches.items()}
        server["active"] = self._active
        server["max_inflight"] = self.max_inflight
        server["max_pending"] = self.max_pending
        server["status"] = self.lifecycle.state
        server["reloads"] = self.lifecycle.reloads
        qcache = {
            "per_data": caches,
            "hits": sum(c["hits"] for c in caches.values()),
            "misses": sum(c["misses"] for c in caches.values()),
        }
        return {
            "ok": True,
            "server": server,
            "catalog": self.catalog.stats(),
            "qcache": qcache,
            "tenants": self.tenants.stats(),
            "artifact_builds_in_process": DataArtifacts.builds_performed,
        }

    def _healthz_payload(self) -> Dict:
        """Cheap liveness/readiness probe (never touches the executor).

        Monitoring polls this under overload, so it must answer from
        in-memory state only: load counters, catalog entry epochs and
        pool respawn counters.  ``status`` reports the lifecycle state
        (``draining``/``reloading``/``stopped``) when one is in
        progress, else flips to ``"overloaded"`` exactly when a
        normal-priority query would be shed.
        """
        capacity = self.max_inflight + self.max_pending
        with self._counters_lock:
            subscriptions = sum(len(per) for per in self._subs.values())
        entries = {}
        for name in self.catalog.names():
            try:
                entries[name] = self.catalog.info(name)["epoch"]
            except CatalogError:
                continue  # racing a remove
        uptime = (
            time.monotonic() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        if self.lifecycle.state != SERVING:
            status = self.lifecycle.state
        elif self._active >= capacity:
            status = "overloaded"
        else:
            status = "ok"
        return {
            "ok": True,
            "status": status,
            "active": self._active,
            "capacity": capacity,
            "max_inflight": self.max_inflight,
            "max_pending": self.max_pending,
            "high_headroom": self.high_headroom,
            "entries": entries,
            "pool": dict(POOL_COUNTERS),
            "subscriptions": subscriptions,
            "uptime_seconds": uptime,
        }


class ServerThread:
    """Run a :class:`MatchingServer` on a daemon thread.

    The in-process harness used by the tests and the throughput
    benchmark: ``start()`` blocks until the socket is bound and returns
    ``(host, port)``; ``stop()`` shuts the server down and joins.  Also
    usable as a context manager.
    """

    def __init__(
        self, catalog: GraphCatalog, host: str = "127.0.0.1", port: int = 0,
        **server_kwargs,
    ) -> None:
        self.server = MatchingServer(catalog, **server_kwargs)
        self.address: Optional[Tuple[str, int]] = None
        self.error: Optional[BaseException] = None
        self._host = host
        self._port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._bound = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced via .error
            self.error = exc
            self._bound.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        try:
            self.address = await self.server.start(self._host, self._port)
        finally:
            self._bound.set()
        await self.server.wait_closed()

    def start(self, timeout: float = 30.0) -> Tuple[str, int]:
        self._thread.start()
        if not self._bound.wait(timeout):
            raise RuntimeError("server did not bind in time")
        if self.error is not None:
            raise RuntimeError(f"server failed to start: {self.error!r}")
        assert self.address is not None
        return self.address

    def stop(self, timeout: float = 30.0) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(timeout)
        if self._thread.is_alive():
            # A hung shutdown must fail loudly: a daemon thread that
            # never exits would otherwise let broken-teardown bugs pass
            # every test invisibly.
            raise RuntimeError(
                f"server thread failed to stop within {timeout}s"
            )

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
