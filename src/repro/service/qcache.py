"""Query canonicalization and the isomorphism-aware result cache.

Real matching workloads repeat themselves: the same handful of query
*shapes* arrives over and over, usually with the vertices numbered
differently by whatever produced them.  This module gives every labeled
query graph a **canonical form** so isomorphic queries share one cache
slot:

* **Color refinement** (1-WL): vertices start colored by label and are
  repeatedly split by the multiset of neighbor colors until stable.
  This alone distinguishes most query graphs but is not complete.
* **Backtracking canonical labeling** (individualization-refinement):
  when refinement leaves non-singleton color classes, the smallest
  class is individualized vertex by vertex and refined again, exploring
  every branch; the lexicographically smallest edge encoding over all
  discrete leaves is the canonical form.  This is exact — two graphs
  get the same key *iff* they are isomorphic — and cheap for the small
  query graphs of this workload (≤ a few dozen vertices).  A node
  budget bounds the worst case (highly symmetric same-label graphs);
  on overrun the key degrades to the exact graph encoding (identical
  numbering only), which is still sound, merely less shared.

Cache-cap semantics (:class:`QueryCache`): the engine's
``max_embeddings`` truncation is *prefix-exact* — a capped run returns
exactly the first ``max(cap, 1)`` embeddings of the full deterministic
enumeration (DESIGN.md §6).  Therefore a cached **complete** enumeration
can serve any lower cap by slicing — for an identically-numbered repeat
this reproduces the capped run bit for bit — while a cached
**truncated** run (at cap ``C``) can only serve requests with cap ≤
``C``; higher caps are cache misses.  A *merely-isomorphic* hit serves
the representative's enumeration translated through the witness
isomorphism: exact as a set when complete, and a valid prefix
(cap-many correct, distinct embeddings) when capped — enumeration
order is numbering-dependent, so only same-numbering repeats can be
order-identical to a direct run.  Time and
recursion budgets never *invalidate* a cached answer (a budget caps
effort, and the cached answer is already computed), but a run that was
*killed* by one (``TIMEOUT``) proves nothing and is never cached.

One :class:`QueryCache` serves one (data graph, config) pair — the
server keeps a cache per catalog entry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.graph.graph import Graph
from repro.matching.limits import SearchLimits
from repro.matching.result import MatchResult, SearchStats, TerminationStatus
from repro.obs.metrics import CounterGroup

DEFAULT_LEAF_BUDGET = 4096
"""Individualization-refinement node budget before falling back to the
exact-encoding key.  Generous for real query sets: an 8-vertex query
explores a handful of nodes; only pathological same-label cliques blow
up, and those fall back soundly."""


# ----------------------------------------------------------------------
# Color refinement + canonical labeling
# ----------------------------------------------------------------------


def _label_sort_key(label: object) -> Tuple[str, str]:
    """Deterministic, cross-type, cross-process ordering for labels."""
    return (type(label).__name__, repr(label))


def _initial_colors(graph: Graph) -> List[int]:
    palette = {
        label: i
        for i, label in enumerate(sorted(set(graph.labels), key=_label_sort_key))
    }
    return [palette[label] for label in graph.labels]


def refine_colors(graph: Graph, colors: Optional[List[int]] = None) -> List[int]:
    """Stable 1-WL coloring (dense ints, deterministic numbering).

    Starting colors default to the label classes.  Each round recolors a
    vertex by ``(color, sorted multiset of neighbor colors)`` and
    re-ranks densely; refinement only ever splits classes, so the loop
    stabilizes within ``num_vertices`` rounds.
    """
    if colors is None:
        colors = _initial_colors(graph)
    n = graph.num_vertices
    while True:
        signatures = [
            (colors[v], tuple(sorted(colors[w] for w in graph.neighbors(v))))
            for v in range(n)
        ]
        ranks = {
            signature: rank
            for rank, signature in enumerate(sorted(set(signatures)))
        }
        refined = [ranks[signature] for signature in signatures]
        if refined == colors:
            return colors
        colors = refined


class _BudgetExceeded(Exception):
    pass


def _leaf_encoding(
    graph: Graph, colors: List[int]
) -> Tuple[Tuple[int, ...], Tuple[Tuple[int, int], ...]]:
    """(perm, canonical edge list) for a discrete coloring.

    ``perm[p]`` is the vertex at canonical position ``p`` (= the vertex
    with color ``p``: discrete refined colors are dense ranks).
    """
    perm = sorted(range(graph.num_vertices), key=colors.__getitem__)
    position = [0] * graph.num_vertices
    for p, v in enumerate(perm):
        position[v] = p
    edges = sorted(
        (min(position[u], position[v]), max(position[u], position[v]))
        for u, v in graph.edges()
    )
    return tuple(perm), tuple(edges)


def _canonical_search(
    graph: Graph, budget: int
) -> Tuple[Tuple[int, ...], Tuple[Tuple[int, int], ...]]:
    """Exhaustive individualization-refinement; smallest encoding wins.

    Raises :class:`_BudgetExceeded` past ``budget`` visited nodes.
    """
    best: Optional[Tuple[Tuple[Tuple[int, int], ...], Tuple[int, ...]]] = None
    nodes = 0

    def descend(colors: List[int]) -> None:
        nonlocal best, nodes
        nodes += 1
        if nodes > budget:
            raise _BudgetExceeded
        cells: Dict[int, List[int]] = {}
        for v, c in enumerate(colors):
            cells.setdefault(c, []).append(v)
        target: Optional[List[int]] = None
        for c in sorted(cells):
            cell = cells[c]
            if len(cell) > 1 and (target is None or len(cell) < len(target)):
                target = cell
        if target is None:  # discrete: a leaf
            perm, edges = _leaf_encoding(graph, colors)
            if best is None or edges < best[0]:
                best = (edges, perm)
            return
        for v in target:
            individualized = [2 * c for c in colors]
            individualized[v] += 1
            descend(refine_colors(graph, individualized))

    descend(refine_colors(graph))
    assert best is not None
    return best[1], best[0]


@dataclass(frozen=True)
class CanonicalForm:
    """Canonical key of a labeled query graph plus the witness numbering.

    ``key`` is hashable and — when ``exact`` is true — equal between two
    graphs iff they are isomorphic (respecting labels).  ``perm[p]`` is
    the *original* vertex id occupying canonical position ``p``; it is
    what lets a cached result computed for one representative be
    translated to any isomorphic query's numbering.
    """

    key: Tuple
    perm: Tuple[int, ...]
    exact: bool


def canonical_form(
    graph: Graph, leaf_budget: int = DEFAULT_LEAF_BUDGET
) -> CanonicalForm:
    """Canonical form of ``graph`` (see module docstring).

    Falls back to the exact-encoding key (identical numbering only, with
    the identity witness) when the canonical search exceeds
    ``leaf_budget`` nodes.
    """
    n = graph.num_vertices
    try:
        perm, edges = _canonical_search(graph, leaf_budget)
    except _BudgetExceeded:
        identity = tuple(range(n))
        key = (
            "exact",
            n,
            graph.labels,
            tuple(sorted(graph.edges())),
        )
        return CanonicalForm(key, identity, False)
    labels = tuple(graph.label(v) for v in perm)
    return CanonicalForm(("canon", n, labels, edges), perm, True)


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------


class _Entry:
    """One cached enumeration, stored in its producer's numbering."""

    __slots__ = ("perm", "embeddings", "total", "complete", "cap", "stats",
                 "has_embeddings")

    def __init__(
        self,
        perm: Tuple[int, ...],
        embeddings: Optional[List[Tuple[int, ...]]],
        total: int,
        complete: bool,
        cap: Optional[int],
        stats: SearchStats,
    ) -> None:
        self.perm = perm
        self.embeddings = embeddings if embeddings is not None else []
        self.has_embeddings = embeddings is not None
        self.total = total
        self.complete = complete
        self.cap = cap
        self.stats = stats

    def rank(self) -> Tuple[int, int, float]:
        """Dominance order: complete+embeddings > complete count-only >
        truncated (higher caps dominate lower)."""
        if self.complete:
            return (1, int(self.has_embeddings), float("inf"))
        return (0, int(self.has_embeddings), float(max(self.cap or 0, 1)))


class QueryCache:
    """LRU cache of match results keyed by query canonical form.

    Thread-safe; one instance per (data graph, config) pair.  Set
    ``cap_serving=False`` when the engine config breaks symmetry: capped
    runs then report ``num_embeddings`` as representatives × orbit size,
    which a sliced cache hit cannot reproduce, so only exact-complete
    hits are served.
    """

    def __init__(
        self,
        max_entries: int = 256,
        leaf_budget: int = DEFAULT_LEAF_BUDGET,
        cap_serving: bool = True,
    ) -> None:
        self.max_entries = max_entries
        self.leaf_budget = leaf_budget
        self.cap_serving = cap_serving
        self._entries: "OrderedDict[Tuple, _Entry]" = OrderedDict()
        self._lock = threading.RLock()
        # CounterGroup: dict-like, thread-safe, attachable to a metrics
        # registry so /metrics reads the same storage stats() snapshots.
        self.counters = CounterGroup({
            "hits": 0,
            "misses": 0,
            "puts": 0,
            "updates": 0,
            "evictions": 0,
            "uncacheable": 0,
            "translated_hits": 0,
            "inexact_keys": 0,
            "delta_kept": 0,
            "delta_evicted": 0,
            "delta_invalidations": 0,
        })

    # -- public API ----------------------------------------------------

    def lookup(
        self, query: Graph, limits: SearchLimits
    ) -> Tuple[Optional[MatchResult], CanonicalForm]:
        """Serve ``query`` from cache if possible.

        Returns ``(result, form)``; ``result`` is ``None`` on a miss and
        ``form`` should be passed back to :meth:`store` after the engine
        runs, so canonicalization happens once per request.
        """
        form = canonical_form(query, self.leaf_budget)
        with self._lock:
            if not form.exact:
                self.counters["inexact_keys"] += 1
            entry = self._entries.get(form.key)
            if entry is None:
                self.counters["misses"] += 1
                return None, form
            served = self._serve(entry, form, limits)
            if served is None:
                self.counters["misses"] += 1
                return None, form
            self._entries.move_to_end(form.key)
            self.counters["hits"] += 1
            return served, form

    def peek(self, query: Graph, limits: SearchLimits) -> Dict[str, object]:
        """EXPLAIN's view of the serve decision — observe, never serve.

        Mirrors :meth:`_serve`'s decision logic without materializing
        embeddings, bumping any counter, or touching LRU order, so an
        EXPLAIN (plan) request reports exactly what a real request would
        get from the cache while leaving the cache byte-identical.
        """
        form = canonical_form(query, self.leaf_budget)
        with self._lock:
            entry = self._entries.get(form.key)
            report: Dict[str, object] = {"exact_key": form.exact}
            if entry is None:
                report.update(decision="miss", reason="absent")
                return report
            report.update(
                entry_complete=entry.complete,
                cached_embeddings=entry.total,
            )
            cap = limits.max_embeddings
            stop = None if cap is None else max(cap, 1)
            if limits.collect and not entry.has_embeddings:
                report.update(decision="miss", reason="count_only_entry")
            elif entry.complete:
                if stop is not None and entry.total >= stop:
                    if self.cap_serving:
                        report.update(
                            decision="hit", served="truncated",
                            num_embeddings=stop,
                        )
                    else:
                        report.update(
                            decision="miss", reason="cap_serving_disabled"
                        )
                else:
                    report.update(
                        decision="hit", served="complete",
                        num_embeddings=entry.total,
                    )
            elif stop is None:
                report.update(
                    decision="miss", reason="truncated_entry_uncapped_request"
                )
            elif not self.cap_serving:
                report.update(decision="miss", reason="cap_serving_disabled")
            elif stop > max(entry.cap or 0, 1):
                report.update(
                    decision="miss", reason="cached_truncation_too_short"
                )
            else:
                report.update(
                    decision="hit", served="truncated", num_embeddings=stop
                )
            return report

    def store(
        self,
        form: CanonicalForm,
        limits: SearchLimits,
        result: MatchResult,
    ) -> bool:
        """Offer a fresh engine result for caching.

        Only deterministic, reproducible outcomes are kept (see module
        docstring): ``COMPLETE`` runs always; ``EMBEDDING_LIMIT`` runs
        as truncated-at-cap entries when they materialized exactly their
        ``num_embeddings``; ``TIMEOUT`` runs never.  Returns whether the
        result was stored.
        """
        entry = self._make_entry(form, limits, result)
        with self._lock:
            if entry is None:
                self.counters["uncacheable"] += 1
                return False
            existing = self._entries.get(form.key)
            if existing is not None and existing.rank() >= entry.rank():
                self._entries.move_to_end(form.key)
                return False
            if existing is None:
                self.counters["puts"] += 1
            else:
                self.counters["updates"] += 1
            self._entries[form.key] = entry
            self._entries.move_to_end(form.key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.counters["evictions"] += 1
            return True

    def invalidate_labels(self, touched_labels) -> Tuple[int, int]:
        """Selective invalidation after a data-graph delta.

        Evicts exactly the entries whose query label set intersects
        ``touched_labels``; every other entry provably survives the
        delta: an embedding gains or loses validity only through a
        changed data edge or an added vertex, whose (touched) label
        some query vertex would have to carry.  Both canonical and
        exact-encoding cache keys store the query's label tuple at a
        fixed position, so the test reads no graphs.  Returns
        ``(kept, evicted)``.
        """
        touched = frozenset(touched_labels)
        kept = evicted = 0
        with self._lock:
            self.counters["delta_invalidations"] += 1
            for key in list(self._entries):
                # key == ("canon" | "exact", n, labels, edges)
                if touched.intersection(key[2]):
                    del self._entries[key]
                    evicted += 1
                else:
                    kept += 1
            self.counters["delta_kept"] += kept
            self.counters["delta_evicted"] += evicted
        return kept, evicted

    def stats(self) -> Dict[str, int]:
        with self._lock:
            out = dict(self.counters)
            out["entries"] = len(self._entries)
            return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- internals -----------------------------------------------------

    def _make_entry(
        self, form: CanonicalForm, limits: SearchLimits, result: MatchResult
    ) -> Optional[_Entry]:
        if result.status is TerminationStatus.TIMEOUT:
            return None
        stats = replace(result.stats)
        if result.status is TerminationStatus.COMPLETE:
            if limits.collect:
                if result.num_embeddings != len(result.embeddings):
                    return None
                embeddings: Optional[List[Tuple[int, ...]]] = [
                    tuple(e) for e in result.embeddings
                ]
            else:
                embeddings = None
            return _Entry(
                form.perm, embeddings, result.num_embeddings, True, None, stats
            )
        # EMBEDDING_LIMIT: keep only fully-materialized prefix runs.
        if not limits.collect or limits.max_embeddings is None:
            return None
        if result.num_embeddings != len(result.embeddings):
            return None  # e.g. symmetry expansion: prefix not materialized
        return _Entry(
            form.perm,
            [tuple(e) for e in result.embeddings],
            result.num_embeddings,
            False,
            limits.max_embeddings,
            stats,
        )

    def _serve(
        self, entry: _Entry, form: CanonicalForm, limits: SearchLimits
    ) -> Optional[MatchResult]:
        cap = limits.max_embeddings
        # The engine checks the cap after recording, so cap=0 still
        # yields the first embedding; mirror that stop threshold.
        stop = None if cap is None else max(cap, 1)
        if entry.complete:
            if stop is not None and entry.total >= stop:
                if not self.cap_serving:
                    return None
                count, status = stop, TerminationStatus.EMBEDDING_LIMIT
            else:
                count, status = entry.total, TerminationStatus.COMPLETE
        else:
            if stop is None or not self.cap_serving:
                return None
            if stop > max(entry.cap or 0, 1):
                return None  # cached truncation is shorter than requested
            count, status = stop, TerminationStatus.EMBEDDING_LIMIT
        if limits.collect and not entry.has_embeddings:
            return None

        embeddings: List[Tuple[int, ...]] = []
        if limits.collect:
            prefix = entry.embeddings[:count]
            mapping = self._compose(entry.perm, form.perm)
            if mapping is None:  # identity: the common exact-repeat case
                embeddings = list(prefix)
            else:
                self.counters["translated_hits"] += 1
                embeddings = [
                    tuple(e[mapping[u]] for u in range(len(mapping)))
                    for e in prefix
                ]
        return MatchResult(
            embeddings=embeddings,
            num_embeddings=count,
            status=status,
            elapsed_seconds=0.0,
            stats=replace(entry.stats),
            preprocessing_seconds=0.0,
            method="GuP",
        )

    @staticmethod
    def _compose(
        entry_perm: Tuple[int, ...], query_perm: Tuple[int, ...]
    ) -> Optional[List[int]]:
        """``mapping[u_query] = u_entry`` via the shared canonical form.

        Both perms map canonical position → vertex; composing the
        inverse of the query's with the entry's carries an embedding
        indexed by entry vertices to one indexed by query vertices.
        Returns ``None`` for the identity (no translation needed).
        """
        if entry_perm == query_perm:
            return None
        n = len(query_perm)
        position = [0] * n
        for p, u in enumerate(query_perm):
            position[u] = p
        return [entry_perm[position[u]] for u in range(n)]
