"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``match``      run a matcher on query/data ``.graph`` files
``batch``      match a whole query set (glob) with a process-pool engine
``dataset``    synthesize a benchmark stand-in graph to a ``.graph`` file
``querygen``   extract queries from a data graph (random walk / cycles / mined)
``inspect``    print candidate-space and guard statistics for a query
``methods``    list registered matchers
``catalog``    manage the persistent graph catalog
               (``add``/``list``/``info``/``warm``/``remove``)
``serve``      run the long-running matching server over a catalog
``query``      send queries to a running server (blocking client)
``update``     apply a graph delta to an entry on a running server
``stats``      print a running server's counters as a table
``metrics``    print a running server's Prometheus exposition
``reload``     zero-downtime catalog reload on a running server
``drain``      gracefully drain and stop a running server
``trace``      export one trace's spans as Chrome trace-event JSON

Examples
--------
::

    python -m repro dataset yeast --out yeast.graph
    python -m repro querygen yeast.graph --size 8 --density sparse \
        --count 3 --out-prefix q
    python -m repro match q0.graph yeast.graph --method GuP --limit 10
    python -m repro batch 'q*.graph' yeast.graph --workers 4 --limit 1000
    python -m repro inspect q0.graph yeast.graph
    python -m repro catalog add yeast yeast.graph --root ./catalog
    python -m repro serve --root ./catalog --port 7464
    python -m repro query 'q*.graph' yeast --port 7464 --limit 10
    python -m repro update yeast edits.delta --port 7464
    python -m repro stats 127.0.0.1 7464
    python -m repro metrics 127.0.0.1 7464
    python -m repro reload 127.0.0.1 7464
    python -m repro drain 127.0.0.1 7464 --timeout 10
    python -m repro query q0.graph yeast --explain analyze
    python -m repro trace <trace-id> --log requests.jsonl --out trace.json
"""

from __future__ import annotations

import argparse
import glob as globlib
import os
import sys
import time
from typing import List, Optional

from repro.baselines.registry import MATCHERS, PAPER_METHODS, get_matcher
from repro.core.config import GuPConfig
from repro.core.gcs import build_gcs
from repro.graph.io import load_graph, save_graph
from repro.matching.limits import SearchLimits
from repro.workload.datasets import DATASETS, load_dataset
from repro.workload.hardness import generate_cycle_query, mine_hard_queries
from repro.workload.querygen import generate_query


def _add_match_parser(subparsers) -> None:
    p = subparsers.add_parser("match", help="run a matcher on .graph files")
    p.add_argument("query", help="query .graph file")
    p.add_argument("data", help="data .graph file")
    p.add_argument("--method", default="GuP", choices=MATCHERS)
    p.add_argument("--limit", type=int, default=None,
                   help="stop after this many embeddings")
    p.add_argument("--time-limit", type=float, default=None,
                   help="kill the search after SECONDS")
    p.add_argument("--recursion-limit", type=int, default=None,
                   help="kill the search after this many recursions")
    p.add_argument("--count-only", action="store_true",
                   help="print only the embedding count")
    p.add_argument("--max-print", type=int, default=20,
                   help="print at most this many embeddings")


def _add_batch_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "batch",
        help="match a query set against one data graph (process pool)",
    )
    p.add_argument("queries",
                   help="glob of query .graph files (quote it), or one file")
    p.add_argument("data", help="data .graph file")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (1 = in-process, artifacts still "
                        "shared across the set)")
    p.add_argument("--limit", type=int, default=None,
                   help="stop each query after this many embeddings")
    p.add_argument("--time-limit", type=float, default=None,
                   help="per-query wall-clock kill (seconds)")
    p.add_argument("--recursion-limit", type=int, default=None,
                   help="per-query virtual-time kill (recursions)")
    p.add_argument("--count-only", action="store_true",
                   help="count embeddings without materializing them")


def _add_dataset_parser(subparsers) -> None:
    p = subparsers.add_parser("dataset", help="synthesize a stand-in graph")
    p.add_argument("name", choices=sorted(DATASETS))
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=2023)
    p.add_argument("--out", required=True, help="output .graph path")


def _add_querygen_parser(subparsers) -> None:
    p = subparsers.add_parser("querygen", help="extract queries from a graph")
    p.add_argument("data", help="data .graph file")
    p.add_argument("--size", type=int, default=8)
    p.add_argument("--density", choices=["sparse", "dense"], default="sparse")
    p.add_argument("--kind", choices=["walk", "cycle", "hard"], default="walk")
    p.add_argument("--count", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out-prefix", default="query",
                   help="queries are written to <prefix><i>.graph")


def _add_inspect_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "inspect", help="candidate space + guard statistics for a query"
    )
    p.add_argument("query", help="query .graph file")
    p.add_argument("data", help="data .graph file")
    p.add_argument("--reservation-limit", type=int, default=3)


def _add_bench_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "bench", help="quick method comparison on a synthetic workload"
    )
    p.add_argument("--dataset", default="wordnet", choices=sorted(DATASETS))
    p.add_argument("--size", type=int, default=16)
    p.add_argument("--density", choices=["sparse", "dense"], default="sparse")
    p.add_argument("--count", type=int, default=4)
    p.add_argument("--hard", action="store_true",
                   help="mine the hard tail instead of random-walk queries")
    p.add_argument("--methods", nargs="+", default=list(PAPER_METHODS))
    p.add_argument("--recursion-limit", type=int, default=20_000)
    p.add_argument("--seed", type=int, default=2023)


def _add_catalog_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "catalog", help="manage the persistent graph catalog"
    )
    sp = p.add_subparsers(dest="catalog_command", required=True)
    add = sp.add_parser("add", help="register a data graph under a name")
    add.add_argument("name", help="catalog entry name")
    add.add_argument("graph", help="data .graph file")
    add.add_argument("--root", default="catalog", help="catalog directory")
    add.add_argument("--overwrite", action="store_true",
                     help="replace an existing entry with a different graph")
    lst = sp.add_parser("list", help="list registered graphs")
    lst.add_argument("--root", default="catalog", help="catalog directory")
    warm = sp.add_parser(
        "warm", help="verify/rebuild an entry's on-disk artifacts"
    )
    warm.add_argument("names", nargs="+", help="entries to warm")
    warm.add_argument("--root", default="catalog", help="catalog directory")
    info = sp.add_parser("info", help="show one entry's metadata")
    info.add_argument("name", help="catalog entry name")
    info.add_argument("--root", default="catalog", help="catalog directory")
    remove = sp.add_parser("remove", help="delete an entry from the catalog")
    remove.add_argument("names", nargs="+", help="entries to remove")
    remove.add_argument("--root", default="catalog", help="catalog directory")


def _add_serve_parser(subparsers) -> None:
    from repro.service.server import DEFAULT_PORT

    p = subparsers.add_parser(
        "serve", help="run the long-running matching server"
    )
    p.add_argument("--root", default="catalog", help="catalog directory")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=DEFAULT_PORT,
                   help="TCP port (0 = pick a free one and print it)")
    p.add_argument("--max-inflight", type=int, default=2,
                   help="queries executing concurrently")
    p.add_argument("--max-pending", type=int, default=8,
                   help="admitted-but-waiting queries before rejection")
    p.add_argument("--max-resident", type=int, default=4,
                   help="data graphs kept warm in memory (LRU)")
    p.add_argument("--cache-entries", type=int, default=256,
                   help="query-cache slots per data graph")
    p.add_argument("--time-limit", type=float, default=None,
                   help="default per-query wall-clock budget (seconds)")
    p.add_argument("--recursion-limit", type=int, default=None,
                   help="default per-query recursion budget")
    p.add_argument("--high-headroom", type=int, default=1,
                   help="reserve slots only high-priority queries may use")
    p.add_argument("--subscriber-queue", type=int, default=64,
                   help="buffered diff events per subscriber")
    p.add_argument("--subscriber-policy", default="disconnect",
                   choices=("disconnect", "drop"),
                   help="what to do when a subscriber's queue overflows")
    p.add_argument("--request-log", default=None, metavar="PATH",
                   help="append one structured JSON log line per request "
                        "to PATH (trace ids propagate into pool workers)")
    p.add_argument("--tenants", default=None, metavar="FILE",
                   help="JSON file of per-tenant admission classes "
                        "(rate/burst/max_inflight/weight/max_workers)")
    p.add_argument("--tenant", action="append", default=[], metavar="SPEC",
                   help="inline tenant class 'name:key=val,...' "
                        "(repeatable; overrides --tenants entries)")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   help="graceful-drain wait for in-flight queries on "
                        "SIGINT/SIGTERM or the 'drain' op (seconds)")


def _add_query_parser(subparsers) -> None:
    from repro.service.server import DEFAULT_PORT

    p = subparsers.add_parser(
        "query", help="send queries to a running matching server"
    )
    p.add_argument("queries",
                   help="glob of query .graph files (quote it), or one file")
    p.add_argument("data", help="catalog entry name on the server")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=DEFAULT_PORT)
    p.add_argument("--limit", type=int, default=None,
                   help="stop each query after this many embeddings")
    p.add_argument("--time-limit", type=float, default=None,
                   help="per-query wall-clock kill (seconds)")
    p.add_argument("--recursion-limit", type=int, default=None,
                   help="per-query virtual-time kill (recursions)")
    p.add_argument("--workers", type=int, default=1,
                   help="root-partitioned procpool workers on the server")
    p.add_argument("--count-only", action="store_true",
                   help="count embeddings without materializing them")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the server's query cache")
    p.add_argument("--max-print", type=int, default=5,
                   help="print at most this many embeddings per query")
    p.add_argument("--priority", default=None,
                   choices=("high", "normal", "low"),
                   help="load-shedding class on an overloaded server")
    p.add_argument("--tenant", default=None,
                   help="tenant name stamped on every request (admission "
                        "class on a multi-tenant server)")
    p.add_argument("--deadline", type=float, default=None,
                   help="total wall-clock budget per query incl. retries")
    p.add_argument("--retries", type=int, default=0,
                   help="retry attempts for shed/broken requests")
    p.add_argument("--profile", action="store_true",
                   help="bypass the cache and attach a search-level "
                        "profiler summary to each reply")
    p.add_argument("--explain", default=None, choices=("plan", "analyze"),
                   help="attach an EXPLAIN report: 'plan' reports the "
                        "matching order/filters without searching, "
                        "'analyze' runs the real search and attributes "
                        "the work (cache bypassed)")


def _add_trace_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "trace",
        help="export one trace's spans as Chrome trace-event JSON",
    )
    p.add_argument("trace", help="trace id (from a query reply or log line)")
    p.add_argument("--log", required=True,
                   help="structured request log (JSON lines) to read")
    p.add_argument("--out", default="trace.json",
                   help="output path for the Chrome trace-event JSON")


def _add_stats_parser(subparsers) -> None:
    from repro.service.server import DEFAULT_PORT

    p = subparsers.add_parser(
        "stats", help="print a running server's counters as a table"
    )
    p.add_argument("host", nargs="?", default="127.0.0.1")
    p.add_argument("port", nargs="?", type=int, default=DEFAULT_PORT)


def _add_metrics_parser(subparsers) -> None:
    from repro.service.server import DEFAULT_PORT

    p = subparsers.add_parser(
        "metrics",
        help="print a running server's Prometheus text exposition",
    )
    p.add_argument("host", nargs="?", default="127.0.0.1")
    p.add_argument("port", nargs="?", type=int, default=DEFAULT_PORT)


def _add_reload_parser(subparsers) -> None:
    from repro.service.server import DEFAULT_PORT

    p = subparsers.add_parser(
        "reload",
        help="zero-downtime catalog reload on a running server",
    )
    p.add_argument("host", nargs="?", default="127.0.0.1")
    p.add_argument("port", nargs="?", type=int, default=DEFAULT_PORT)


def _add_drain_parser(subparsers) -> None:
    from repro.service.server import DEFAULT_PORT

    p = subparsers.add_parser(
        "drain",
        help="gracefully drain and stop a running server",
    )
    p.add_argument("host", nargs="?", default="127.0.0.1")
    p.add_argument("port", nargs="?", type=int, default=DEFAULT_PORT)
    p.add_argument("--timeout", type=float, default=None,
                   help="wait this long for in-flight queries "
                        "(default: the server's --drain-timeout)")


def _add_update_parser(subparsers) -> None:
    from repro.service.server import DEFAULT_PORT

    p = subparsers.add_parser(
        "update",
        help="apply a graph delta to an entry on a running server",
    )
    p.add_argument("data", help="catalog entry name on the server")
    p.add_argument("delta",
                   help="delta file (av <label> / ae <u> <v> / re <u> <v>)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=DEFAULT_PORT)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GuP subgraph matching (SIGMOD 2023 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_match_parser(subparsers)
    _add_batch_parser(subparsers)
    _add_dataset_parser(subparsers)
    _add_querygen_parser(subparsers)
    _add_inspect_parser(subparsers)
    _add_bench_parser(subparsers)
    _add_catalog_parser(subparsers)
    _add_serve_parser(subparsers)
    _add_query_parser(subparsers)
    _add_update_parser(subparsers)
    _add_stats_parser(subparsers)
    _add_metrics_parser(subparsers)
    _add_reload_parser(subparsers)
    _add_drain_parser(subparsers)
    _add_trace_parser(subparsers)
    subparsers.add_parser("methods", help="list registered matchers")
    return parser


def _cmd_match(args) -> int:
    query = load_graph(args.query)
    data = load_graph(args.data)
    limits = SearchLimits(
        max_embeddings=args.limit,
        time_limit=args.time_limit,
        max_recursions=args.recursion_limit,
        collect=not args.count_only,
    )
    result = get_matcher(args.method).match(query, data, limits)
    print(f"method:      {result.method}")
    print(f"embeddings:  {result.num_embeddings}")
    print(f"status:      {result.status.value}")
    print(f"time:        {result.total_seconds:.4f}s "
          f"(preprocessing {result.preprocessing_seconds:.4f}s)")
    print(f"recursions:  {result.stats.recursions} "
          f"({result.stats.futile_recursions} futile)")
    if not args.count_only:
        shown = result.embeddings[: args.max_print]
        for e in shown:
            print("  " + " ".join(f"u{i}->v{v}" for i, v in enumerate(e)))
        hidden = result.num_embeddings - len(shown)
        if hidden > 0:
            print(f"  ... and {hidden} more")
    return 0


def _expand_queries(pattern: str) -> List[str]:
    """Query workload paths for a glob (or literal path) argument.

    Empty means *no matching files*, so callers can fail loudly instead
    of running a silent empty workload.  A literal path wins over its
    glob reading when the file exists (e.g. a file actually named
    ``q[1].graph``).
    """
    paths = sorted(globlib.glob(pattern))
    if not paths and os.path.exists(pattern):
        return [pattern]
    return paths


def _cmd_batch(args) -> int:
    from repro.bench.report import format_table
    from repro.core.engine import GuPEngine

    paths = _expand_queries(args.queries)
    if not paths:
        print(f"error: no query files match {args.queries!r}", file=sys.stderr)
        return 2
    try:
        queries = [load_graph(path) for path in paths]
        data = load_graph(args.data)
    except (OSError, ValueError) as exc:  # missing file or malformed .graph
        print(f"error: {exc}", file=sys.stderr)
        return 1
    limits = SearchLimits(
        max_embeddings=args.limit,
        time_limit=args.time_limit,
        max_recursions=args.recursion_limit,
        collect=not args.count_only,
    )
    engine = GuPEngine(data)
    started = time.perf_counter()
    results = engine.match_many(queries, limits=limits, workers=args.workers)
    wall = time.perf_counter() - started

    rows = []
    for path, result in zip(paths, results):
        rows.append(
            [
                path,
                result.num_embeddings,
                result.status.value,
                result.stats.recursions,
                f"{result.total_seconds:.4f}s",
            ]
        )
    print(
        format_table(
            ["Query", "Embeddings", "Status", "Recursions", "Time"],
            rows,
            title=(
                f"batch: {len(queries)} queries vs {args.data} "
                f"(workers={args.workers})"
            ),
        )
    )
    total_embeddings = sum(r.num_embeddings for r in results)
    total_recursions = sum(r.stats.recursions for r in results)
    print(f"total embeddings: {total_embeddings}")
    print(f"total recursions: {total_recursions}")
    print(f"wall time:        {wall:.4f}s")
    return 0


def _cmd_dataset(args) -> int:
    graph = load_dataset(args.name, scale=args.scale, seed=args.seed)
    save_graph(graph, args.out)
    print(f"wrote {args.out}: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges, {len(graph.label_set)} labels")
    return 0


def _cmd_querygen(args) -> int:
    data = load_graph(args.data)
    queries = []
    if args.kind == "walk":
        for i in range(args.count):
            queries.append(
                generate_query(data, args.size, args.density, seed=args.seed + i)
            )
    elif args.kind == "cycle":
        for i in range(args.count):
            q = generate_cycle_query(
                data, max(3, args.size - 2), args.size + 2, seed=args.seed + i
            )
            if q is None:
                print("error: data graph has no cycle of the requested length",
                      file=sys.stderr)
                return 1
            queries.append(q)
    else:  # hard
        queries = mine_hard_queries(
            data, count=args.count, size=args.size, density=args.density,
            seed=args.seed,
        )
    for i, q in enumerate(queries):
        path = f"{args.out_prefix}{i}.graph"
        save_graph(q, path)
        print(f"wrote {path}: {q.num_vertices} vertices, {q.num_edges} edges "
              f"(avg degree {q.average_degree():.2f})")
    return 0


def _cmd_inspect(args) -> int:
    query = load_graph(args.query)
    data = load_graph(args.data)
    config = GuPConfig(reservation_limit=args.reservation_limit)
    gcs = build_gcs(query, data, config)

    print(f"query: {query}")
    print(f"data:  {data}")
    print(f"matching order (original ids): {gcs.order}")
    print(f"candidate space: {gcs.cs.total_candidates()} vertices, "
          f"{gcs.cs.num_candidate_edges} edges")
    for i in gcs.query.vertices():
        size = len(gcs.cs.candidates[i])
        print(f"  u{gcs.order[i]} (step {i}): {size} candidates")

    nontrivial = sum(
        1
        for (i, v), guard in gcs.reservations.items()
        if guard != frozenset((v,))
    )
    print(f"reservation guards: {len(gcs.reservations)} total, "
          f"{nontrivial} non-trivial")
    print(f"2-core query edges (NE-guard eligible): {len(gcs.two_core)}")
    print(f"GCS build time: {gcs.build_seconds:.4f}s")
    return 0


def _cmd_bench(args) -> int:
    from repro.bench.report import format_table

    data = load_dataset(args.dataset, seed=args.seed)
    if args.hard:
        queries = mine_hard_queries(
            data, count=args.count, size=args.size, density=args.density,
            seed=args.seed,
        )
    else:
        queries = [
            generate_query(data, args.size, args.density, seed=args.seed + i)
            for i in range(args.count)
        ]
    limits = SearchLimits(
        max_embeddings=1_000,
        max_recursions=args.recursion_limit,
        collect=False,
    )

    rows = []
    for method in args.methods:
        matcher = get_matcher(method)
        recursions = embeddings = timeouts = 0
        wall = 0.0
        for query in queries:
            result = matcher.match(query, data, limits)
            recursions += result.stats.recursions
            embeddings += result.num_embeddings
            timeouts += int(result.timed_out)
            wall += result.total_seconds
        rows.append(
            [method, recursions, embeddings, timeouts, f"{wall:.2f}s"]
        )
    rows.sort(key=lambda r: r[1])
    print(
        format_table(
            ["Method", "Recursions", "Embeddings", "Kills", "Wall"],
            rows,
            title=(
                f"{args.dataset} {args.size}{args.density[0].upper()} "
                f"({'hard' if args.hard else 'random'} x{len(queries)}, "
                f"kill={args.recursion_limit} recursions)"
            ),
        )
    )
    return 0


def _cmd_methods(_args) -> int:
    for name in MATCHERS:
        print(name)
    return 0


def _cmd_catalog(args) -> int:
    from repro.service.catalog import CatalogError, GraphCatalog

    catalog = GraphCatalog(args.root)
    try:
        if args.catalog_command == "add":
            info = catalog.add(args.name, args.graph, overwrite=args.overwrite)
            print(f"added {info['name']}: {info['num_vertices']} vertices, "
                  f"{info['num_edges']} edges "
                  f"(checksum {str(info['graph_checksum'])[:12]})")
        elif args.catalog_command == "list":
            names = catalog.names()
            if not names:
                print(f"catalog {args.root}: empty")
            for name in names:
                info = catalog.info(name)
                print(f"{name}: {info['num_vertices']} vertices, "
                      f"{info['num_edges']} edges "
                      f"(checksum {str(info['graph_checksum'])[:12]})")
        elif args.catalog_command == "info":
            info = catalog.info(args.name)
            print(f"name:       {info['name']}")
            print(f"vertices:   {info['num_vertices']}")
            print(f"edges:      {info['num_edges']}")
            print(f"epoch:      {info['epoch']}")
            print(f"checksum:   {info['graph_checksum']}")
            print(f"resident:   {'yes' if info['resident'] else 'no'}")
        elif args.catalog_command == "remove":
            for name in args.names:
                catalog.remove(name)
                print(f"removed {name}")
        else:  # warm
            for name in args.names:
                rebuilt = catalog.warm(name)
                print(f"{name}: {'rebuilt' if rebuilt else 'ok'}")
    except (CatalogError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.obs import Observability, StructuredLog
    from repro.service.catalog import GraphCatalog
    from repro.service.server import MatchingServer
    from repro.service.tenancy import (
        TenancyError,
        TenantTable,
        tenant_from_spec,
        tenants_from_file,
    )

    try:
        specs = tenants_from_file(args.tenants) if args.tenants else {}
        for inline in args.tenant:
            spec = tenant_from_spec(inline)
            specs[spec.name] = spec
    except TenancyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tenants = TenantTable(specs) if specs else None

    catalog = GraphCatalog(args.root, max_resident=args.max_resident)
    obs = None
    if args.request_log:
        obs = Observability(log=StructuredLog(path=args.request_log))
    server = MatchingServer(
        catalog,
        max_inflight=args.max_inflight,
        max_pending=args.max_pending,
        cache_entries=args.cache_entries,
        default_time_limit=args.time_limit,
        default_recursion_limit=args.recursion_limit,
        high_headroom=args.high_headroom,
        subscriber_queue=args.subscriber_queue,
        subscriber_policy=args.subscriber_policy,
        obs=obs,
        tenants=tenants,
        drain_timeout=args.drain_timeout,
    )

    async def run() -> None:
        # SIGINT/SIGTERM request a graceful drain: stop admitting,
        # wait (bounded by --drain-timeout) for in-flight queries,
        # then shut down through the same path as the "shutdown" op —
        # instead of unwinding a KeyboardInterrupt through whatever
        # the event loop happened to be doing.  SIGHUP triggers a
        # zero-downtime catalog reload (DESIGN.md §13).
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_drain)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix event loop: fall back to KeyboardInterrupt
        if hasattr(signal, "SIGHUP"):
            try:
                loop.add_signal_handler(signal.SIGHUP, server.request_reload)
            except (NotImplementedError, RuntimeError):
                pass
        host, port = await server.start(args.host, args.port)
        print(f"serving catalog {args.root} on {host}:{port}", flush=True)
        await server.wait_closed()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    print("server stopped", flush=True)
    return 0


def _cmd_query(args) -> int:
    from repro.service.client import (
        RetryPolicy,
        ServiceClient,
        ServiceError,
    )

    paths = _expand_queries(args.queries)
    if not paths:
        print(f"error: no query files match {args.queries!r}", file=sys.stderr)
        return 2
    try:
        texts = []
        for path in paths:
            with open(path, "r", encoding="utf-8") as handle:
                texts.append(handle.read())
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    total = 0
    retry = (
        RetryPolicy(attempts=args.retries + 1) if args.retries > 0 else None
    )
    try:
        with ServiceClient(
            args.host, args.port, retry=retry, tenant=args.tenant
        ) as client:
            for path, text in zip(paths, texts):
                reply = client.query(
                    text,
                    args.data,
                    limit=args.limit,
                    time_limit=args.time_limit,
                    recursion_limit=args.recursion_limit,
                    workers=args.workers,
                    count_only=args.count_only,
                    cache=not args.no_cache,
                    priority=args.priority,
                    deadline=args.deadline,
                    profile=args.profile,
                    explain=args.explain,
                )
                total += reply.num_embeddings
                print(f"{path}: {reply.num_embeddings} embeddings, "
                      f"{reply.status}, cache {reply.cache}, "
                      f"trace {reply.trace}, "
                      f"{reply.elapsed:.4f}s "
                      f"(queue {reply.queue_seconds:.4f}s, "
                      f"exec {reply.server_seconds:.4f}s)")
                if reply.explain:
                    _print_explain(reply.explain)
                if reply.profile:
                    prof = reply.profile
                    print(f"  profile: {prof.get('descends', 0)} descends, "
                          f"{prof.get('conflicts', 0)} conflicts, "
                          f"{prof.get('backjumps', 0)} backjumps, "
                          f"max depth {prof.get('max_depth', 0)} "
                          f"(stride {prof.get('stride', 1)})")
                    kinds = prof.get("conflicts_by_kind") or {}
                    for kind in sorted(kinds):
                        print(f"    conflict[{kind}]: ~{kinds[kind]}")
                for e in reply.embeddings[: args.max_print]:
                    print("  " + " ".join(
                        f"u{i}->v{v}" for i, v in enumerate(e)))
                hidden = len(reply.embeddings) - args.max_print
                if hidden > 0:
                    print(f"  ... and {hidden} more")
    except (ServiceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"total embeddings: {total}")
    return 0


def _print_explain(report: dict) -> None:
    """Compact human rendering of an EXPLAIN/ANALYZE report."""
    backend = report.get("backend") or {}
    print(f"  explain ({report.get('mode')}): "
          f"ordering {report.get('ordering')}, "
          f"filter {report.get('filter')}, backends "
          f"{backend.get('candidate')}/{backend.get('build')}"
          f"/{backend.get('mask')}")
    print(f"    order: {report.get('order')}")
    for stage in report.get("stages") or []:
        print(f"    stage {stage.get('stage')}: "
              f"{stage.get('total')} candidates "
              f"{stage.get('candidates_per_vertex')}")
    reservations = report.get("reservations") or {}
    print(f"    reservations: {reservations.get('guards', 0)} guards, "
          f"{reservations.get('reserved_vertices', 0)} reserved vertices")
    qcache = report.get("qcache") or {}
    print(f"    qcache: {qcache.get('decision')}"
          + (f" ({qcache.get('reason')})" if qcache.get("reason") else ""))
    if report.get("mode") == "analyze":
        search = report.get("search") or {}
        print(f"    search: {search.get('recursions', 0)} recursions, "
              f"{search.get('conflicts', 0)} conflicts, "
              f"{search.get('pruned_by_guards', 0)} guard-pruned, "
              f"{search.get('nogood_hits', 0)} nogood hits")
        for task in report.get("tasks") or []:
            print(f"    worker task {task.get('index')} "
                  f"(root v{task.get('vertex')}): "
                  f"{task.get('embeddings_found')} embeddings, "
                  f"{task.get('recursions')} recursions, "
                  f"{task.get('elapsed_seconds'):.4f}s")


def _cmd_trace(args) -> int:
    import json

    from repro.obs.spans import (
        build_chrome_trace,
        spans_for_trace,
        validate_span_tree,
    )

    records = []
    try:
        with open(args.log, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn tail line of a live log
                if isinstance(record, dict):
                    records.append(record)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    spans = spans_for_trace(records, args.trace)
    if not spans:
        print(f"error: no spans for trace {args.trace!r} in {args.log}",
              file=sys.stderr)
        return 1
    problems = validate_span_tree(spans)
    export = build_chrome_trace(spans)
    try:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(export, handle, indent=2)
            handle.write("\n")
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"{len(spans)} span(s) for trace {args.trace} -> {args.out}")
    for record in spans:
        print(f"  {record.get('name')} span={record.get('span')} "
              f"parent={record.get('parent')} "
              f"dur={record.get('dur', 0.0):.6f}s pid={record.get('pid')}")
    for problem in problems:
        print(f"warning: {problem}", file=sys.stderr)
    return 1 if problems else 0


def _cmd_update(args) -> int:
    from repro.dynamic.delta import DeltaError, load_delta
    from repro.service.client import ServiceClient, ServiceError

    try:
        delta = load_delta(args.delta)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except DeltaError as exc:
        print(f"error: {args.delta}: {exc}", file=sys.stderr)
        return 1
    try:
        with ServiceClient(args.host, args.port) as client:
            reply = client.update(args.data, delta)
    except (ServiceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    summary = reply.summary
    print(f"{args.data}: epoch {reply.epoch} "
          f"({reply.entry.get('num_vertices')} vertices, "
          f"{reply.entry.get('num_edges')} edges)")
    print(f"delta:        +{summary.get('added_vertices', 0)} vertices, "
          f"+{summary.get('added_edges', 0)}/-{summary.get('removed_edges', 0)}"
          f" edges, {summary.get('touched_vertices', 0)} vertices touched")
    print(f"query cache:  {reply.qcache_kept} kept, "
          f"{reply.qcache_evicted} evicted")
    print(f"subscribers:  {reply.subscribers_notified} notified")
    return 0


def _cmd_stats(args) -> int:
    from repro.bench.report import format_table
    from repro.service.client import ServiceClient, ServiceError

    try:
        with ServiceClient(args.host, args.port) as client:
            stats = client.stats()
    except (ServiceError, OSError) as exc:
        print(f"error: {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1

    def counter_rows(section) -> List[List[str]]:
        rows = []
        for key in sorted(section):
            value = section[key]
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                rows.append([key, value])
        return rows

    server = stats.get("server", {})
    print(format_table(
        ["Counter", "Value"], counter_rows(server),
        title=f"server {args.host}:{args.port}",
    ))
    tenants = stats.get("tenants") or {}
    if tenants:
        rows = []
        for name in sorted(tenants):
            t = tenants[name]
            shed = {
                key[len("shed_"):]: value
                for key, value in sorted(t.items())
                if key.startswith("shed_") and value
            }
            rows.append([
                name, t.get("weight", 1), t.get("inflight", 0),
                t.get("queries", 0), t.get("admitted", 0),
                t.get("served", 0),
                ", ".join(f"{k}={v}" for k, v in shed.items()) or "-",
            ])
        print(format_table(
            ["Tenant", "Weight", "Inflight", "Queries", "Admitted",
             "Served", "Shed"],
            rows, title="tenants",
        ))
    catalog = stats.get("catalog", {})
    print(format_table(
        ["Counter", "Value"], counter_rows(catalog), title="catalog",
    ))
    resident = catalog.get("resident") or []
    if resident:
        print(f"resident: {', '.join(resident)}")
    qcache = stats.get("qcache", {})
    per_data = qcache.get("per_data") or {}
    rows = [
        [name, c.get("entries", 0), c.get("hits", 0), c.get("misses", 0),
         c.get("evictions", 0)]
        for name, c in sorted(per_data.items())
    ]
    print(format_table(
        ["Data", "Entries", "Hits", "Misses", "Evictions"], rows,
        title=(f"query cache ({qcache.get('hits', 0)} hits / "
               f"{qcache.get('misses', 0)} misses)"),
    ))
    return 0


def _cmd_metrics(args) -> int:
    from repro.service.client import ServiceClient, ServiceError

    try:
        with ServiceClient(args.host, args.port) as client:
            text = client.metrics()
    except (ServiceError, OSError) as exc:
        print(f"error: {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1
    sys.stdout.write(text)
    if not text.endswith("\n"):
        sys.stdout.write("\n")
    return 0


def _cmd_reload(args) -> int:
    from repro.service.client import ServiceClient, ServiceError

    try:
        with ServiceClient(args.host, args.port) as client:
            reply = client.reload()
    except (ServiceError, OSError) as exc:
        print(f"error: {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1
    report = reply.get("report") or {}
    for name in sorted(report):
        info = report[name]
        line = f"{name}: {info.get('action')}"
        if info.get("action") == "reloaded":
            line += (f" (epoch {info.get('old_epoch')} -> "
                     f"{info.get('epoch')})")
        print(line)
    if not report:
        print("catalog empty")
    print(f"replayed {reply.get('replayed', 0)} subscription(s)")
    return 0


def _cmd_drain(args) -> int:
    from repro.service.client import ServiceClient, ServiceError

    try:
        with ServiceClient(args.host, args.port) as client:
            reply = client.drain(timeout=args.timeout)
    except (ServiceError, OSError) as exc:
        print(f"error: {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1
    drained = bool(reply.get("drained"))
    active = int(reply.get("active", 0))
    if drained:
        print("drained: server stopping with no queries in flight")
        return 0
    print(f"error: drain timed out with {active} query(ies) still "
          f"running (server stopping anyway)", file=sys.stderr)
    return 1


COMMANDS = {
    "match": _cmd_match,
    "batch": _cmd_batch,
    "dataset": _cmd_dataset,
    "querygen": _cmd_querygen,
    "inspect": _cmd_inspect,
    "bench": _cmd_bench,
    "catalog": _cmd_catalog,
    "serve": _cmd_serve,
    "query": _cmd_query,
    "update": _cmd_update,
    "stats": _cmd_stats,
    "metrics": _cmd_metrics,
    "reload": _cmd_reload,
    "drain": _cmd_drain,
    "trace": _cmd_trace,
    "methods": _cmd_methods,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (also wired as ``python -m repro``)."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
