"""GuP: guard-based pruning for subgraph matching (the paper's §3).

Public entry points:

* :class:`~repro.core.engine.GuPEngine` / :func:`~repro.core.engine.match`
  — run GuP end to end: GCS construction, reservation-guard generation,
  guarded backtracking.
* :class:`~repro.core.config.GuPConfig` — every knob of the paper,
  including the ablation switches of Fig. 9 and the reservation size
  limit ``r`` of Fig. 8.
* :class:`~repro.core.gcs.GuardedCandidateSpace` — the auxiliary data
  structure (candidate space + guards).
* :mod:`~repro.core.parallel` — the work-stealing parallel search model
  of §3.5.2 / Fig. 10.
"""

from repro.core.config import GuPConfig
from repro.core.engine import GuPEngine, count_embeddings, match
from repro.core.gcs import GuardedCandidateSpace, build_gcs
from repro.core.nogood import NogoodStore, encode_nogood
from repro.core.reservation import generate_reservation_guards

__all__ = [
    "GuPConfig",
    "GuPEngine",
    "GuardedCandidateSpace",
    "NogoodStore",
    "build_gcs",
    "count_embeddings",
    "encode_nogood",
    "generate_reservation_guards",
    "match",
]
