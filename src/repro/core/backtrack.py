"""Guarded backtracking (Algorithm 2) with nogood discovery.

This module implements the search step of GuP: local-candidate
refinement (Definition 3.18), bounding sets (Definition 3.19), the four
conflict kinds and their masks (Definitions 3.22/3.23), deadend masks
(Definition 3.26), fixed deadend masks for edge guards (Definition 3.30),
nogood recording in search-node encoding (§3.5.1), and backjumping
(Algorithm 2, line 14).

Query-vertex sets are ``int`` bitmasks throughout (bit ``i`` = ``u_i``).

Dense-index candidate bitmaps
-----------------------------
This is the **bitmap backend** (the default; see DESIGN.md "Dense-index
bitmap layout").  The local candidate set of ``u_j`` is an ``int`` bitmap
over positions of the sorted ``C(u_j)``, and the candidate space
materializes every candidate-edge direction as a bitmap over the same
positions.  Line 6-9 refinement is then a single C-speed AND per forward
neighbor, the no-candidate conflict is a zero test, and candidate
iteration decodes set bits lazily.  Only the NE-guard and watched-pair
paths — which genuinely need to visit individual candidates — decode
bits, and they decode only the relevant ones (guard scans run only for
``(u_k, v, u_j)`` triples that actually carry guards; watched-pair
bookkeeping touches only the *dropped* bits ``old & ~refined``).

Watched candidate edges piggyback on the same dense index: watch
lifetimes are strictly LIFO per target (an ancestor registers its watch
set before descending and releases it right after the child returns), so
the per-target watch multiset is a *stack of bitmap frames* whose union
is one cached OR — registering and releasing the watches of a whole
node costs a few int operations instead of one refcount update per
watched candidate.

The recursion body is deliberately monolithic: guard probes and records
against the default search-node encoded store are inlined as direct dict
operations (the store object stays the single source of truth — the
search just bypasses method-call overhead), and the per-pair folding of
Definition 3.30 is expanded at both call sites.  CPython's per-call cost
would otherwise dominate the per-recursion budget and hide the win of
the O(1) refinement.  The readable reference implementation of the same
algorithm is :mod:`repro.core.backtrack_ref` (``GuPConfig.
candidate_backend = "list"``); ``tests/test_bitmap_cs.py`` proves the
two backends return byte-identical embeddings, stats, and termination
status.

Fixed-deadend-mask propagation
------------------------------
Every candidate edge from the assignment just made, ``(u_k, v)``, to a
forward candidate ``(u_j, v')`` is *watched* while the child subtree is
explored.  Definition 3.30 collapses as follows (see DESIGN.md §3):

* if ``v'`` is dropped from the local candidates of ``u_j`` while the
  watch is live, the whole subtree below the drop has fixed mask
  ``{u_l}`` (adjacency drop, case 4) or ``dom(NE) ∪ {u_l}`` (guard drop,
  case 5), where ``u_l`` is the dropping assignment;
* at depth ``j`` the watched pair resolves to
  ``deadend_mask(M ⊕ v') \\ {u_j}`` — case (1) gives every child of the
  depth-``j`` node this same value, so case (6) always fires there;
* interior nodes combine children values exactly like Definition 3.26:
  an early child value without the node's own bit wins (case 6),
  otherwise the union of children values plus the bounding set, minus
  the node's bit (case 7);
* a pair contained in any full embedding of the subtree is never
  recorded (case 2);
* on a backjump with mask ``K``, ``M[K]`` is a nogood contained in the
  current embedding, so every live pair soundly resolves to ``K``.

When the search aborts (embedding cap / timeout), subtrees are no longer
exhaustively explored and prove nothing: all recording stops immediately
and the recursion unwinds.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.config import GuPConfig
from repro.core.gcs import GuardedCandidateSpace
from repro.core.nogood import NogoodStore, make_nogood_store
from repro.filtering.mask_kernels import get_kernels
from repro.matching.limits import SearchLimits
from repro.matching.result import SearchStats, TerminationStatus
from repro.utils.bitset import iter_bits
from repro.utils.timer import Deadline

Pair = int
"""Watched candidate edge target, packed as ``j << 24 | position``
(candidate positions are far below 2^24; int keys hash without
allocating a tuple)."""

_EMPTY_DICT: Dict[Pair, int] = {}
_EMPTY_SET: Set[Pair] = set()


class GuPSearch:
    """One guarded backtracking run over a GCS (bitmap backend).

    Not reusable: construct a fresh instance per query (the nogood
    store, the search-node counter, and all counters are per-run state).
    """

    def __init__(
        self,
        gcs: GuardedCandidateSpace,
        config: Optional[GuPConfig] = None,
        limits: Optional[SearchLimits] = None,
        nogoods: Optional[NogoodStore] = None,
        max_watches: int = 100_000,
        observer: Optional[object] = None,
        symmetry_prev: Optional[Sequence[int]] = None,
    ) -> None:
        """``observer``, when given, receives search events — see
        :class:`repro.analysis.trace.SearchObserver` for the protocol.
        Tracing is for analysis/visualization; it does not alter the
        search.

        ``symmetry_prev`` (from :mod:`repro.core.symmetry`) enforces
        strictly increasing images inside query equivalence classes:
        ``symmetry_prev[k] = p >= 0`` demands ``M(u_k) > M(u_p)``.  The
        search then enumerates class representatives only (the engine
        expands them back)."""
        self.gcs = gcs
        self._observer = observer
        self.config = config or GuPConfig()
        self.limits = limits or SearchLimits()
        self.stats = SearchStats()
        self.stats.candidate_vertices = gcs.cs.total_candidates()
        self.stats.candidate_edges = gcs.cs.num_candidate_edges

        query = gcs.query
        cs = gcs.cs
        self._n = query.num_vertices
        self._cands: Tuple[Tuple[int, ...], ...] = cs.candidates
        if any(len(c) >= (1 << 24) for c in self._cands):
            # Watched-pair keys pack the candidate position into 24 bits
            # (see ``Pair``); wider candidate sets would silently collide.
            raise ValueError(
                "candidate set exceeds 2^24 entries; the packed watched-pair "
                "encoding does not support this"
            )
        self._forward: List[Tuple[int, ...]] = [
            tuple(j for j in query.neighbors(i) if j > i) for i in query.vertices()
        ]
        # Forward neighbors whose query edge lies in the 2-core: the only
        # edges on which NE guards are generated and tested (§3.3.3).
        self._forward_core: List[FrozenSet[int]] = [
            frozenset(j for j in self._forward[i] if gcs.edge_in_two_core(i, j))
            for i in query.vertices()
        ]
        # Per-run constants hoisted out of the recursion.
        self._needs_masks = self.config.needs_masks
        self._use_nv = self.config.use_nogood_vertex
        self._use_ne = self.config.use_nogood_edge
        self._use_bj = self.config.use_backjumping
        self._max_rec = self.limits.max_recursions
        self._poll_time = self.limits.time_limit is not None
        # Per-depth refinement plan: (j, candidate-edge bitmap table of
        # direction (k, j), NE guards apply on this edge).  The bitmap
        # table maps each candidate v of u_k to its adjacency bitmap
        # over positions of C(u_j).
        self._plans: List[List[Tuple[int, Dict[int, int], bool]]] = [
            [
                (j, cs.edge_bitmap_map(i, j), self._use_ne and j in self._forward_core[i])
                for j in self._forward[i]
            ]
            for i in query.vertices()
        ]
        self._data = gcs.data
        self._reservations = gcs.reservations if self.config.use_reservation else {}
        # Per-vertex reservation index, keyed by candidate *position*:
        # the hot loop already holds the position of every candidate it
        # decodes, so the probe is one small-int dict get.
        self._reservations_at: List[Dict[int, FrozenSet[int]]] = [
            {} for _ in range(self._n)
        ]
        positions = cs.positions
        for (i, v), guard in self._reservations.items():
            if len(guard) == 1 and v in guard:
                # The trivial reservation {v} can only fire when v is
                # already in the image — which the injectivity check
                # (line 4) has always ruled out by then.  Omitting it
                # from the index changes no outcome and no statistic,
                # and leaves most candidates with no guard to probe.
                continue
            p = positions[i].get(v)
            if p is not None:
                self._reservations_at[i][p] = guard
        # Always a fresh store unless the caller supplies one: encoded
        # nogoods reference this run's search-node ids, so guards from a
        # previous run over the same GCS would match spuriously.
        if nogoods is not None:
            self._nogoods = nogoods
        else:
            self._nogoods = make_nogood_store(self.config.nogood_representation)
            gcs.nogoods = self._nogoods
        # Devirtualized guard tables: for the default search-node store
        # the recursion probes and writes the underlying dicts directly
        # (the store remains the source of truth for every consumer).
        # Any other representation goes through the generic interface.
        if getattr(self._nogoods, "representation", None) == "search_node":
            self._nv_at: Optional[List[Dict]] = [
                self._nogoods.vertex_guards_at(i) for i in range(self._n)
            ]
            self._ne_dict: Optional[Dict] = self._nogoods._edge
            # Guarded-position bitmaps per (i, v, j) triple: the guard
            # scan in refinement intersects the adjacency bitmap with
            # this instead of probing every adjacent candidate.  Kept in
            # sync at every record site; seeded from any pre-existing
            # guards in a caller-supplied store.
            self._ne_pos: Dict[Tuple[int, int, int], int] = {}
            if self._ne_dict:
                for (gi, gv, gj), per_v2 in self._ne_dict.items():
                    bm = 0
                    pos_j = positions[gj]
                    for v2 in per_v2:
                        p2 = pos_j.get(v2)
                        if p2 is not None:
                            bm |= 1 << p2
                    self._ne_pos[(gi, gv, gj)] = bm
        else:
            self._nv_at = None
            self._ne_dict = None
            self._ne_pos = {}
        self._max_watches = max_watches
        self._symmetry_prev = symmetry_prev
        self._collect = self.limits.collect
        self._max_emb = self.limits.max_embeddings
        # Mask kernels (DESIGN.md §11): the local-candidate decode and
        # the watch-frame popcount run on position bitmaps as wide as
        # the candidate sets — the two search-side loops worth routing
        # through the selected backend.  Query-vertex-width masks
        # (conflict masks, nogood domains) stay on the int idiom.
        _kern = get_kernels(self.config.mask_backend)
        self._positions = _kern.positions
        self._popcount = _kern.popcount

        # Per-run search state.
        self._deadline: Deadline = Deadline(None)
        self._embedding: List[int] = []
        # Injectivity index: data vertex -> assigning query depth, as a
        # flat array (-1 = unassigned) — probed once per local candidate.
        self._image: List[int] = [-1] * gcs.data.num_vertices
        self._anc: List[int] = [0] * (self._n + 1)
        self._node_counter = 0
        self._aborted = False
        self._status = TerminationStatus.COMPLETE
        self._results: List[Tuple[int, ...]] = []
        # Live watched candidate edges are threaded down the recursion
        # as an argument (target -> live position bitmap): a child's
        # live set is exactly ``(parent_live & child_local) | frame``,
        # so no global watch structure is needed — only this counter,
        # which enforces the ``max_watches`` cap.
        self._watch_total = 0
        # Depth-indexed container pools.  Every per-node / per-descent
        # structure has a strictly nested lifetime (a parent finishes
        # reading a child's returned containers before starting the next
        # sibling), so each depth reuses one instance via clear()/slice
        # assignment instead of allocating per node — CPython's
        # alloc/free churn would otherwise dominate the pair protocol.
        self._pool: List[tuple] = [
            (set(), {}, {}, {}, {}, {}, [], [0] * self._n, [0] * self._n)
            for _ in range(self._n + 1)
        ]

        # Per-depth context, unpacked in one statement per recursion:
        # (C(u_k), refinement plan, forward core, reservation index or
        # None, symmetry predecessor, vertex-guard table or None).
        self._depth_ctx: List[tuple] = [
            (
                self._cands[i],
                self._plans[i],
                self._forward_core[i],
                (self._reservations_at[i] or None) if self._reservations else None,
                symmetry_prev[i] if symmetry_prev else -1,
                self._nv_at[i] if self._nv_at is not None else None,
            )
            for i in range(self._n)
        ]
        # Per-run context (constants and per-run mutable structures);
        # the deadline-dependent entries are refreshed by run().
        self._make_ctx()

    def _make_ctx(self) -> None:
        self._ctx = (
            self._observer,
            self._needs_masks,
            self._use_nv,
            self._use_ne,
            self._use_bj,
            self._image,
            self._embedding,
            self._anc,
            self._nogoods,
            self._ne_dict,
            self._ne_pos,
            self._cands,
            self._poll_time,
            self._deadline,
            self._max_rec,
            self._n,
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(
        self, root_mask: Optional[int] = None
    ) -> Tuple[List[Tuple[int, ...]], TerminationStatus]:
        """Enumerate embeddings of the (reordered) query.

        ``root_mask``, when given, restricts the root level to the
        candidates of ``u_0`` whose *positions* (bits in the dense
        index) are set — the parallel engines partition the search at
        the root this way (§3.5.2) without rebuilding the candidate
        space.  Restricting the root is equivalent to searching a GCS
        whose ``C(u_0)`` is the selected subset: the refinement plans,
        reservation index, and watch machinery never read the dropped
        root candidates.

        Returns the embeddings (in reordered query-vertex numbering —
        the engine translates back) and the termination status.
        """
        if self._n == 0:
            return [()], TerminationStatus.COMPLETE
        if self.gcs.cs.is_empty():
            return [], TerminationStatus.COMPLETE

        self._deadline = self.limits.make_deadline()
        self._make_ctx()
        cs = self.gcs.cs
        local: List[int] = [cs.full_mask(i) for i in range(self._n)]
        if root_mask is not None:
            local[0] &= root_mask
        bounds = [0] * self._n
        self._backtrack(0, local, bounds, None)
        return self._results, self._status

    # ------------------------------------------------------------------
    # Recording helpers
    # ------------------------------------------------------------------

    def _abort(self, status: TerminationStatus) -> None:
        self._aborted = True
        self._status = status

    def _reservation_conflict_mask(self, guard: FrozenSet[int], k: int) -> int:
        """Definition 3.23 (2): assigners of the reserved vertices + u_k."""
        mask = 1 << k
        image = self._image
        for w in guard:
            mask |= 1 << image[w]
        return mask

    # ------------------------------------------------------------------
    # The recursion
    # ------------------------------------------------------------------

    def _backtrack(
        self,
        depth: int,
        local: List[int],
        bounds: List[int],
        watched: Optional[Dict[int, int]],
    ) -> Tuple[bool, int, Dict[Pair, int], Set[Pair]]:
        """Explore all extensions of the current partial embedding.

        ``local[j]`` is the local candidate set of ``u_j`` as a bitmap
        over positions of ``C(u_j)``.  ``watched`` maps each target
        query vertex ``j >= depth`` to the bitmap of its positions
        watched by live ancestor frames and still locally present (the
        parent computes it exactly — see the watch comment in
        ``__init__``); ``None`` when nothing is watched.

        Returns ``(found, mask, pair_vals, used_pairs)``:

        * ``found`` — whether any full embedding exists in the subtree;
        * ``mask`` — the deadend mask of the current extension
          (Definition 3.26; meaningful only when ``found`` is false and
          the run was not aborted);
        * ``pair_vals`` — fixed deadend masks (Definition 3.30) for every
          watched pair live at this node (including pairs resolved at
          this very depth);
        * ``used_pairs`` — watched pairs contained in some embedding
          found inside this subtree.
        """
        (
            obs,
            needs_masks,
            use_nv,
            use_ne,
            use_bj,
            image,
            embedding,
            anc,
            nogoods,
            ne_dict,
            ne_pos,
            cands,
            poll_time,
            deadline,
            max_rec,
            n,
        ) = self._ctx
        stats = self.stats
        stats.recursions += 1
        if (poll_time and deadline.poll()) or (
            max_rec is not None and stats.recursions >= max_rec
        ):
            self._abort(TerminationStatus.TIMEOUT)
        if self._aborted:
            return (False, 0, _EMPTY_DICT, _EMPTY_SET)

        k = depth
        if k == n:
            found = stats.embeddings_found + 1
            stats.embeddings_found = found
            if self._collect:
                self._results.append(tuple(embedding))
            if self._max_emb is not None and found >= self._max_emb:
                self._abort(TerminationStatus.EMBEDDING_LIMIT)
            if obs is not None:
                obs.on_embedding(tuple(embedding))
            return (True, 0, _EMPTY_DICT, _EMPTY_SET)
        (
            cands_k,
            plan,
            forward_core,
            reservations_k,
            sym_prev_k,
            nv_k,
        ) = self._depth_ctx[k]
        pool = self._pool[k]
        k_bit = 1 << k
        below_k = k_bit - 1

        # Ancestor-watched pairs live at this node, as (target, position)
        # pairs; ``targeting`` is the live watched-position set at this
        # very depth.
        # Pairs are packed as ``j << 24 | position`` (positions are far
        # below 2^24): int keys hash without allocating a tuple.
        anc_pairs: Optional[List[int]] = None
        watched_fwd: Dict[int, int] = _EMPTY_DICT
        targeting = 0
        if watched is not None:
            watched_fwd = watched
            for j, live in watched.items():
                if j > k:
                    if anc_pairs is None:
                        anc_pairs = pool[6]
                        anc_pairs.clear()
                    jbase = j << 24
                    while live:
                        lo = live & -live
                        live ^= lo
                        anc_pairs.append(jbase | (lo.bit_length() - 1))
                else:
                    targeting = live

        found_any = False
        union_mask = 0
        early_mask: Optional[int] = None
        backjump_mask: Optional[int] = None

        if anc_pairs is not None or targeting:
            pair_used: Set[Pair] = pool[0]
            pair_used.clear()
            pair_early: Dict[Pair, int] = pool[1]
            pair_early.clear()
            pair_acc: Dict[Pair, int] = pool[2]
            pair_acc.clear()
            resolved_here: Dict[Pair, int] = pool[3]
            resolved_here.clear()
        else:
            # Never mutated on this path; shared empties avoid the
            # clears.
            pair_used = _EMPTY_SET
            pair_early = pair_acc = resolved_here = _EMPTY_DICT

        n_seen = 0
        n_ref = 0
        has_watch = watched is not None
        last = k + 1 == n
        popcount = self._popcount
        for p in self._positions(local[k]):
            v = cands_k[p]
            n_seen += 1
            conflict_mask: Optional[int] = None
            child_bounds = bounds
            refinement_conflict = False

            # ---- symmetry breaking (extension; repro.core.symmetry) --
            conflict_kind = ""
            if sym_prev_k >= 0 and v <= embedding[sym_prev_k]:
                stats.pruned_symmetry += 1
                conflict_mask = (1 << sym_prev_k) | k_bit
                conflict_kind = "symmetry"
            # ---- line 4: injectivity --------------------------------
            elif (assigner := image[v]) >= 0:
                stats.pruned_injectivity += 1
                conflict_mask = (1 << assigner) | k_bit
                conflict_kind = "injectivity"
            else:
                # ---- line 5: reservation guard -----------------------
                if reservations_k is not None:
                    rg = reservations_k.get(p)
                    if rg is not None:
                        for w in rg:
                            if image[w] < 0:
                                break
                        else:
                            stats.pruned_reservation += 1
                            conflict_mask = self._reservation_conflict_mask(rg, k)
                            conflict_kind = "reservation"
                # ---- line 5: nogood guard on the vertex --------------
                if conflict_mask is None and use_nv:
                    if nv_k is not None:
                        g = nv_k.get(v)
                        dom = (
                            g[2]
                            if g is not None and anc[g[1]] == g[0]
                            else None
                        )
                    else:
                        dom = nogoods.match_vertex(k, v, anc, embedding)
                    if dom is not None:
                        stats.pruned_nogood_vertex += 1
                        conflict_mask = dom | k_bit
                        conflict_kind = "nogood_vertex"

            child_local: List[int] = local
            child_predrop: Dict[int, int] = _EMPTY_DICT
            guards_checked = False
            if conflict_mask is None and plan:
                # ---- lines 6-9: refine local candidates --------------
                # One big-int AND per forward neighbor; per-candidate
                # visits only on live guard tables and dropped watches.
                # ``bounds`` is copied lazily on the first change.
                child_local = pool[7]
                child_local[:] = local
                for j, ebm_j, check_guards in plan:
                    n_ref += 1
                    old = local[j]
                    adj = old & ebm_j.get(v, 0)
                    wset = watched_fwd.get(j, 0) if has_watch else 0
                    if wset:
                        dropped_watched = wset & old & ~adj
                        if dropped_watched and child_predrop is _EMPTY_DICT:
                            child_predrop = {}
                        while dropped_watched:
                            lo3 = dropped_watched & -dropped_watched
                            dropped_watched ^= lo3
                            child_predrop[
                                j << 24 | (lo3.bit_length() - 1)
                            ] = k_bit
                    guard_doms = 0
                    refined = adj
                    if check_guards and adj:
                        if ne_dict is not None:
                            per2 = ne_dict.get((k, v, j))
                            if per2 is not None:
                                cj = cands[j]
                                drop = 0
                                m2 = adj & ne_pos[(k, v, j)]
                                while m2:
                                    lo2 = m2 & -m2
                                    m2 ^= lo2
                                    p2 = lo2.bit_length() - 1
                                    g = per2.get(cj[p2])
                                    if g is not None and anc[g[1]] == g[0]:
                                        stats.pruned_nogood_edge += 1
                                        guard_doms |= g[2]
                                        drop |= lo2
                                        if (wset >> p2) & 1:
                                            if child_predrop is _EMPTY_DICT:
                                                child_predrop = {}
                                            child_predrop[j << 24 | p2] = (
                                                g[2] | k_bit
                                            )
                                refined = adj & ~drop
                        elif nogoods.has_edge_guards(k, v, j):
                            cj = cands[j]
                            drop = 0
                            m2 = adj
                            while m2:
                                lo2 = m2 & -m2
                                m2 ^= lo2
                                p2 = lo2.bit_length() - 1
                                dom = nogoods.match_edge(
                                    k, v, j, cj[p2], anc, embedding
                                )
                                if dom is not None:
                                    stats.pruned_nogood_edge += 1
                                    guard_doms |= dom
                                    drop |= lo2
                                    if (wset >> p2) & 1:
                                        if child_predrop is _EMPTY_DICT:
                                            child_predrop = {}
                                        child_predrop[j << 24 | p2] = dom | k_bit
                            refined = adj & ~drop
                    child_local[j] = refined
                    if check_guards:
                        guards_checked = True
                    if needs_masks and (refined != old or guard_doms):
                        if child_bounds is bounds:
                            child_bounds = pool[8]
                            child_bounds[:] = bounds
                        child_bounds[j] = bounds[j] | k_bit | guard_doms
                    if not refined:
                        # No-candidate conflict (Definition 3.23 case 4).
                        conflict_mask = child_bounds[j] if needs_masks else k_bit
                        refinement_conflict = True
                        conflict_kind = "no_candidate"
                        break

            if conflict_mask is not None:
                if obs is not None:
                    obs.on_conflict(k, v, conflict_kind, conflict_mask)
                union_mask |= conflict_mask
                if needs_masks:
                    # Algorithm 2: extensions filtered at lines 4-5 are
                    # skipped by ``continue``; only the no-candidate case
                    # reaches the recording lines 11-13.
                    if refinement_conflict:
                        if use_nv:
                            # Record NV from nogood (M ⊕ v)[conflict_mask]
                            # (§3.3.2: attach to the highest-bit
                            # assignment, store the rest).
                            top = conflict_mask.bit_length() - 1
                            w = v if top == k else embedding[top]
                            rest = conflict_mask & ~(1 << top)
                            if nv_k is not None:
                                length = rest.bit_length()
                                self._nv_at[top][w] = (anc[length], length, rest)
                                nogoods.recorded_vertex += 1
                            else:
                                embedding.append(v)
                                nogoods.record_vertex_nogood(
                                    top, w, rest, anc, embedding
                                )
                                embedding.pop()
                            stats.nogoods_recorded_vertex += 1
                            # §3.4 accounting: discovered-nogood size.
                            stats.nogood_size_sum += conflict_mask.bit_count()
                            stats.nogood_size_count += 1
                        if guards_checked:
                            # Line 11 with Definition 3.30 case (3): the
                            # conflict mask is the fixed mask of every
                            # candidate edge incident to (u_k, v).  The
                            # refined core sets are read back from
                            # child_local (directions after the conflict
                            # were never refined — stop there).
                            dom = conflict_mask & below_k
                            if ne_dict is not None:
                                length = dom.bit_length()
                                enc = (anc[length], length, dom)
                                for j2, _e2, core2 in plan:
                                    if core2:
                                        bm = child_local[j2]
                                        cj2 = cands[j2]
                                        key4 = (k, v, j2)
                                        per4 = ne_dict.get(key4)
                                        if bm:
                                            ne_pos[key4] = (
                                                ne_pos.get(key4, 0) | bm
                                            )
                                        while bm:
                                            lo4 = bm & -bm
                                            bm ^= lo4
                                            v2 = cj2[lo4.bit_length() - 1]
                                            if per4 is None:
                                                per4 = ne_dict[key4] = {}
                                            if v2 not in per4:
                                                nogoods._num_edge += 1
                                            per4[v2] = enc
                                            nogoods.recorded_edge += 1
                                            stats.nogoods_recorded_edge += 1
                                    if j2 == j:
                                        break
                            else:
                                for j2, _e2, core2 in plan:
                                    if core2:
                                        bm = child_local[j2]
                                        cj2 = cands[j2]
                                        while bm:
                                            lo4 = bm & -bm
                                            bm ^= lo4
                                            nogoods.record_edge_nogood(
                                                k, v, j2,
                                                cj2[lo4.bit_length() - 1],
                                                dom, anc, embedding,
                                            )
                                            stats.nogoods_recorded_edge += 1
                                    if j2 == j:
                                        break
                    if anc_pairs is not None:
                        # Definition 3.30 case (3): the conflict mask is
                        # the fold value of every live pair.
                        cm = conflict_mask
                        cm_early = not cm & k_bit
                        for pr in anc_pairs:
                            if pr in pair_used:
                                continue
                            if cm_early and pr not in pair_early:
                                pair_early[pr] = cm
                            pair_acc[pr] = pair_acc.get(pr, 0) | cm
                    if (targeting >> p) & 1:
                        resolved_here[k << 24 | p] = conflict_mask & ~k_bit
                    if not conflict_mask & k_bit:
                        if use_bj:
                            stats.backjumps += 1
                            backjump_mask = conflict_mask
                            if obs is not None:
                                obs.on_backjump(k, conflict_mask)
                            break
                        if early_mask is None:
                            early_mask = conflict_mask
                continue

            # ---- line 10: recurse -----------------------------------
            embedding.append(v)
            image[v] = k
            self._node_counter += 1
            anc[k + 1] = self._node_counter

            # Watch every candidate edge from (u_k, v) into the 2-core:
            # one bitmap frame per target (the frame IS child_local[j],
            # re-read after the child returns — children never mutate the
            # list they receive); the child's live watched sets are the
            # surviving ancestor bits plus these frames.
            pushed = False
            own_count = 0
            child_watched: Optional[Dict[int, int]] = None
            if use_ne:
                if anc_pairs is not None:
                    child_watched = pool[5]
                    child_watched.clear()
                    for j2, live2 in watched_fwd.items():
                        if j2 > k:
                            nl = live2 & child_local[j2]
                            if nl:
                                child_watched[j2] = nl
                    if not child_watched:
                        child_watched = None
                if forward_core and self._watch_total < self._max_watches:
                    pushed = True
                    if child_watched is None:
                        child_watched = pool[5]
                        child_watched.clear()
                    for j2 in forward_core:
                        frame = child_local[j2]
                        own_count += popcount(frame)
                        prev = child_watched.get(j2)
                        child_watched[j2] = frame if prev is None else prev | frame
                    self._watch_total += own_count

            if obs is not None:
                obs.on_descend(k, v, self._node_counter)
            if last:
                # Inlined leaf: the child is a full embedding — replicate
                # the depth-n prologue without paying a frame of the
                # recursion for the deepest (most frequent) call.
                stats.recursions += 1
                if (poll_time and deadline.poll()) or (
                    max_rec is not None and stats.recursions >= max_rec
                ):
                    self._abort(TerminationStatus.TIMEOUT)
                child_mask = 0
                child_vals = _EMPTY_DICT
                child_used = _EMPTY_SET
                if self._aborted:
                    child_found = False
                else:
                    child_found = True
                    found = stats.embeddings_found + 1
                    stats.embeddings_found = found
                    if self._collect:
                        self._results.append(tuple(embedding))
                    if self._max_emb is not None and found >= self._max_emb:
                        self._abort(TerminationStatus.EMBEDDING_LIMIT)
                    if obs is not None:
                        obs.on_embedding(tuple(embedding))
            else:
                child_found, child_mask, child_vals, child_used = self._backtrack(
                    k + 1, child_local, child_bounds, child_watched
                )
            if obs is not None:
                obs.on_return(k, v, child_found, child_mask)

            embedding.pop()
            image[v] = -1

            if self._aborted:
                self._watch_total -= own_count
                stats.local_candidates_seen += n_seen
                stats.refine_ops += n_ref
                return (found_any or child_found, 0, _EMPTY_DICT, _EMPTY_SET)

            # ---- line 11: update NE for edges incident to (u_k, v) --
            if pushed:
                if child_vals:
                    for j2 in forward_core:
                        frame = child_local[j2]
                        cj2 = cands[j2]
                        jb2 = j2 << 24
                        while frame:
                            lo5 = frame & -frame
                            frame ^= lo5
                            p2 = lo5.bit_length() - 1
                            pr = jb2 | p2
                            if pr in child_used or pr not in child_vals:
                                continue
                            dom = child_vals[pr] & below_k
                            v2 = cj2[p2]
                            if ne_dict is not None:
                                length = dom.bit_length()
                                key5 = (k, v, j2)
                                per5 = ne_dict.get(key5)
                                if per5 is None:
                                    per5 = ne_dict[key5] = {}
                                if v2 not in per5:
                                    nogoods._num_edge += 1
                                per5[v2] = (anc[length], length, dom)
                                nogoods.recorded_edge += 1
                                ne_pos[key5] = ne_pos.get(key5, 0) | lo5
                            else:
                                nogoods.record_edge_nogood(
                                    k, v, j2, v2, dom, anc, embedding
                                )
                            stats.nogoods_recorded_edge += 1
                self._watch_total -= own_count

            if anc_pairs is not None:
                # Fold the child's per-pair values (Definition 3.30
                # cases 6/7 bookkeeping; pre-drop values win).
                for pr in anc_pairs:
                    if pr in pair_used:
                        continue
                    if pr in child_used:
                        pair_used.add(pr)
                        continue
                    if pr in child_predrop:
                        val = child_predrop[pr]
                    elif pr in child_vals:
                        val = child_vals[pr]
                    else:
                        # Defensive: a tracking gap must never produce
                        # an over-strong (empty) mask — treat the pair
                        # as used, which merely skips one recording
                        # opportunity.
                        pair_used.add(pr)
                        continue
                    if not val & k_bit and pr not in pair_early:
                        pair_early[pr] = val
                    pair_acc[pr] = pair_acc.get(pr, 0) | val
            if (targeting >> p) & 1:
                if child_found:
                    pair_used.add(k << 24 | p)
                else:
                    resolved_here[k << 24 | p] = child_mask & ~k_bit

            # ---- lines 12-14: deadend discovery + backjumping --------
            if child_found:
                found_any = True
            else:
                stats.futile_recursions += 1
                union_mask |= child_mask
                if needs_masks:
                    if use_nv and child_mask:
                        # Record NV from nogood (M ⊕ v)[child_mask].
                        top = child_mask.bit_length() - 1
                        w = v if top == k else embedding[top]
                        rest = child_mask & ~(1 << top)
                        if nv_k is not None:
                            length = rest.bit_length()
                            self._nv_at[top][w] = (anc[length], length, rest)
                            nogoods.recorded_vertex += 1
                        else:
                            embedding.append(v)
                            nogoods.record_vertex_nogood(
                                top, w, rest, anc, embedding
                            )
                            embedding.pop()
                        stats.nogoods_recorded_vertex += 1
                        stats.nogood_size_sum += child_mask.bit_count()
                        stats.nogood_size_count += 1
                    if not child_mask & k_bit:
                        if use_bj:
                            stats.backjumps += 1
                            backjump_mask = child_mask
                            if obs is not None:
                                obs.on_backjump(k, child_mask)
                            break
                        if early_mask is None:
                            early_mask = child_mask

        # ---- node epilogue ------------------------------------------
        stats.local_candidates_seen += n_seen
        stats.refine_ops += n_ref
        if not needs_masks:
            return (found_any, 0, _EMPTY_DICT, _EMPTY_SET)

        if backjump_mask is not None:
            node_mask = backjump_mask
        elif found_any:
            node_mask = 0
        elif early_mask is not None:
            node_mask = early_mask
        else:
            node_mask = (union_mask | bounds[k]) & ~k_bit

        if anc_pairs is None and not resolved_here and not (
            backjump_mask is not None and targeting
        ):
            return (found_any, node_mask, _EMPTY_DICT, pair_used)

        pair_vals: Dict[Pair, int] = pool[4]
        pair_vals.clear()
        bk = bounds[k]
        if anc_pairs is not None:
            for pr in anc_pairs:
                if pr in pair_used:
                    continue
                if backjump_mask is not None:
                    pair_vals[pr] = backjump_mask
                elif pr in pair_early:
                    pair_vals[pr] = pair_early[pr]
                else:
                    pair_vals[pr] = (pair_acc.get(pr, 0) | bk) & ~k_bit
        for pr, val in resolved_here.items():
            if pr not in pair_used:
                pair_vals[pr] = val
        if backjump_mask is not None and targeting:
            # Pairs targeting this depth never reached resolve to the
            # backjump nogood (sound: M[K] alone is a nogood).
            kb = k << 24
            for p2 in iter_bits(targeting & local[k]):
                pr = kb | p2
                if pr not in pair_vals and pr not in pair_used:
                    pair_vals[pr] = backjump_mask
        return (found_any, node_mask, pair_vals, pair_used)

