"""Configuration of the GuP engine.

The defaults reproduce the paper's recommended setting: all guards on,
backjumping on, reservation size limit ``r = 3`` (§4.3.1), nogood guards
on edges restricted to the query 2-core (§3.3.3), DAG-graph DP filtering
and the VC matching order (§3.1).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional


def _default_mask_backend() -> str:
    """Config default for ``mask_backend``; overridable via environment.

    ``REPRO_MASK_BACKEND=words`` flips the default for a whole process —
    the CI matrix job uses it to run the entire tier-1 suite on the
    words kernels without editing any test.  Explicit constructor
    arguments always win over the environment.
    """
    return os.environ.get("REPRO_MASK_BACKEND", "int")


@dataclass(frozen=True)
class GuPConfig:
    """Knobs of the GuP algorithm.

    Attributes
    ----------
    reservation_limit:
        ``r``, the maximum reservation-guard size (Fig. 8).  ``None``
        means unbounded (the paper's ``r = ∞``); ``0`` effectively
        disables non-trivial reservations.
    use_reservation:
        Generate and test reservation guards ("R" in Fig. 9).
    use_nogood_vertex:
        Record and test nogood guards on vertices ("NV").
    use_nogood_edge:
        Record and test nogood guards on edges ("NE").
    use_backjumping:
        Abandon a node as soon as a discovered nogood is contained in the
        current partial embedding (Algorithm 2, line 14; "All" in Fig. 9).
    ne_two_core_only:
        Restrict NE guards to query edges inside the 2-core (§3.3.3).
    filter_method / ordering:
        Candidate filter and matching order; GuP uses extended DAG-graph
        DP [20] and VC [36].
    nogood_representation:
        ``"search_node"`` (the paper's O(1) encoding, §3.5.1) or
        ``"explicit"`` (literal assignment sets: O(|D|) match tests but
        path-independent matching — the representation ablation).
    break_symmetry:
        Extension (off by default, not in the paper): enumerate one
        representative per query-automorphism class and expand
        afterwards (see :mod:`repro.core.symmetry`).
    candidate_backend:
        Local-candidate representation of the search: ``"bitmap"`` (the
        default — dense-index int bitmaps, refinement is one AND per
        forward neighbor; :mod:`repro.core.backtrack`) or ``"list"``
        (the seed per-element implementation kept as a differential /
        perf reference; :mod:`repro.core.backtrack_ref`).  Both explore
        identical search trees and produce identical results and stats.
    build_backend:
        GCS *construction* representation: ``"bitmap"`` (the default —
        candidate sets are data-vertex-id int bitmaps end to end:
        LDF/NLF seeding from precomputed label/degree masks, worklist
        DAG-graph DP whose survival test is one AND, mask-native
        candidate-edge materialization, mask-arithmetic reservation
        matchability; :mod:`repro.filtering.masks`) or ``"set"`` (the
        seed set/dict pipeline kept as a differential / perf
        reference).  Both produce byte-identical guarded candidate
        spaces — candidates, candidate edges, reservations — and hence
        identical search results (``tests/test_build_masks.py``).
    mask_backend:
        Kernel provider for the mask hot loops
        (:mod:`repro.filtering.mask_kernels`): ``"int"`` (the default —
        every mask operation is the arbitrary-precision Python-int
        idiom, the reference twin) or ``"words"`` (masks are lowered to
        fixed-width arrays of 64-bit words inside the kernels —
        vectorized survival sweeps, popcounts, decodes, threshold
        ladders, with a numpy fast path auto-detected at import).
        Orthogonal to ``candidate_backend`` / ``build_backend``; all
        combinations produce byte-identical embeddings, stats, GCSes,
        and serialized artifacts (``tests/test_mask_kernels.py``,
        ``tests/test_config_matrix.py``).  The process-wide default can
        be flipped with ``REPRO_MASK_BACKEND=words`` (the CI words
        matrix job does).
    """

    reservation_limit: Optional[int] = 3
    use_reservation: bool = True
    nogood_representation: str = "search_node"
    use_nogood_vertex: bool = True
    use_nogood_edge: bool = True
    use_backjumping: bool = True
    ne_two_core_only: bool = True
    filter_method: str = "dagdp"
    ordering: str = "vc"
    break_symmetry: bool = False
    candidate_backend: str = "bitmap"
    build_backend: str = "bitmap"
    mask_backend: str = field(default_factory=_default_mask_backend)

    def __post_init__(self) -> None:
        if self.candidate_backend not in ("bitmap", "list"):
            raise ValueError(
                f"unknown candidate_backend {self.candidate_backend!r}; "
                "expected 'bitmap' or 'list'"
            )
        if self.build_backend not in ("bitmap", "set"):
            raise ValueError(
                f"unknown build_backend {self.build_backend!r}; "
                "expected 'bitmap' or 'set'"
            )
        if self.mask_backend not in ("int", "words"):
            raise ValueError(
                f"unknown mask_backend {self.mask_backend!r}; "
                "expected 'int' or 'words'"
            )

    @property
    def needs_masks(self) -> bool:
        """Whether the search must compute deadend masks at all."""
        return self.use_nogood_vertex or self.use_nogood_edge or self.use_backjumping

    # ------------------------------------------------------------------
    # Ablation presets (Fig. 9)
    # ------------------------------------------------------------------

    @classmethod
    def baseline(cls) -> "GuPConfig":
        """Conventional backtracking: no guards, no backjumping."""
        return cls(
            use_reservation=False,
            use_nogood_vertex=False,
            use_nogood_edge=False,
            use_backjumping=False,
        )

    @classmethod
    def reservation_only(cls, r: Optional[int] = 3) -> "GuPConfig":
        """"R": reservation guards only."""
        return cls(
            reservation_limit=r,
            use_reservation=True,
            use_nogood_vertex=False,
            use_nogood_edge=False,
            use_backjumping=False,
        )

    @classmethod
    def r_nv(cls) -> "GuPConfig":
        """"R+NV": reservation plus vertex nogood guards."""
        return cls(
            use_reservation=True,
            use_nogood_vertex=True,
            use_nogood_edge=False,
            use_backjumping=False,
        )

    @classmethod
    def r_nv_ne(cls) -> "GuPConfig":
        """"R+NV+NE": all guards, still no backjumping."""
        return cls(
            use_reservation=True,
            use_nogood_vertex=True,
            use_nogood_edge=True,
            use_backjumping=False,
        )

    @classmethod
    def full(cls) -> "GuPConfig":
        """"All": complete GuP (the default)."""
        return cls()

    def with_reservation_limit(self, r: Optional[int]) -> "GuPConfig":
        """Copy with a different ``r`` (Fig. 8 sweep)."""
        return replace(self, reservation_limit=r)
