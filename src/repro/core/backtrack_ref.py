"""Reference list-based guarded backtracking (the seed implementation).

This is the pre-dense-index implementation of Algorithm 2, kept verbatim
as the **list backend** (``GuPConfig.candidate_backend = "list"``): local
candidate sets are Python lists and refinement visits every surviving
candidate.  It exists for two reasons:

* the differential test (``tests/test_bitmap_cs.py``) proves the bitmap
  backend in :mod:`repro.core.backtrack` returns byte-identical
  embeddings, stats, and termination status;
* the hot-path benchmark (``benchmarks/bench_hotpath.py``) measures the
  bitmap backend's speedup against this baseline.

Algorithmic documentation lives in :mod:`repro.core.backtrack`; the two
modules implement the same search over different candidate
representations.

This module implements the search step of GuP: local-candidate
refinement (Definition 3.18), bounding sets (Definition 3.19), the four
conflict kinds and their masks (Definitions 3.22/3.23), deadend masks
(Definition 3.26), fixed deadend masks for edge guards (Definition 3.30),
nogood recording in search-node encoding (§3.5.1), and backjumping
(Algorithm 2, line 14).

Query-vertex sets are ``int`` bitmasks throughout (bit ``i`` = ``u_i``).

Fixed-deadend-mask propagation
------------------------------
Every candidate edge from the assignment just made, ``(u_k, v)``, to a
forward candidate ``(u_j, v')`` is *watched* while the child subtree is
explored.  Definition 3.30 collapses as follows (see DESIGN.md §3):

* if ``v'`` is dropped from the local candidates of ``u_j`` while the
  watch is live, the whole subtree below the drop has fixed mask
  ``{u_l}`` (adjacency drop, case 4) or ``dom(NE) ∪ {u_l}`` (guard drop,
  case 5), where ``u_l`` is the dropping assignment;
* at depth ``j`` the watched pair resolves to
  ``deadend_mask(M ⊕ v') \\ {u_j}`` — case (1) gives every child of the
  depth-``j`` node this same value, so case (6) always fires there;
* interior nodes combine children values exactly like Definition 3.26:
  an early child value without the node's own bit wins (case 6),
  otherwise the union of children values plus the bounding set, minus
  the node's bit (case 7);
* a pair contained in any full embedding of the subtree is never
  recorded (case 2);
* on a backjump with mask ``K``, ``M[K]`` is a nogood contained in the
  current embedding, so every live pair soundly resolves to ``K``.

When the search aborts (embedding cap / timeout), subtrees are no longer
exhaustively explored and prove nothing: all recording stops immediately
and the recursion unwinds.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.config import GuPConfig
from repro.core.gcs import GuardedCandidateSpace
from repro.core.nogood import NogoodStore, make_nogood_store
from repro.matching.limits import SearchLimits
from repro.matching.result import SearchStats, TerminationStatus
from repro.utils.timer import Deadline

Pair = Tuple[int, int]
_EMPTY_DICT: Dict[Pair, int] = {}
_EMPTY_SET: Set[Pair] = set()


class ListGuPSearch:
    """One guarded backtracking run over a GCS.

    Not reusable: construct a fresh instance per query (the nogood
    store, the search-node counter, and all counters are per-run state).
    """

    def __init__(
        self,
        gcs: GuardedCandidateSpace,
        config: Optional[GuPConfig] = None,
        limits: Optional[SearchLimits] = None,
        nogoods: Optional[NogoodStore] = None,
        max_watches: int = 100_000,
        observer: Optional[object] = None,
        symmetry_prev: Optional[Sequence[int]] = None,
    ) -> None:
        """``observer``, when given, receives search events — see
        :class:`repro.analysis.trace.SearchObserver` for the protocol.
        Tracing is for analysis/visualization; it does not alter the
        search.

        ``symmetry_prev`` (from :mod:`repro.core.symmetry`) enforces
        strictly increasing images inside query equivalence classes:
        ``symmetry_prev[k] = p >= 0`` demands ``M(u_k) > M(u_p)``.  The
        search then enumerates class representatives only (the engine
        expands them back)."""
        self.gcs = gcs
        self._observer = observer
        self.config = config or GuPConfig()
        self.limits = limits or SearchLimits()
        self.stats = SearchStats()
        self.stats.candidate_vertices = gcs.cs.total_candidates()
        self.stats.candidate_edges = gcs.cs.num_candidate_edges

        query = gcs.query
        self._n = query.num_vertices
        self._forward: List[Tuple[int, ...]] = [
            tuple(j for j in query.neighbors(i) if j > i) for i in query.vertices()
        ]
        # Forward neighbors whose query edge lies in the 2-core: the only
        # edges on which NE guards are generated and tested (§3.3.3).
        self._forward_core: List[FrozenSet[int]] = [
            frozenset(j for j in self._forward[i] if gcs.edge_in_two_core(i, j))
            for i in query.vertices()
        ]
        self._data = gcs.data
        self._reservations = gcs.reservations if self.config.use_reservation else {}
        # Per-vertex reservation index: avoids tuple-key hashing in the
        # hot candidate loop (one plain dict get per local candidate).
        self._reservations_at: List[Dict[int, FrozenSet[int]]] = [
            {} for _ in range(self._n)
        ]
        for (i, v), guard in self._reservations.items():
            self._reservations_at[i][v] = guard
        # Always a fresh store unless the caller supplies one: encoded
        # nogoods reference this run's search-node ids, so guards from a
        # previous run over the same GCS would match spuriously.
        if nogoods is not None:
            self._nogoods = nogoods
        else:
            self._nogoods = make_nogood_store(self.config.nogood_representation)
            gcs.nogoods = self._nogoods
        self._max_watches = max_watches
        self._symmetry_prev = symmetry_prev

        # Per-run search state.
        self._deadline: Deadline = Deadline(None)
        self._embedding: List[int] = []
        self._image: Dict[int, int] = {}
        self._anc: List[int] = [0] * (self._n + 1)
        self._node_counter = 0
        self._aborted = False
        self._status = TerminationStatus.COMPLETE
        self._results: List[Tuple[int, ...]] = []
        # Watched candidate edges: target query vertex -> v' -> refcount.
        self._watches: Dict[int, Dict[int, int]] = {}
        self._watch_total = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(
        self, root_mask: Optional[int] = None
    ) -> Tuple[List[Tuple[int, ...]], TerminationStatus]:
        """Enumerate embeddings of the (reordered) query.

        ``root_mask`` restricts the root level to the candidates of
        ``u_0`` at the set *positions* of the sorted ``C(u_0)`` — the
        same root-partitioning contract as the bitmap backend's
        :meth:`repro.core.backtrack.GuPSearch.run`.

        Returns the embeddings (in reordered query-vertex numbering —
        the engine translates back) and the termination status.
        """
        if self._n == 0:
            return [()], TerminationStatus.COMPLETE
        if self.gcs.cs.is_empty():
            return [], TerminationStatus.COMPLETE

        self._deadline = self.limits.make_deadline()
        local: List[Sequence[int]] = [
            self.gcs.cs.candidates[i] for i in range(self._n)
        ]
        if root_mask is not None:
            local[0] = tuple(
                v
                for p, v in enumerate(self.gcs.cs.candidates[0])
                if root_mask >> p & 1
            )
        bounds = [0] * self._n
        self._backtrack(0, local, bounds)
        return self._results, self._status

    # ------------------------------------------------------------------
    # Recording helpers
    # ------------------------------------------------------------------

    def _abort(self, status: TerminationStatus) -> None:
        self._aborted = True
        self._status = status

    def _emit_embedding(self) -> None:
        self.stats.embeddings_found += 1
        if self.limits.collect:
            self._results.append(tuple(self._embedding))
        if self.limits.embeddings_reached(self.stats.embeddings_found):
            self._abort(TerminationStatus.EMBEDDING_LIMIT)

    def _record_nv(self, mask: int) -> None:
        """Record NV from nogood ``(M ⊕ v)[mask]``.

        The caller guarantees ``self._embedding`` currently holds the
        assignment of every bit in ``mask``; the guard is attached to the
        highest-bit assignment and stores the rest (§3.3.2).
        """
        top = mask.bit_length() - 1
        w = self._embedding[top]
        rest = mask & ~(1 << top)
        self._nogoods.record_vertex_nogood(
            top, w, rest, self._anc, self._embedding
        )
        self.stats.nogoods_recorded_vertex += 1
        # §3.4 accounting: size of the discovered nogood (M ⊕ v)[mask].
        self.stats.nogood_size_sum += mask.bit_count()
        self.stats.nogood_size_count += 1

    def _reservation_conflict_mask(self, guard: FrozenSet[int], k: int) -> int:
        """Definition 3.23 (2): assigners of the reserved vertices + u_k."""
        mask = 1 << k
        image = self._image
        for w in guard:
            mask |= 1 << image[w]
        return mask

    # ------------------------------------------------------------------
    # The recursion
    # ------------------------------------------------------------------

    def _backtrack(
        self,
        depth: int,
        local: List[Sequence[int]],
        bounds: List[int],
    ) -> Tuple[bool, int, Dict[Pair, int], Set[Pair]]:
        """Explore all extensions of the current partial embedding.

        Returns ``(found, mask, pair_vals, used_pairs)``:

        * ``found`` — whether any full embedding exists in the subtree;
        * ``mask`` — the deadend mask of the current extension
          (Definition 3.26; meaningful only when ``found`` is false and
          the run was not aborted);
        * ``pair_vals`` — fixed deadend masks (Definition 3.30) for every
          watched pair live at this node (including pairs resolved at
          this very depth);
        * ``used_pairs`` — watched pairs contained in some embedding
          found inside this subtree.
        """
        stats = self.stats
        stats.recursions += 1
        if self._deadline.poll() or self.limits.recursions_exhausted(
            stats.recursions
        ):
            self._abort(TerminationStatus.TIMEOUT)
        if self._aborted:
            return (False, 0, _EMPTY_DICT, _EMPTY_SET)

        k = depth
        if k == self._n:
            self._emit_embedding()
            if self._observer is not None:
                self._observer.on_embedding(tuple(self._embedding))
            return (True, 0, _EMPTY_DICT, _EMPTY_SET)

        config = self.config
        obs = self._observer
        needs_masks = config.needs_masks
        use_nv = config.use_nogood_vertex
        use_ne = config.use_nogood_edge
        use_bj = config.use_backjumping
        image = self._image
        embedding = self._embedding
        anc = self._anc
        nogoods = self._nogoods
        data = self._data
        reservations_k = self._reservations_at[k] if self._reservations else None
        sym_prev_k = self._symmetry_prev[k] if self._symmetry_prev else -1
        forward = self._forward[k]
        forward_core = self._forward_core[k]
        k_bit = 1 << k
        below_k = k_bit - 1

        # Ancestor-watched pairs live at this node, grouped by target.
        anc_pairs: List[Pair] = []
        watched_fwd: Dict[int, Set[int]] = {}
        if use_ne and self._watch_total:
            for j, per_v in self._watches.items():
                if j > k:
                    lj = local[j]
                    live = {v2 for v2, cnt in per_v.items() if cnt > 0 and v2 in lj}
                    if live:
                        watched_fwd[j] = live
                        anc_pairs.extend((j, v2) for v2 in live)
        targeting = self._watches.get(k) if use_ne and self._watch_total else None

        found_any = False
        union_mask = 0
        early_mask: Optional[int] = None
        backjump_mask: Optional[int] = None

        pair_used: Set[Pair] = set()
        pair_early: Dict[Pair, int] = {}
        pair_acc: Dict[Pair, int] = {}
        resolved_here: Dict[Pair, int] = {}

        def fold_pairs(child_vals: Dict[Pair, int], child_pre: Dict[Pair, int],
                       child_used: Set[Pair], conflict: Optional[int]) -> None:
            """Fold one child's per-pair values into the accumulators.

            ``conflict`` is the child's conflict mask when the child was
            never recursed into — it then applies to every pair
            (Definition 3.30 case 3).
            """
            for p in anc_pairs:
                if p in pair_used:
                    continue
                if p in child_used:
                    pair_used.add(p)
                    continue
                if conflict is not None:
                    val = conflict
                elif p in child_pre:
                    val = child_pre[p]
                elif p in child_vals:
                    val = child_vals[p]
                else:
                    # Defensive: a tracking gap must never produce an
                    # over-strong (empty) mask — treat the pair as used,
                    # which merely skips one recording opportunity.
                    pair_used.add(p)
                    continue
                if not val & k_bit and p not in pair_early:
                    pair_early[p] = val
                pair_acc[p] = pair_acc.get(p, 0) | val

        for v in local[k]:
            stats.local_candidates_seen += 1
            conflict_mask: Optional[int] = None
            child_bounds = bounds
            refinement_conflict = False

            # ---- symmetry breaking (extension; repro.core.symmetry) --
            conflict_kind = ""
            if sym_prev_k >= 0 and v <= embedding[sym_prev_k]:
                stats.pruned_symmetry += 1
                conflict_mask = (1 << sym_prev_k) | k_bit
                conflict_kind = "symmetry"
            # ---- line 4: injectivity --------------------------------
            elif (assigner := image.get(v)) is not None:
                stats.pruned_injectivity += 1
                conflict_mask = (1 << assigner) | k_bit
                conflict_kind = "injectivity"
            else:
                # ---- line 5: reservation guard -----------------------
                if reservations_k is not None:
                    rg = reservations_k.get(v)
                    if rg is not None and all(w in image for w in rg):
                        stats.pruned_reservation += 1
                        conflict_mask = self._reservation_conflict_mask(rg, k)
                        conflict_kind = "reservation"
                # ---- line 5: nogood guard on the vertex --------------
                if conflict_mask is None and use_nv:
                    dom = nogoods.match_vertex(k, v, anc, embedding)
                    if dom is not None:
                        stats.pruned_nogood_vertex += 1
                        conflict_mask = dom | k_bit
                        conflict_kind = "nogood_vertex"

            child_local: List[Sequence[int]] = local
            child_predrop: Dict[Pair, int] = _EMPTY_DICT
            refined_core: List[Tuple[int, List[int]]] = []
            if conflict_mask is None:
                # ---- lines 6-9: refine local candidates --------------
                child_local = list(local)
                if needs_masks:
                    child_bounds = list(bounds)
                if anc_pairs:
                    child_predrop = {}
                nbr_v = data.neighbor_set(v)
                for j in forward:
                    stats.refine_ops += 1
                    old = local[j]
                    check_guards = use_ne and j in forward_core
                    wset = watched_fwd.get(j)
                    guard_doms = 0
                    refined: List[int] = []
                    for v2 in old:
                        if v2 not in nbr_v:
                            if wset and v2 in wset:
                                child_predrop[(j, v2)] = k_bit
                            continue
                        if check_guards:
                            dom = nogoods.match_edge(k, v, j, v2, anc, embedding)
                            if dom is not None:
                                stats.pruned_nogood_edge += 1
                                guard_doms |= dom
                                if wset and v2 in wset:
                                    child_predrop[(j, v2)] = dom | k_bit
                                continue
                        refined.append(v2)
                    child_local[j] = refined
                    if check_guards:
                        refined_core.append((j, refined))
                    if needs_masks and (len(refined) != len(old) or guard_doms):
                        child_bounds[j] = bounds[j] | k_bit | guard_doms
                    if not refined:
                        # No-candidate conflict (Definition 3.23 case 4).
                        conflict_mask = child_bounds[j] if needs_masks else k_bit
                        refinement_conflict = True
                        conflict_kind = "no_candidate"
                        break

            if conflict_mask is not None:
                if obs is not None:
                    obs.on_conflict(k, v, conflict_kind, conflict_mask)
                union_mask |= conflict_mask
                if needs_masks:
                    # Algorithm 2: extensions filtered at lines 4-5 are
                    # skipped by ``continue``; only the no-candidate case
                    # reaches the recording lines 11-13.
                    if refinement_conflict:
                        if use_nv:
                            embedding.append(v)
                            self._record_nv(conflict_mask)
                            embedding.pop()
                        if use_ne and refined_core:
                            # Line 11 with Definition 3.30 case (3): the
                            # conflict mask is the fixed mask of every
                            # candidate edge incident to (u_k, v).
                            dom = conflict_mask & below_k
                            for j, lst in refined_core:
                                for v2 in lst:
                                    nogoods.record_edge_nogood(
                                        k, v, j, v2, dom, anc, embedding
                                    )
                                    stats.nogoods_recorded_edge += 1
                    if anc_pairs:
                        fold_pairs(_EMPTY_DICT, _EMPTY_DICT, _EMPTY_SET, conflict_mask)
                    if targeting and targeting.get(v, 0) > 0:
                        resolved_here[(k, v)] = conflict_mask & ~k_bit
                    if not conflict_mask & k_bit:
                        if use_bj:
                            stats.backjumps += 1
                            backjump_mask = conflict_mask
                            if obs is not None:
                                obs.on_backjump(k, conflict_mask)
                            break
                        if early_mask is None:
                            early_mask = conflict_mask
                continue

            # ---- line 10: recurse -----------------------------------
            embedding.append(v)
            image[v] = k
            self._node_counter += 1
            anc[k + 1] = self._node_counter

            own_pairs: List[Pair] = []
            if use_ne and forward_core and self._watch_total < self._max_watches:
                watches = self._watches
                for j in forward_core:
                    per_v = watches.get(j)
                    if per_v is None:
                        per_v = watches[j] = {}
                    for v2 in child_local[j]:
                        per_v[v2] = per_v.get(v2, 0) + 1
                        own_pairs.append((j, v2))
                self._watch_total += len(own_pairs)

            if obs is not None:
                obs.on_descend(k, v, self._node_counter)
            child_found, child_mask, child_vals, child_used = self._backtrack(
                k + 1, child_local, child_bounds
            )
            if obs is not None:
                obs.on_return(k, v, child_found, child_mask)

            embedding.pop()
            del image[v]

            if self._aborted:
                self._release_watches(own_pairs)
                return (found_any or child_found, 0, _EMPTY_DICT, _EMPTY_SET)

            # ---- line 11: update NE for edges incident to (u_k, v) --
            if own_pairs:
                for p in own_pairs:
                    if p in child_used or p not in child_vals:
                        continue
                    dom = child_vals[p] & below_k
                    nogoods.record_edge_nogood(
                        k, v, p[0], p[1], dom, anc, embedding
                    )
                    stats.nogoods_recorded_edge += 1
                self._release_watches(own_pairs)

            if anc_pairs:
                fold_pairs(child_vals, child_predrop, child_used, None)
            if targeting and targeting.get(v, 0) > 0:
                if child_found:
                    pair_used.add((k, v))
                else:
                    resolved_here[(k, v)] = child_mask & ~k_bit

            # ---- lines 12-14: deadend discovery + backjumping --------
            if child_found:
                found_any = True
            else:
                stats.futile_recursions += 1
                union_mask |= child_mask
                if needs_masks:
                    if use_nv and child_mask:
                        embedding.append(v)
                        self._record_nv(child_mask)
                        embedding.pop()
                    if not child_mask & k_bit:
                        if use_bj:
                            stats.backjumps += 1
                            backjump_mask = child_mask
                            if obs is not None:
                                obs.on_backjump(k, child_mask)
                            break
                        if early_mask is None:
                            early_mask = child_mask

        # ---- node epilogue ------------------------------------------
        if not needs_masks:
            return (found_any, 0, _EMPTY_DICT, _EMPTY_SET)

        if backjump_mask is not None:
            node_mask = backjump_mask
        elif found_any:
            node_mask = 0
        elif early_mask is not None:
            node_mask = early_mask
        else:
            node_mask = (union_mask | bounds[k]) & ~k_bit

        if not anc_pairs and not resolved_here and not (
            backjump_mask is not None and targeting
        ):
            return (found_any, node_mask, _EMPTY_DICT, pair_used)

        pair_vals: Dict[Pair, int] = {}
        bk = bounds[k]
        for p in anc_pairs:
            if p in pair_used:
                continue
            if backjump_mask is not None:
                pair_vals[p] = backjump_mask
            elif p in pair_early:
                pair_vals[p] = pair_early[p]
            else:
                pair_vals[p] = (pair_acc.get(p, 0) | bk) & ~k_bit
        for p, val in resolved_here.items():
            if p not in pair_used:
                pair_vals[p] = val
        if backjump_mask is not None and targeting:
            # Pairs targeting this depth never reached resolve to the
            # backjump nogood (sound: M[K] alone is a nogood).
            lk = local[k]
            for v2, cnt in targeting.items():
                if cnt > 0 and v2 in lk:
                    p = (k, v2)
                    if p not in pair_vals and p not in pair_used:
                        pair_vals[p] = backjump_mask
        return (found_any, node_mask, pair_vals, pair_used)

    # ------------------------------------------------------------------
    # Watch helpers
    # ------------------------------------------------------------------

    def _release_watches(self, pairs: List[Pair]) -> None:
        if not pairs:
            return
        watches = self._watches
        for j, v2 in pairs:
            per_v = watches.get(j)
            if per_v is not None:
                cnt = per_v.get(v2, 0) - 1
                if cnt <= 0:
                    per_v.pop(v2, None)
                else:
                    per_v[v2] = cnt
        self._watch_total -= len(pairs)
