"""The guarded candidate space (GCS), §3.1.

A GCS packages everything GuP's backtracking needs:

* the candidate space (candidate vertices + candidate edges) built by
  extended DAG-graph DP over the *reordered* query graph (the matching
  order is baked in by renumbering, §2.2);
* the reservation guard of every candidate vertex (Algorithm 1);
* a (mutable) nogood store, populated on the fly during search;
* the set of query edges inside the 2-core — nogood guards on edges are
  generated only there (§3.3.3).

Construction mirrors the paper's three steps: candidate filtering and
matching-order optimization happen inside :func:`build_gcs`; reservation
guards are generated immediately after; the backtracking step then reads
the GCS.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.config import GuPConfig
from repro.core.nogood import NogoodStore
from repro.core.reservation import (
    ReservationGuards,
    generate_reservation_guards,
    reservation_memory_bytes,
)
from repro.filtering.artifacts import DataArtifacts
from repro.filtering.candidate_space import CandidateSpace, build_candidate_space
from repro.filtering.dag import QueryDag, build_query_dag
from repro.filtering.mask_kernels import get_kernels
from repro.filtering.masks import MaskView, build_candidate_space_masks
from repro.filtering.nlf import nlf_candidates
from repro.graph.algorithms import two_core_edges
from repro.graph.graph import Graph
from repro.ordering.base import make_order


class BuildInvariantCache:
    """Memoized per-query build invariants (satellite of the dense build path).

    ``two_core_edges(reordered)`` depends only on the reordered query
    graph; the query DAG depends on the reordered query plus the initial
    candidate-set sizes; the matching order depends on the query plus
    the exact initial candidate sets (the cache key carries them in
    full, so equal keys provably yield equal orders).  All three were
    recomputed on every ``build_gcs`` call even for repeated queries; a
    :class:`GuPEngine` owns one of these caches so the service warm
    path (same query, same data) does zero recomputes — ``recomputes``
    is the counter the tests pin.

    Thread-safety note: engines are shared across server worker threads;
    individual dict reads/writes are atomic under the GIL, so a race at
    worst recomputes a value twice — never returns a wrong one.
    """

    __slots__ = (
        "max_entries",
        "_two_cores",
        "_dags",
        "_orders",
        "hits",
        "two_core_recomputes",
        "dag_recomputes",
        "order_recomputes",
    )

    def __init__(self, max_entries: int = 256) -> None:
        self.max_entries = max_entries
        self._two_cores: Dict[Graph, FrozenSet[Tuple[int, int]]] = {}
        self._dags: Dict[Tuple[Graph, Tuple[int, ...]], QueryDag] = {}
        self._orders: Dict[Tuple, List[int]] = {}
        self.hits = 0
        self.two_core_recomputes = 0
        self.dag_recomputes = 0
        self.order_recomputes = 0

    @property
    def recomputes(self) -> int:
        """Total from-scratch computations (zero on a warm repeat)."""
        return self.two_core_recomputes + self.dag_recomputes + self.order_recomputes

    @staticmethod
    def _evict_oldest(cache: Dict, cap: int) -> None:
        # list(cache) snapshots the keys in one C-level (GIL-atomic) call,
        # so a concurrent insert cannot raise "changed size during
        # iteration" the way next(iter(cache)) could.
        excess = len(cache) - cap
        if excess > 0:
            for key in list(cache)[:excess]:
                cache.pop(key, None)

    def two_core(self, reordered: Graph) -> FrozenSet[Tuple[int, int]]:
        got = self._two_cores.get(reordered)
        if got is None:
            self.two_core_recomputes += 1
            got = frozenset(two_core_edges(reordered))
            self._two_cores[reordered] = got
            self._evict_oldest(self._two_cores, self.max_entries)
        else:
            self.hits += 1
        return got

    def dag(self, reordered: Graph, sizes: Sequence[int]) -> QueryDag:
        key = (reordered, tuple(sizes))
        got = self._dags.get(key)
        if got is None:
            self.dag_recomputes += 1
            got = build_query_dag(reordered, sizes)
            self._dags[key] = got
            self._evict_oldest(self._dags, self.max_entries)
        else:
            self.hits += 1
        return got

    def order(
        self,
        ordering: str,
        query: Graph,
        initial: Sequence[Sequence[int]],
        key_payload: Tuple,
    ) -> List[int]:
        """Memoized :func:`make_order`.

        ``key_payload`` must determine ``initial`` exactly (the dense
        build path passes the candidate-mask tuple, the set path the
        tuple-ized candidate lists), so a hit is guaranteed to reproduce
        the miss's order even for orderings that read candidate
        *contents*, not just sizes.
        """
        key = (ordering, query, key_payload)
        got = self._orders.get(key)
        if got is None:
            self.order_recomputes += 1
            got = make_order(ordering, query, initial)
            self._orders[key] = got
            self._evict_oldest(self._orders, self.max_entries)
        else:
            self.hits += 1
        return got


_SELF_BUILT_ARTIFACTS: Optional[DataArtifacts] = None


def _self_built_artifacts(data: Graph) -> DataArtifacts:
    """Per-graph artifacts for artifact-less ``build_gcs`` callers.

    The bitmap build path needs :class:`DataArtifacts`; engines own
    theirs, but direct callers (CLI ``inspect``, the parallel
    simulations, analysis helpers) loop queries against one data graph
    without any.  A one-entry memo keyed by graph *identity* makes them
    pay the per-graph cost once instead of per query.  The entry
    strong-references the graph (bounded: one graph); callers juggling
    several data graphs should pass explicit artifacts instead.
    Thread-race worst case is a duplicate build, never a wrong result
    (the ``data is`` check can't accept a foreign graph).
    """
    global _SELF_BUILT_ARTIFACTS
    cached = _SELF_BUILT_ARTIFACTS
    if cached is None or cached.data is not data:
        cached = _SELF_BUILT_ARTIFACTS = DataArtifacts(data)
    return cached


@dataclass
class GuardedCandidateSpace:
    """Candidate space + guards for one (query, data) pair.

    ``order[i]`` is the original query-vertex id matched at step ``i``;
    ``query`` is the reordered query graph whose vertex ``i`` is that
    original vertex.  Embeddings found over ``query`` are translated back
    by :meth:`to_original_embedding`.
    """

    original_query: Graph
    query: Graph
    data: Graph
    order: List[int]
    cs: CandidateSpace
    reservations: ReservationGuards
    two_core: FrozenSet[Tuple[int, int]]
    nogoods: NogoodStore = field(default_factory=NogoodStore)
    build_seconds: float = 0.0

    @property
    def candidates(self) -> Tuple[Tuple[int, ...], ...]:
        return self.cs.candidates

    def reservation(self, i: int, v: int) -> FrozenSet[int]:
        """``R(u_i, v)``; defaults to the trivial reservation."""
        return self.reservations.get((i, v), frozenset((v,)))

    def edge_in_two_core(self, i: int, j: int) -> bool:
        """Whether query edge ``(u_i, u_j)`` lies inside the 2-core."""
        return (min(i, j), max(i, j)) in self.two_core

    def to_original_embedding(self, embedding: Tuple[int, ...]) -> Tuple[int, ...]:
        """Translate a reordered-query embedding to original vertex ids."""
        out = [0] * len(embedding)
        for position, v in enumerate(embedding):
            out[self.order[position]] = v
        return tuple(out)

    def fresh_nogoods(self) -> NogoodStore:
        """New empty nogood store (one per worker in parallel search)."""
        store = NogoodStore()
        self.nogoods = store
        return store

    def memory_estimate(self) -> Dict[str, int]:
        """Byte estimates in Table 3's cost model."""
        cs_bytes = (
            self.cs.total_candidates() * 8
            + self.cs.num_candidate_edges * 8
        )
        nv_bytes, ne_bytes = self.nogoods.memory_estimate_bytes()
        return {
            "candidate_space": cs_bytes,
            "reservation": reservation_memory_bytes(self.reservations),
            "nogood_vertices": nv_bytes,
            "nogood_edges": ne_bytes,
        }


def build_gcs(
    query: Graph,
    data: Graph,
    config: Optional[GuPConfig] = None,
    artifacts: Optional["DataArtifacts"] = None,
    invariants: Optional[BuildInvariantCache] = None,
    seed_masks: Optional[Sequence[int]] = None,
    stage_log=None,
) -> GuardedCandidateSpace:
    """Steps (1) and (2) of GuP (§3.1): GCS construction.

    1. initial candidates (LDF+NLF) on the original query;
    2. matching-order optimization (default: VC [36]);
    3. query renumbering so the order is ascending id;
    4. candidate filtering (default: extended DAG-graph DP [20]) and
       candidate-edge materialization over the reordered query;
    5. reservation-guard generation (Algorithm 1), unless disabled.

    With ``config.build_backend == "bitmap"`` (the default) the whole
    pipeline runs in the dense mask domain of
    :mod:`repro.filtering.masks`; ``"set"`` keeps the seed set/dict
    pipeline.  Both yield byte-identical GCSes.

    ``artifacts`` optionally supplies precomputed data-graph-side filter
    state (:class:`repro.filtering.artifacts.DataArtifacts`) so batch
    engines skip the per-query LDF scan and NLF table build; the bitmap
    build path needs them and self-builds when none are passed.
    ``invariants`` optionally memoizes the reordered query's two-core
    edge set and DAG across repeated builds (engines own one).  Results
    are identical with or without either.

    ``seed_masks`` (bitmap backend only) replaces the LDF+NLF seeding
    with caller-supplied per-query-vertex candidate masks.  The
    continuous-matching engine (:mod:`repro.dynamic.continuous`) passes
    delta-restricted masks here: restricting ``C(u)`` before filtering
    is sound and complete for the restricted enumeration problem, so the
    search finds exactly the embeddings mapping ``u`` into the
    restriction.

    ``stage_log`` (a :class:`repro.obs.explain.FilterStageLog`) records
    per-stage candidate counts for EXPLAIN — a read-only observer, so a
    logged build returns the identical GCS.
    """
    config = config or GuPConfig()
    started = time.perf_counter()

    if artifacts is not None and artifacts.data is not data:
        raise ValueError("artifacts were built for a different data graph")
    use_masks = config.build_backend == "bitmap"
    kernels = get_kernels(config.mask_backend)
    if seed_masks is not None:
        if not use_masks:
            raise ValueError("seed_masks requires build_backend='bitmap'")
        if len(seed_masks) != query.num_vertices:
            raise ValueError(
                f"seed_masks has {len(seed_masks)} entries for a "
                f"{query.num_vertices}-vertex query"
            )
    if use_masks and artifacts is None:
        artifacts = _self_built_artifacts(data)

    if use_masks:
        initial_masks = (
            list(seed_masks)
            if seed_masks is not None
            else artifacts.nlf_candidate_masks(query, kernels=kernels)
        )
        initial: List[Sequence[int]] = [MaskView(m) for m in initial_masks]
    elif artifacts is not None:
        initial = artifacts.nlf_candidates(query)
    else:
        initial = nlf_candidates(query, data)
    if invariants is not None:
        key_payload = (
            tuple(initial_masks)
            if use_masks
            else tuple(tuple(c) for c in initial)
        )
        order = invariants.order(config.ordering, query, initial, key_payload)
    else:
        order = make_order(config.ordering, query, initial)
    reordered = query.relabeled(order)
    # The initial candidates only depend on labels/degrees, which the
    # renumbering preserves: reuse them instead of refiltering.
    if use_masks:
        reordered_masks = [initial_masks[old] for old in order]
        dag = None
        if invariants is not None and config.filter_method == "dagdp":
            sizes = [m.bit_count() for m in reordered_masks]
            dag = invariants.dag(reordered, sizes)
        cs = build_candidate_space_masks(
            reordered,
            data,
            artifacts,
            method=config.filter_method,
            base_masks=reordered_masks,
            dag=dag,
            kernels=kernels,
            stage_log=stage_log,
        )
    else:
        reordered_base = [list(initial[old]) for old in order]
        dag = None
        if invariants is not None and config.filter_method == "dagdp":
            sizes = [len(c) for c in reordered_base]
            dag = invariants.dag(reordered, sizes)
        cs = build_candidate_space(
            reordered, data, method=config.filter_method,
            base=reordered_base, dag=dag,
        )
        if stage_log is not None:
            # The set pipeline is opaque to per-round hooks; record the
            # seed and the filtered fixpoint (the stages that exist).
            stage_log.record("seed", [len(c) for c in reordered_base])
            stage_log.record(
                "filtered", [len(c) for c in cs.candidates]
            )

    if config.use_reservation:
        reservations = generate_reservation_guards(
            cs, size_limit=config.reservation_limit, kernels=kernels
        )
    else:
        reservations = {}

    if config.use_nogood_edge and config.ne_two_core_only:
        core_edges = (
            invariants.two_core(reordered)
            if invariants is not None
            else frozenset(two_core_edges(reordered))
        )
    else:
        core_edges = frozenset(reordered.edges())

    return GuardedCandidateSpace(
        original_query=query,
        query=reordered,
        data=data,
        order=order,
        cs=cs,
        reservations=reservations,
        two_core=core_edges,
        build_seconds=time.perf_counter() - started,
    )
