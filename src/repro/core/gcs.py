"""The guarded candidate space (GCS), §3.1.

A GCS packages everything GuP's backtracking needs:

* the candidate space (candidate vertices + candidate edges) built by
  extended DAG-graph DP over the *reordered* query graph (the matching
  order is baked in by renumbering, §2.2);
* the reservation guard of every candidate vertex (Algorithm 1);
* a (mutable) nogood store, populated on the fly during search;
* the set of query edges inside the 2-core — nogood guards on edges are
  generated only there (§3.3.3).

Construction mirrors the paper's three steps: candidate filtering and
matching-order optimization happen inside :func:`build_gcs`; reservation
guards are generated immediately after; the backtracking step then reads
the GCS.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.config import GuPConfig
from repro.core.nogood import NogoodStore
from repro.core.reservation import (
    ReservationGuards,
    generate_reservation_guards,
    reservation_memory_bytes,
)
from repro.filtering.artifacts import DataArtifacts
from repro.filtering.candidate_space import CandidateSpace, build_candidate_space
from repro.filtering.nlf import nlf_candidates
from repro.graph.algorithms import two_core_edges
from repro.graph.graph import Graph
from repro.ordering.base import make_order


@dataclass
class GuardedCandidateSpace:
    """Candidate space + guards for one (query, data) pair.

    ``order[i]`` is the original query-vertex id matched at step ``i``;
    ``query`` is the reordered query graph whose vertex ``i`` is that
    original vertex.  Embeddings found over ``query`` are translated back
    by :meth:`to_original_embedding`.
    """

    original_query: Graph
    query: Graph
    data: Graph
    order: List[int]
    cs: CandidateSpace
    reservations: ReservationGuards
    two_core: FrozenSet[Tuple[int, int]]
    nogoods: NogoodStore = field(default_factory=NogoodStore)
    build_seconds: float = 0.0

    @property
    def candidates(self) -> Tuple[Tuple[int, ...], ...]:
        return self.cs.candidates

    def reservation(self, i: int, v: int) -> FrozenSet[int]:
        """``R(u_i, v)``; defaults to the trivial reservation."""
        return self.reservations.get((i, v), frozenset((v,)))

    def edge_in_two_core(self, i: int, j: int) -> bool:
        """Whether query edge ``(u_i, u_j)`` lies inside the 2-core."""
        return (min(i, j), max(i, j)) in self.two_core

    def to_original_embedding(self, embedding: Tuple[int, ...]) -> Tuple[int, ...]:
        """Translate a reordered-query embedding to original vertex ids."""
        out = [0] * len(embedding)
        for position, v in enumerate(embedding):
            out[self.order[position]] = v
        return tuple(out)

    def fresh_nogoods(self) -> NogoodStore:
        """New empty nogood store (one per worker in parallel search)."""
        store = NogoodStore()
        self.nogoods = store
        return store

    def memory_estimate(self) -> Dict[str, int]:
        """Byte estimates in Table 3's cost model."""
        cs_bytes = (
            self.cs.total_candidates() * 8
            + self.cs.num_candidate_edges * 8
        )
        nv_bytes, ne_bytes = self.nogoods.memory_estimate_bytes()
        return {
            "candidate_space": cs_bytes,
            "reservation": reservation_memory_bytes(self.reservations),
            "nogood_vertices": nv_bytes,
            "nogood_edges": ne_bytes,
        }


def build_gcs(
    query: Graph,
    data: Graph,
    config: Optional[GuPConfig] = None,
    artifacts: Optional["DataArtifacts"] = None,
) -> GuardedCandidateSpace:
    """Steps (1) and (2) of GuP (§3.1): GCS construction.

    1. initial candidates (LDF+NLF) on the original query;
    2. matching-order optimization (default: VC [36]);
    3. query renumbering so the order is ascending id;
    4. candidate filtering (default: extended DAG-graph DP [20]) and
       candidate-edge materialization over the reordered query;
    5. reservation-guard generation (Algorithm 1), unless disabled.

    ``artifacts`` optionally supplies precomputed data-graph-side filter
    state (:class:`repro.filtering.artifacts.DataArtifacts`) so batch
    engines skip the per-query LDF scan and NLF table build; results are
    identical with or without it.
    """
    config = config or GuPConfig()
    started = time.perf_counter()

    if artifacts is not None:
        if artifacts.data is not data:
            raise ValueError("artifacts were built for a different data graph")
        initial = artifacts.nlf_candidates(query)
    else:
        initial = nlf_candidates(query, data)
    order = make_order(config.ordering, query, initial)
    reordered = query.relabeled(order)
    # The initial candidates only depend on labels/degrees, which the
    # renumbering preserves: reuse them instead of refiltering.
    reordered_base = [list(initial[old]) for old in order]
    cs = build_candidate_space(
        reordered, data, method=config.filter_method, base=reordered_base
    )

    if config.use_reservation:
        reservations = generate_reservation_guards(
            cs, size_limit=config.reservation_limit
        )
    else:
        reservations = {}

    core_edges = (
        frozenset(two_core_edges(reordered))
        if config.use_nogood_edge and config.ne_two_core_only
        else frozenset(reordered.edges())
    )

    return GuardedCandidateSpace(
        original_query=query,
        query=reordered,
        data=data,
        order=order,
        cs=cs,
        reservations=reservations,
        two_core=core_edges,
        build_seconds=time.perf_counter() - started,
    )
