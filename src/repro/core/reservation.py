r"""Reservation guards (§3.2) — propagated injectivity constraints.

A *reservation* of candidate vertex ``(u_i, v)`` is a set ``S`` of data
vertices such that every subembedding rooted at ``(u_i, v)`` uses at
least one vertex of ``S`` (Definition 3.3).  If a partial embedding has
already consumed all of ``S`` (``S ⊆ Im(M[:i])``), assigning ``v`` to
``u_i`` can never be completed injectively — the candidate is pruned
(Lemma 3.6).

Generation (Algorithm 1) walks query vertices in reverse matching order.
For each candidate ``(u_i, v)`` and forward neighbor ``u_j``, it builds
the reservation graph ``G_R`` (Eq. 1): an edge ``(v', w)`` for every
forward-adjacent candidate ``v' ∈ N(v) ∩ C(u_j)`` and every
``w ∈ R(u_j, v') \ {v}``.  Any vertex cover of ``G_R`` that is
*matchable* (Lemma 3.7) is a reservation guard candidate (Lemma 3.11);
the smallest one over all forward neighbors becomes ``R(u_i, v)``, with
the trivial reservation ``{v}`` as fallback (Definition 3.12).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.filtering.candidate_space import CandidateSpace
from repro.filtering.mask_kernels import INT_KERNELS
from repro.utils.bipartite import has_saturating_matching
from repro.utils.vertexcover import constrained_vertex_cover

ReservationGuards = Dict[Tuple[int, int], FrozenSet[int]]
"""Mapping candidate vertex ``(i, v)`` -> reservation guard set."""


def is_matchable(
    cs: CandidateSpace,
    position: int,
    guard: FrozenSet[int],
    kernels=None,
) -> bool:
    """Lemma 3.7 matchability of ``guard`` as a reservation of position ``i``.

    The guard survives iff neither failure condition holds:

    (i)  some ``w ∈ S`` has ``C^{-1}(w)[:i] = ∅`` — no earlier query
         vertex can ever produce ``w`` in the image;
    (ii) some ``S' ⊆ S`` has ``|S'| > |C^{-1}(S')[:i]|`` — by Hall's
         theorem, equivalent to: ``S`` admits no matching into distinct
         earlier query vertices.

    On a mask-built CS (dense build path), small guards — the common
    case under the paper's default ``r = 3`` — are decided by checking
    Hall's condition directly on the ``C^{-1}`` query-vertex bitmasks:
    one AND per member plus popcounts over the subsets, no tuple
    materialization and no augmenting-path search.  Larger guards (and
    every guard on a set-built CS) take the matching-based path; both
    paths compute the same predicate.
    """
    inverse_masks = cs.inverse_masks
    if inverse_masks is not None and len(guard) <= 3:
        if not guard:
            return True  # vacuous, as in the matching-based path below
        popcount = (kernels or INT_KERNELS).popcount
        below = (1 << position) - 1
        masks = []
        for w in guard:
            m = inverse_masks.get(w, 0) & below
            if not m:
                return False
            masks.append(m)
        if len(masks) == 1:
            return True
        if len(masks) == 2:
            return popcount(masks[0] | masks[1]) >= 2
        a, b, c = masks
        return (
            popcount(a | b) >= 2
            and popcount(a | c) >= 2
            and popcount(b | c) >= 2
            and popcount(a | b | c) >= 3
        )
    for w in guard:
        if not cs.inverse_candidates_below(w, position):
            return False
    return has_saturating_matching(
        sorted(guard),
        lambda w: cs.inverse_candidates_below(w, position),
    )


def _reservation_graph_edges(
    cs: CandidateSpace,
    guards: ReservationGuards,
    i: int,
    v: int,
    j: int,
) -> List[Tuple[int, int]]:
    """Edge set ``E_R`` of Eq. (1) for candidate ``(u_i, v)`` and ``u_j``."""
    edges: List[Tuple[int, int]] = []
    for v2 in cs.adjacent_candidates(i, v, j):
        for w in guards[(j, v2)]:
            if w != v:
                edges.append((v2, w))
    return edges


def generate_reservation_guards(
    cs: CandidateSpace,
    size_limit: Optional[int] = 3,
    kernels=None,
) -> ReservationGuards:
    """Algorithm 1: reservation guards for every candidate vertex.

    ``size_limit`` is the paper's ``r`` (``None`` = unbounded).  The
    returned guards satisfy Definition 3.3 — property tests verify this
    by enumerating rooted subembeddings on small instances.

    On a mask-built CS (dense build path) the generation is dispatched
    to :func:`_generate_reservation_guards_masks`, which produces the
    *same* guards through two exact shortcuts; the seed generation loop
    below is kept verbatim for the set-based builder.
    """
    if cs.inverse_masks is not None:
        return _generate_reservation_guards_masks(cs, size_limit, kernels=kernels)
    query = cs.query
    n = query.num_vertices
    guards: ReservationGuards = {}

    for i in range(n - 1, -1, -1):
        forward = [j for j in query.neighbors(i) if j > i]
        for v in cs.candidates[i]:
            best: FrozenSet[int] = frozenset((v,))  # trivial reservation
            trivial = True
            for j in forward:
                edges = _reservation_graph_edges(cs, guards, i, v, j)
                cover = constrained_vertex_cover(
                    edges,
                    size_limit,
                    lambda s: is_matchable(cs, i, s),
                )
                if cover is None:
                    continue
                candidate = frozenset(cover)
                # An empty E_R yields the empty cover: a valid (and
                # maximally strong) reservation — every rooted
                # subembedding via u_j is impossible (see Lemma 3.10
                # with all R(u_j, v') \ {v} empty).
                if trivial or len(candidate) < len(best):
                    best = candidate
                    trivial = False
            guards[(i, v)] = best
    return guards


def _generate_reservation_guards_masks(
    cs: CandidateSpace,
    size_limit: Optional[int] = 3,
    kernels=None,
) -> ReservationGuards:
    """Mask twin of the seed generation loop — identical guards, faster.

    Two shortcuts, both *exact* (proven equal output by
    ``tests/test_build_masks.py``):

    * **All-trivial covers.**  When every forward-adjacent candidate
      ``v'`` still carries its trivial guard ``{v'}``, every edge of
      ``E_R`` is the self-loop ``(v', v')`` (``v' != v``), so the *only*
      vertex cover is the full endpoint set — no greedy needed.  Since
      matchability is anti-monotone (subsets of matchable sets are
      matchable), the greedy's incremental admissibility checks succeed
      iff the full set is matchable: one test replaces the whole walk.
      An empty endpoint set mirrors the seed's empty-``E_R`` case — the
      empty cover is accepted without a matchability test.
    * **Memoized matchability.**  ``is_matchable(cs, i, S)`` is a pure
      function of ``(i, S)``; candidates of the same ``u_i`` probe
      heavily overlapping sets, so results are cached per ``i``.
    """
    query = cs.query
    n = query.num_vertices
    guards: ReservationGuards = {}

    for i in range(n - 1, -1, -1):
        forward = [j for j in query.neighbors(i) if j > i]
        cache: Dict[FrozenSet[int], bool] = {}

        def admissible(s: FrozenSet[int], _i: int = i, _cache=cache) -> bool:
            hit = _cache.get(s)
            if hit is None:
                hit = _cache[s] = is_matchable(cs, _i, s, kernels=kernels)
            return hit

        for v in cs.candidates[i]:
            best: FrozenSet[int] = frozenset((v,))  # trivial reservation
            trivial = True
            for j in forward:
                adjacent = cs.adjacent_candidates(i, v, j)
                all_trivial = True
                for v2 in adjacent:
                    g = guards[(j, v2)]
                    if len(g) != 1 or v2 not in g:
                        all_trivial = False
                        break
                if all_trivial:
                    members = [v2 for v2 in adjacent if v2 != v]
                    if size_limit is not None and len(members) > size_limit:
                        continue
                    candidate = frozenset(members)
                    if members and not admissible(candidate):
                        continue
                else:
                    edges = _reservation_graph_edges(cs, guards, i, v, j)
                    cover = constrained_vertex_cover(
                        edges, size_limit, admissible
                    )
                    if cover is None:
                        continue
                    candidate = frozenset(cover)
                if trivial or len(candidate) < len(best):
                    best = candidate
                    trivial = False
            guards[(i, v)] = best
    return guards


def reservation_memory_bytes(guards: ReservationGuards) -> int:
    """Table 3 cost model: one word per reserved vertex + key reference."""
    return sum((len(g) + 2) * 8 for g in guards.values())
