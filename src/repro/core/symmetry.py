"""Static query symmetry: equivalence classes and symmetry breaking.

An *extension* beyond the paper (flagged off by default): VEQ [20] and
BoostISO exploit *syntactically equivalent* query vertices — vertices
that an automorphism of the query can swap — to avoid enumerating
permuted copies of the same embedding class.  Two classic cases:

* **independent twins** — same label, identical open neighborhoods,
  mutually non-adjacent (``N(u) == N(v)``);
* **clique twins** — same label, identical closed neighborhoods,
  mutually adjacent (``N(u) \\ {v} == N(v) \\ {u}``).

Within a class, the search may demand strictly increasing data-vertex
images (a per-class ordering constraint): every unconstrained embedding
is a per-class permutation of exactly one *representative* embedding,
so representatives are enumerated and then expanded.

Soundness with guards: the ordering constraint defines a constrained
matching problem; a "symmetry conflict" (image not larger than the
class predecessor's) is a genuine nogood *of the constrained problem*
(mask = the two class positions), so deadend masks, nogood guards, and
backjumping remain sound — they now prove constrained deadends, which
is exactly what representative enumeration needs.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.graph import Graph


def equivalence_classes(query: Graph) -> List[List[int]]:
    """Nontrivial interchangeable-vertex classes (each vertex in <= 1).

    Returns sorted classes of size >= 2; vertices in no nontrivial class
    are omitted.  Classes are found by signature grouping: independent
    twins share ``(label, N(u))``, clique twins share
    ``(label, N(u) ∪ {u})``.  When a vertex qualifies for both, the
    larger class wins (ties: independent twins).
    """
    open_groups: Dict[Tuple[object, frozenset], List[int]] = {}
    closed_groups: Dict[Tuple[object, frozenset], List[int]] = {}
    for u in query.vertices():
        nbrs = query.neighbor_set(u)
        open_groups.setdefault((query.label(u), nbrs), []).append(u)
        closed_groups.setdefault(
            (query.label(u), nbrs | {u}), []
        ).append(u)

    candidates: List[List[int]] = []
    for group in open_groups.values():
        if len(group) >= 2:
            candidates.append(sorted(group))
    for group in closed_groups.values():
        if len(group) >= 2:
            candidates.append(sorted(group))

    # Assign each vertex to at most one class, biggest classes first.
    candidates.sort(key=lambda c: (-len(c), c))
    taken: set = set()
    classes: List[List[int]] = []
    for group in candidates:
        free = [u for u in group if u not in taken]
        if len(free) >= 2:
            classes.append(free)
            taken.update(free)
    classes.sort()
    return classes


def symmetry_predecessors(
    classes: Sequence[Sequence[int]],
    num_vertices: int,
) -> List[int]:
    """``prev[k]`` = the class member just before ``k``, or -1.

    The search uses this to enforce increasing images inside each class
    (positions are compared in matching order, so the input classes must
    already be in the search's numbering).
    """
    prev = [-1] * num_vertices
    for cls in classes:
        ordered = sorted(cls)
        for earlier, later in zip(ordered, ordered[1:]):
            prev[later] = earlier
    return prev


def map_classes(
    classes: Sequence[Sequence[int]],
    old_to_new: Sequence[int],
) -> List[List[int]]:
    """Translate classes through a vertex renumbering."""
    return sorted(
        sorted(old_to_new[u] for u in cls) for cls in classes
    )


def expand_embedding(
    embedding: Tuple[int, ...],
    classes: Sequence[Sequence[int]],
    limit: Optional[int] = None,
) -> List[Tuple[int, ...]]:
    """All per-class image permutations of a representative embedding.

    The representative has increasing images within each class; the
    expansion reassigns each class's image set in every order.  With
    ``limit``, at most that many embeddings are returned.
    """
    positions_list = [sorted(cls) for cls in classes]
    images_list = [[embedding[p] for p in ps] for ps in positions_list]

    def generate():
        permutation_spaces = [
            itertools.permutations(images) for images in images_list
        ]
        for combo in itertools.product(*permutation_spaces):
            out = list(embedding)
            for positions, perm in zip(positions_list, combo):
                for p, w in zip(positions, perm):
                    out[p] = w
            yield tuple(out)

    if limit is not None:
        return list(itertools.islice(generate(), limit))
    return list(generate())


def expansion_factor(classes: Sequence[Sequence[int]]) -> int:
    """``prod |class|!``: embeddings per representative."""
    factor = 1
    for cls in classes:
        for i in range(2, len(cls) + 1):
            factor *= i
    return factor
