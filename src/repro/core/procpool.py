"""Process-parallel batch execution (§3.5.2, real multicore edition).

:mod:`repro.core.parallel` reproduces Fig. 10 as a *scheduling
simulation* because CPython threads cannot run backtracking concurrently.
Processes can.  This module is the real executor:

* **Root partitioning.**  The search is split at the root — one task per
  candidate of ``u_0`` — exactly the decomposition of §3.5.2.  A task is
  identified by its *position* in the sorted ``C(u_0)``; executing it
  means running the ordinary guarded search with the root level masked
  down to that single bit (:meth:`GuPSearch.run`'s ``root_mask``), so no
  per-task candidate space is rebuilt.
* **Task-local nogood stores.**  Every task runs with a fresh store, the
  thread-local-guards setting of §4.3.4.  (Per-*worker* persistent
  stores would make results depend on the nondeterministic task-to-
  worker assignment; per-task stores keep the merge deterministic while
  preserving the paper's locality property.)
* **Dynamic dispatch.**  Tasks are submitted individually to a
  ``ProcessPoolExecutor``; idle workers pull the next task from the
  shared queue — work-stealing semantics without a stealing protocol.
* **Pickle-once initialization.**  The GCS, config, and limits travel to
  each worker once via the pool initializer, not once per task; a task
  message is a single integer (the root position).
* **Deterministic merge.**  Per-task embedding lists are concatenated in
  root order.  Guards are *sound* (they prune only embedding-free
  subtrees) and pruning never reorders surviving embeddings, so this
  concatenation reproduces the sequential enumeration order exactly —
  including the prefix semantics of ``max_embeddings`` truncation.
  Merged stats are summed over the tasks that the sequential run would
  have entered (speculative work past the truncation point is
  discarded); they legitimately differ from a single-store run because
  pruning discovered in one subtree cannot help another (§4.3.4 measures
  precisely this gap).

The batch side (:func:`batch_match`) parallelizes *across* queries
instead: workers are initialized once with the data graph + config, each
builds the data-graph-side filter artifacts once
(:class:`repro.filtering.artifacts.DataArtifacts`), and every task ships
only a (small) query graph.  ``GuPEngine.match_many`` wraps this.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from dataclasses import fields as dataclass_fields
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.backtrack import GuPSearch
from repro.core.config import GuPConfig
from repro.core.gcs import GuardedCandidateSpace
from repro.core.nogood import make_nogood_store
from repro.filtering.candidate_space import CandidateSpace
from repro.graph.graph import Graph
from repro.matching.limits import SearchLimits
from repro.matching.result import MatchResult, SearchStats, TerminationStatus
from repro.obs.log import (
    current_fields,
    current_log,
    current_trace,
    set_trace_context,
)
from repro.obs.metrics import CounterGroup
from repro.obs.spans import current_span, set_base_span, span
from repro.utils.timer import Deadline


# ----------------------------------------------------------------------
# Root partitioning (shared by the simulation and the real executor)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RootTask:
    """One unit of root-partitioned work: assign ``u_0 -> vertex``.

    ``index`` is the position of ``vertex`` in the sorted ``C(u_0)`` —
    it doubles as the merge rank (root order == sequential enumeration
    order) and as the root bitmap ``1 << index``.
    """

    index: int
    vertex: int

    @property
    def mask(self) -> int:
        return 1 << self.index


@dataclass
class RootTaskResult:
    """Outcome of one executed root task."""

    index: int
    embeddings: List[Tuple[int, ...]]
    """Raw embeddings in reordered query numbering (empty when the task
    ran with ``collect=False``)."""
    status: TerminationStatus
    stats: SearchStats = field(default_factory=SearchStats)
    elapsed_seconds: float = 0.0
    """Wall-clock of this task's search (EXPLAIN ANALYZE attribution)."""


def root_partition(gcs: GuardedCandidateSpace) -> List[RootTask]:
    """One task per root candidate, in sorted ``C(u_0)`` order (§3.5.2)."""
    return [RootTask(p, v) for p, v in enumerate(gcs.cs.candidates[0])]


def restrict_cs_to_root(cs: CandidateSpace, v: int) -> CandidateSpace:
    """A copy of ``cs`` whose root candidate set is just ``(v,)``.

    Used by executors that cannot mask the root in place (the DAF
    baseline's static split in :mod:`repro.core.parallel`); GuP-side
    executors restrict via ``root_mask`` instead, which costs nothing.
    """
    return CandidateSpace(
        cs.query, cs.data, [(v,)] + [list(c) for c in cs.candidates[1:]]
    )


def run_root_task(
    gcs: GuardedCandidateSpace,
    task: RootTask,
    config: GuPConfig,
    limits: SearchLimits,
    symmetry_prev: Optional[Sequence[int]] = None,
) -> RootTaskResult:
    """Execute one root task with a fresh (task-local) nogood store.

    This is the §4.3.4 thread-local-guard execution: pruning information
    discovered inside this subtree is invisible to every other task.
    The simulation in :mod:`repro.core.parallel` and the process workers
    below both run tasks through this single codepath.
    """
    if config.candidate_backend == "list":
        from repro.core.backtrack_ref import ListGuPSearch as search_cls
    else:
        search_cls = GuPSearch
    search = search_cls(
        gcs,
        config=config,
        limits=limits,
        nogoods=make_nogood_store(config.nogood_representation),
        symmetry_prev=symmetry_prev,
    )
    started = time.perf_counter()
    raw, status = search.run(root_mask=task.mask)
    elapsed = time.perf_counter() - started
    return RootTaskResult(task.index, raw, status, search.stats, elapsed)


def merge_root_results(
    results: Sequence[RootTaskResult],
    gcs: GuardedCandidateSpace,
    limits: SearchLimits,
) -> Tuple[List[Tuple[int, ...]], TerminationStatus, SearchStats]:
    """Deterministically merge per-task outcomes into one run outcome.

    Walks tasks in root order — the order the sequential search visits
    the same subtrees — accumulating embeddings and stats:

    * reaching ``max_embeddings`` truncates there (later tasks are
      speculative work the sequential run never performs; their results
      and stats are dropped);
    * a task timeout surfaces as an overall timeout at that point
      (per-task ``time_limit`` / ``max_recursions`` budgets apply to
      each task individually — see DESIGN.md §6);
    * otherwise the merge is complete and exact.
    """
    merged = SearchStats()
    raw: List[Tuple[int, ...]] = []
    found = 0
    status = TerminationStatus.COMPLETE
    # The sequential search checks the cap only *after* recording an
    # embedding, so ``max_embeddings=0`` still yields the first one; the
    # effective stop threshold mirrors that.
    cap = limits.max_embeddings
    stop = None if cap is None else max(cap, 1)
    for result in sorted(results, key=lambda r: r.index):
        merged.merge(result.stats)
        take = result.embeddings
        if stop is not None and found + result.stats.embeddings_found >= stop:
            raw.extend(take[: stop - found])
            found = stop
            status = TerminationStatus.EMBEDDING_LIMIT
            break
        raw.extend(take)
        found += result.stats.embeddings_found
        if result.status is TerminationStatus.TIMEOUT:
            status = TerminationStatus.TIMEOUT
            break
    merged.embeddings_found = found
    # Per-task stats each carry the counters of the *shared* candidate
    # space; report them once, not once per task.
    merged.candidate_vertices = gcs.cs.total_candidates()
    merged.candidate_edges = gcs.cs.num_candidate_edges
    return raw, status, merged


# ----------------------------------------------------------------------
# Process workers (intra-query parallelism)
# ----------------------------------------------------------------------

_FOREVER = 1e12
"""Stand-in time limit (~31k years) that turns on the search's deadline
polling without ever firing, so the cancel event below gets polled."""


class _CancellableDeadline(Deadline):
    """A deadline that additionally honors a cross-process cancel event.

    The event is checked on the same stride as the clock (every
    ``check_every`` polls), so cancellation latency is a few thousand
    recursions — milliseconds — at negligible per-recursion cost.
    """

    __slots__ = ("_event", "_event_countdown")

    def __init__(self, seconds, event, check_every: int = 2048) -> None:
        super().__init__(seconds, check_every)
        self._event = event
        self._event_countdown = self._check_every

    def poll(self) -> bool:
        if super().poll():
            return True
        self._event_countdown -= 1
        if self._event_countdown > 0:
            return False
        self._event_countdown = self._check_every
        if self._event.is_set():
            self._expired = True
        return self._expired


@dataclass(frozen=True)
class _CancellableLimits(SearchLimits):
    """Worker-side limits whose deadline also polls the cancel event.

    Constructed inside the worker (never pickled); behavior is identical
    to the wrapped limits unless the parent signals cancellation, in
    which case the task aborts as a timeout — the parent only cancels
    tasks whose results it has already decided never to read.
    """

    cancel_event: Optional[object] = None

    def make_deadline(self) -> Deadline:
        return _CancellableDeadline(self.time_limit, self.cancel_event)


_WORKER_CTX: Optional[tuple] = None
"""Per-worker search context, installed once by the pool initializer."""

POOL_COUNTERS = CounterGroup({"respawns": 0, "tasks_rerun": 0})
"""Worker-crash recovery accounting (read by the service ``healthz`` op
and exposed as the ``repro_pool_*`` metric families; reset with
:func:`reset_pool_counters` in tests)."""


def reset_pool_counters() -> None:
    for key in POOL_COUNTERS:
        POOL_COUNTERS[key] = 0


def _procpool_init(
    gcs: GuardedCandidateSpace,
    config: GuPConfig,
    limits: SearchLimits,
    symmetry_prev: Optional[Tuple[int, ...]],
    cancel_event,
    faults=None,
    obs_ctx=None,
) -> None:
    global _WORKER_CTX
    if obs_ctx is not None:
        # The request's (trace id, path-backed structured log, context
        # fields, parent span id) tuple, shipped once per worker
        # alongside the GCS: every task this worker runs logs under the
        # trace — and the tenant — of the request that spawned the
        # pool, so client attempt -> server handling -> worker
        # execution share one id across the process boundary; the
        # parent span seeds this worker's span stack so task spans nest
        # under the dispatching search span.
        trace, log, fields, parent_span = obs_ctx
        set_trace_context(trace, log, fields)
        set_base_span(parent_span)
    if cancel_event is not None:
        # Copy the base fields generically so future SearchLimits fields
        # can never be silently dropped inside pool workers.
        base = {
            f.name: getattr(limits, f.name) for f in dataclass_fields(SearchLimits)
        }
        if base["time_limit"] is None:
            base["time_limit"] = _FOREVER
        limits = _CancellableLimits(**base, cancel_event=cancel_event)
    _WORKER_CTX = (gcs, config, limits, symmetry_prev, faults)


def _procpool_task(index: int) -> RootTaskResult:
    gcs, config, limits, symmetry_prev, faults = _WORKER_CTX
    log = current_log()
    if log is not None:
        # Logged *before* the fault hook so a ``die`` rule still leaves
        # this worker's line behind — the crash-recovery sequence stays
        # reconstructable from the log alone.
        log.emit("procpool.task", index=index)
    if faults is not None:
        # Fault-injection hook (``procpool.task.<index>``): a ``die``
        # rule here makes this worker vanish mid-batch, producing the
        # real BrokenProcessPool that run_partitioned must survive.
        faults.reach(f"procpool.task.{index}")
    task = RootTask(index, gcs.cs.candidates[0][index])
    with span("worker.task", index=index, vertex=task.vertex):
        return run_root_task(gcs, task, config, limits, symmetry_prev)


def run_partitioned(
    gcs: GuardedCandidateSpace,
    config: GuPConfig,
    limits: SearchLimits,
    workers: int,
    symmetry_prev: Optional[Sequence[int]] = None,
    faults=None,
    task_collector: Optional[List[dict]] = None,
) -> Tuple[List[Tuple[int, ...]], TerminationStatus, SearchStats]:
    """Root-partitioned search over a process pool.

    Returns ``(raw_embeddings, status, merged_stats)`` with the same
    contract as ``GuPSearch.run()`` plus the merged stats, so
    :meth:`repro.core.engine.GuPEngine.match` can treat the pool as a
    drop-in search step (symmetry expansion and embedding translation
    stay in one place).  Results are independent of ``workers``.

    **Worker-crash recovery** (DESIGN.md §10): a worker process dying
    mid-batch (segfault, OOM kill, injected ``die`` fault) surfaces as
    :class:`BrokenProcessPool`.  The pool is respawned **once**, results
    already returned by healthy workers are kept, and only the
    unfinished root partitions are re-run — the merged outcome is
    provably identical to an uninterrupted run because
    :func:`merge_root_results` is a pure function of the per-task
    results, whichever pool produced them.  A second breakage
    propagates (the failure is then systematic, not transient).

    ``faults`` is an optional :class:`repro.service.faults.FaultPlan`
    shipped to the first pool's workers (hook ``procpool.task.<i>``);
    the respawned pool runs fault-free, modeling a transient crash.

    ``task_collector`` (a list) receives one summary dict per executed
    root task, in root order — the per-partition wall-clock attribution
    EXPLAIN ANALYZE reports.  Observation only; results are unchanged.
    """
    # Observability context of the calling thread: the trace id always
    # travels; the structured log only when path-backed (an in-memory
    # log cannot report back across the process boundary).  The current
    # span (the engine's search span) rides along as the parent for the
    # workers' task spans.
    trace = current_trace()
    log = current_log()
    fields = current_fields()
    parent_span = current_span()
    obs_ctx = None
    if trace is not None or log is not None or fields:
        obs_ctx = (
            trace, log if log is not None and log.path else None, fields,
            parent_span,
        )

    tasks = root_partition(gcs)
    if not tasks or gcs.cs.is_empty():
        stats = SearchStats()
        stats.candidate_vertices = gcs.cs.total_candidates()
        stats.candidate_edges = gcs.cs.num_candidate_edges
        return [], TerminationStatus.COMPLETE, stats
    symmetry_prev = tuple(symmetry_prev) if symmetry_prev is not None else None

    # Early-stop condition, mirroring merge_root_results: once the tasks
    # collected so far satisfy the cap (or one timed out), every later
    # task is speculative work the merge would discard anyway.
    stop = (
        None
        if limits.max_embeddings is None
        else max(limits.max_embeddings, 1)
    )

    def merge_would_break(found: int, result: RootTaskResult) -> bool:
        return (
            stop is not None and found >= stop
        ) or result.status is TerminationStatus.TIMEOUT

    def collect_tasks(results: Sequence[RootTaskResult]) -> None:
        if task_collector is None:
            return
        roots = gcs.cs.candidates[0]
        for result in sorted(results, key=lambda r: r.index):
            task_collector.append({
                "index": result.index,
                "vertex": roots[result.index],
                "elapsed_seconds": round(result.elapsed_seconds, 6),
                "embeddings_found": result.stats.embeddings_found,
                "recursions": result.stats.recursions,
                "status": result.status.value,
            })

    if workers <= 1 or len(tasks) == 1:
        results: List[RootTaskResult] = []
        found = 0
        for task in tasks:
            result = run_root_task(gcs, task, config, limits, symmetry_prev)
            results.append(result)
            found += result.stats.embeddings_found
            if merge_would_break(found, result):
                break
        collect_tasks(results)
        return merge_root_results(results, gcs, limits)

    completed: Dict[int, RootTaskResult] = {}

    def prefix_decided() -> bool:
        """Whether the contiguous completed prefix already satisfies the
        merge's stopping condition (cap reached / timeout surfaced) —
        everything past it is speculative work the merge discards.
        Walking the *contiguous* prefix keeps the early stop exact even
        when a respawn harvested results out of root order."""
        found = 0
        for task in tasks:
            result = completed.get(task.index)
            if result is None:
                return False
            found += result.stats.embeddings_found
            if merge_would_break(found, result):
                return True
        return True  # every task completed

    respawned = False
    round_faults = faults
    while True:
        round_tasks = [t for t in tasks if t.index not in completed]
        if not round_tasks or prefix_decided():
            break
        cancel_event = multiprocessing.Event()
        broke = False
        with ProcessPoolExecutor(
            max_workers=min(workers, len(round_tasks)),
            initializer=_procpool_init,
            initargs=(
                gcs, config, limits, symmetry_prev, cancel_event,
                round_faults, obs_ctx,
            ),
        ) as pool:
            # One future per task: idle workers drain the shared queue in
            # submission order — dynamic dispatch, no static assignment.
            futures = {
                task.index: pool.submit(_procpool_task, task.index)
                for task in round_tasks
            }
            # Consume in root (= submission) order so the early stop
            # fires as soon as the merge's prefix is decided; queued
            # speculative tasks are cancelled and running ones are
            # signalled to abort via the cancel event — results stay
            # deterministic because the merge never reads past the
            # break point.
            try:
                for index in sorted(futures):
                    completed[index] = futures[index].result()
                    if prefix_decided():
                        cancel_event.set()
                        pool.shutdown(cancel_futures=True)
                        break
            except BrokenProcessPool:
                if respawned:
                    raise
                broke = True
                # Keep every result a healthy worker already returned;
                # only the genuinely unfinished partitions re-run.
                for index, future in futures.items():
                    if (
                        index in completed
                        or not future.done()
                        or future.cancelled()
                    ):
                        continue
                    try:
                        completed[index] = future.result()
                    except BaseException:  # noqa: BLE001 - the breakage
                        pass
        if not broke:
            break
        respawned = True
        round_faults = None  # the injected crash models a one-shot failure
        rerun = sum(1 for t in tasks if t.index not in completed)
        POOL_COUNTERS.inc("respawns")
        POOL_COUNTERS.inc("tasks_rerun", rerun)
        if log is not None:
            log.emit("procpool.respawn", trace=trace, tasks_rerun=rerun)
    collect_tasks(list(completed.values()))
    return merge_root_results(list(completed.values()), gcs, limits)


def match_parallel(
    query: Graph,
    data: Graph,
    workers: int,
    config: Optional[GuPConfig] = None,
    limits: Optional[SearchLimits] = None,
) -> MatchResult:
    """One-shot process-parallel GuP matching of a single query.

    Equivalent to ``GuPEngine(data, config).match(query, limits,
    workers=workers)`` — embeddings, counts, and status are identical to
    the sequential engine (``tests/test_parallel_exact.py``).
    """
    from repro.core.engine import GuPEngine

    return GuPEngine(data, config).match(query, limits=limits, workers=workers)


# ----------------------------------------------------------------------
# Batch workers (inter-query parallelism)
# ----------------------------------------------------------------------

_BATCH_ENGINE = None
"""Per-worker engine, bound once to the data graph by the initializer."""


def _batch_init(data: Graph, config: GuPConfig) -> None:
    global _BATCH_ENGINE
    from repro.core.engine import GuPEngine

    _BATCH_ENGINE = GuPEngine(data, config)
    # Materialize the data-side filter artifacts (label/degree buckets,
    # NLF tables) once per worker; every task of this worker reuses them.
    _BATCH_ENGINE.artifacts


def _batch_task(
    index: int, query: Graph, limits: SearchLimits
) -> Tuple[int, MatchResult]:
    return index, _BATCH_ENGINE.match(query, limits=limits)


def batch_match(
    data: Graph,
    config: GuPConfig,
    queries: Sequence[Graph],
    limits: SearchLimits,
    workers: int,
) -> List[MatchResult]:
    """Match a query set against one data graph over a process pool.

    The data graph and config are shipped to each worker once
    (initializer); each task ships one query graph and returns its
    :class:`MatchResult`.  Queries are dispatched dynamically, results
    are returned in input order.  Each query runs the ordinary
    sequential engine, so per-query results are bit-identical to
    ``GuPEngine.match``.
    """
    queries = list(queries)
    if not queries:
        return []
    with ProcessPoolExecutor(
        max_workers=min(workers, len(queries)),
        initializer=_batch_init,
        initargs=(data, config),
    ) as pool:
        futures = [
            pool.submit(_batch_task, i, query, limits)
            for i, query in enumerate(queries)
        ]
        out: List[Optional[MatchResult]] = [None] * len(queries)
        for future in futures:
            index, result = future.result()
            out[index] = result
    return out
