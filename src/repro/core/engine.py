"""Public facade for the GuP matcher.

Typical use::

    from repro import Graph, GuPConfig, match

    result = match(query, data)               # full GuP, all guards
    result = match(query, data, config=GuPConfig.baseline())

or, when matching many queries against one data graph::

    engine = GuPEngine(data)
    for query in queries:
        result = engine.match(query, limits=SearchLimits(max_embeddings=10**5))
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from repro.core.backtrack import GuPSearch
from repro.core.config import GuPConfig
from repro.core.gcs import GuardedCandidateSpace, build_gcs
from repro.graph.graph import Graph
from repro.matching.limits import SearchLimits
from repro.matching.result import MatchResult, TerminationStatus


class GuPEngine:
    """GuP subgraph matcher bound to one data graph.

    The engine itself is stateless across queries (each query gets a
    fresh GCS and nogood store), so one engine can be shared freely.
    """

    def __init__(self, data: Graph, config: Optional[GuPConfig] = None) -> None:
        self.data = data
        self.config = config or GuPConfig()

    def build(self, query: Graph) -> GuardedCandidateSpace:
        """Run GCS construction + reservation generation for ``query``."""
        return build_gcs(query, self.data, self.config)

    def match(
        self,
        query: Graph,
        limits: Optional[SearchLimits] = None,
        gcs: Optional[GuardedCandidateSpace] = None,
    ) -> MatchResult:
        """Enumerate embeddings of ``query`` in the data graph.

        Embeddings are reported in *original* query-vertex numbering
        (position ``i`` = destination of the caller's ``u_i``), even
        though the search internally renumbers by the matching order.

        With ``config.break_symmetry`` the search enumerates one
        representative per query-automorphism class and expands
        afterwards; ``max_embeddings`` then caps the *representatives*
        during search and the expanded list on output.
        """
        limits = limits or SearchLimits()
        started = time.perf_counter()
        if gcs is None:
            gcs = self.build(query)
        preprocessing = time.perf_counter() - started

        sym_classes = None
        symmetry_prev = None
        if self.config.break_symmetry and query.num_vertices > 0:
            from repro.core.symmetry import (
                equivalence_classes,
                symmetry_predecessors,
            )

            classes = equivalence_classes(gcs.query)
            if classes:
                sym_classes = classes
                symmetry_prev = symmetry_predecessors(
                    classes, gcs.query.num_vertices
                )

        if self.config.candidate_backend == "list":
            from repro.core.backtrack_ref import ListGuPSearch as search_cls
        else:
            search_cls = GuPSearch
        search = search_cls(
            gcs, config=self.config, limits=limits, symmetry_prev=symmetry_prev
        )
        search_started = time.perf_counter()
        raw, status = search.run()
        elapsed = time.perf_counter() - search_started

        if sym_classes:
            from repro.core.symmetry import expand_embedding, expansion_factor

            num_embeddings = (
                search.stats.embeddings_found * expansion_factor(sym_classes)
            )
            expanded = []
            for representative in raw:
                expanded.extend(expand_embedding(representative, sym_classes))
                if (
                    limits.max_embeddings is not None
                    and len(expanded) >= limits.max_embeddings
                ):
                    expanded = expanded[: limits.max_embeddings]
                    break
            embeddings = [gcs.to_original_embedding(e) for e in expanded]
        else:
            embeddings = [gcs.to_original_embedding(e) for e in raw]
            num_embeddings = (
                search.stats.embeddings_found
                if query.num_vertices > 0
                else len(embeddings)
            )

        return MatchResult(
            embeddings=embeddings,
            num_embeddings=num_embeddings,
            status=status,
            elapsed_seconds=elapsed,
            stats=search.stats,
            preprocessing_seconds=preprocessing,
            method="GuP",
        )


def match(
    query: Graph,
    data: Graph,
    config: Optional[GuPConfig] = None,
    limits: Optional[SearchLimits] = None,
) -> MatchResult:
    """One-shot GuP matching (see :class:`GuPEngine`)."""
    return GuPEngine(data, config).match(query, limits=limits)


def count_embeddings(
    query: Graph,
    data: Graph,
    config: Optional[GuPConfig] = None,
    limits: Optional[SearchLimits] = None,
) -> int:
    """Number of embeddings of ``query`` in ``data`` (not materialized)."""
    limits = limits or SearchLimits()
    counting = SearchLimits(
        max_embeddings=limits.max_embeddings,
        time_limit=limits.time_limit,
        collect=False,
    )
    return match(query, data, config=config, limits=counting).num_embeddings
