"""Public facade for the GuP matcher.

Typical use::

    from repro import Graph, GuPConfig, match

    result = match(query, data)               # full GuP, all guards
    result = match(query, data, config=GuPConfig.baseline())

or, when matching many queries against one data graph::

    engine = GuPEngine(data)
    for query in queries:
        result = engine.match(query, limits=SearchLimits(max_embeddings=10**5))
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Iterable, List, Optional

from repro.core.backtrack import GuPSearch
from repro.core.config import GuPConfig
from repro.core.gcs import BuildInvariantCache, GuardedCandidateSpace, build_gcs
from repro.filtering.artifacts import DataArtifacts
from repro.filtering.mask_kernels import get_kernels
from repro.graph.graph import Graph
from repro.matching.limits import SearchLimits
from repro.matching.result import MatchResult, TerminationStatus
from repro.obs.spans import span


class GuPEngine:
    """GuP subgraph matcher bound to one data graph.

    The engine is stateless across queries (each query gets a fresh GCS
    and nogood store) apart from two caches, so one engine can be
    shared freely: data-graph-side filter artifacts
    (:class:`DataArtifacts`, built lazily on the first query and reused
    by every later one) and per-query build invariants
    (:class:`BuildInvariantCache` — the reordered query's two-core edge
    set and DAG, so repeated queries on a warm engine recompute
    neither; ``engine.invariants.recomputes`` counts the from-scratch
    computations).

    Long-running services can inject *prebuilt* artifacts — e.g. ones
    deserialized from the on-disk catalog
    (:mod:`repro.service.catalog`) — via the ``artifacts`` parameter, so
    a fresh engine never pays the per-graph build cost.  The artifacts
    must have been built for (a graph equal to) ``data``.
    """

    def __init__(
        self,
        data: Graph,
        config: Optional[GuPConfig] = None,
        artifacts: Optional[DataArtifacts] = None,
        invariants: Optional[BuildInvariantCache] = None,
    ) -> None:
        self.data = data
        self.config = config or GuPConfig()
        if artifacts is not None and artifacts.data is not data:
            if artifacts.data != data:
                raise ValueError(
                    "artifacts were built for a different data graph"
                )
        self._artifacts: Optional[DataArtifacts] = artifacts
        # Kernel provider for the config's mask backend; build_gcs
        # re-derives its own from the config, this one serves the
        # engine-level call sites (delta patches).
        self.kernels = get_kernels(self.config.mask_backend)
        # An inherited invariant cache stays valid across data-graph
        # changes: every cache key fully determines its value (orders
        # are keyed by the exact candidate masks, DAGs by the exact
        # sizes, two-cores by the query alone), so entries computed
        # against an older graph epoch are either re-hit correctly or
        # simply never hit again.  The service catalog threads one cache
        # through a graph's successive epochs this way.
        self.invariants = invariants if invariants is not None else BuildInvariantCache()

    @property
    def artifacts(self) -> DataArtifacts:
        """Data-side filter artifacts, built once per engine."""
        if self._artifacts is None:
            self._artifacts = DataArtifacts(self.data)
        return self._artifacts

    def build(
        self,
        query: Graph,
        seed_masks: Optional[List[int]] = None,
        stage_log=None,
    ) -> GuardedCandidateSpace:
        """Run GCS construction + reservation generation for ``query``.

        ``seed_masks`` optionally replaces the LDF+NLF seeding with
        caller-restricted candidate masks (see :func:`build_gcs`);
        ``stage_log`` optionally collects per-filter-stage candidate
        counts for EXPLAIN (read-only, identical GCS)."""
        return build_gcs(
            query,
            self.data,
            self.config,
            artifacts=self.artifacts,
            invariants=self.invariants,
            seed_masks=seed_masks,
            stage_log=stage_log,
        )

    def apply_delta(self, delta):
        """Apply a :class:`repro.dynamic.delta.GraphDelta` in place.

        Swaps in the delta-applied graph and incrementally-patched
        artifacts (:meth:`DataArtifacts.apply_delta`); the build
        invariant cache is kept — its keys fully determine its values,
        so entries never go stale across graph epochs.  Returns the
        :class:`repro.dynamic.delta.DeltaSummary`.

        Not atomic with respect to concurrent :meth:`match` calls on
        other threads; services should install a fresh engine around
        the new state instead (:meth:`repro.service.catalog.GraphCatalog.update`
        does, reusing this engine's invariant cache).
        """
        from repro.dynamic.delta import apply_delta as _apply

        new_graph, summary = _apply(self.data, delta)
        if self._artifacts is not None:
            self._artifacts = self._artifacts.apply_delta(
                new_graph, summary, kernels=self.kernels
            )
        self.data = new_graph
        return summary

    def match(
        self,
        query: Graph,
        limits: Optional[SearchLimits] = None,
        gcs: Optional[GuardedCandidateSpace] = None,
        workers: int = 1,
        observer: Optional[object] = None,
        task_collector: Optional[list] = None,
    ) -> MatchResult:
        """Enumerate embeddings of ``query`` in the data graph.

        Embeddings are reported in *original* query-vertex numbering
        (position ``i`` = destination of the caller's ``u_i``), even
        though the search internally renumbers by the matching order.

        With ``config.break_symmetry`` the search enumerates one
        representative per query-automorphism class and expands
        afterwards; ``max_embeddings`` then caps the *representatives*
        during search and the expanded list on output.

        ``workers > 1`` executes the search step root-partitioned over a
        process pool (:mod:`repro.core.procpool`) with task-local nogood
        stores; embeddings, counts, and termination status are identical
        to the sequential run (``tests/test_parallel_exact.py``) for
        unlimited and ``max_embeddings``-capped searches, and the merged
        stats reflect the per-task guard locality of §4.3.4.  The
        exception is ``time_limit`` / ``max_recursions`` budgets, which
        apply to *each root task individually* rather than to the whole
        run (DESIGN.md §6), so truncated counts can exceed sequential.

        ``observer`` is a :class:`repro.analysis.trace.SearchObserver`
        receiving the Algorithm-2 event stream (notification-only; the
        search is unchanged).  Observers live in this process, so an
        observed match runs sequentially even when ``workers > 1`` —
        results are identical either way, only the wall clock differs.

        ``task_collector`` (a list) receives one summary dict per
        executed root-partition task when the search dispatches to the
        procpool — EXPLAIN ANALYZE's per-worker wall-clock attribution.
        Pure observation: results are identical with or without it.

        When a structured log is bound to the calling thread
        (:func:`repro.obs.log.current_log`), the build and search
        phases each emit a timed span (:mod:`repro.obs.spans`); with no
        log bound the spans cost two clock reads and emit nothing.
        """
        limits = limits or SearchLimits()
        started = time.perf_counter()
        if gcs is None:
            with span("engine.build"):
                gcs = self.build(query)
        preprocessing = time.perf_counter() - started

        sym_classes = None
        symmetry_prev = None
        if self.config.break_symmetry and query.num_vertices > 0:
            from repro.core.symmetry import (
                equivalence_classes,
                symmetry_predecessors,
            )

            classes = equivalence_classes(gcs.query)
            if classes:
                sym_classes = classes
                symmetry_prev = symmetry_predecessors(
                    classes, gcs.query.num_vertices
                )

        search_started = time.perf_counter()
        with span("engine.search", workers=workers):
            if workers > 1 and observer is None and query.num_vertices > 0:
                from repro.core.procpool import run_partitioned

                raw, status, stats = run_partitioned(
                    gcs, self.config, limits, workers, symmetry_prev,
                    task_collector=task_collector,
                )
            else:
                if self.config.candidate_backend == "list":
                    from repro.core.backtrack_ref import (
                        ListGuPSearch as search_cls,
                    )
                else:
                    search_cls = GuPSearch
                search = search_cls(
                    gcs, config=self.config, limits=limits,
                    symmetry_prev=symmetry_prev, observer=observer,
                )
                raw, status = search.run()
                stats = search.stats
        elapsed = time.perf_counter() - search_started

        if sym_classes:
            from repro.core.symmetry import expand_embedding, expansion_factor

            num_embeddings = (
                stats.embeddings_found * expansion_factor(sym_classes)
            )
            expanded = []
            for representative in raw:
                expanded.extend(expand_embedding(representative, sym_classes))
                if (
                    limits.max_embeddings is not None
                    and len(expanded) >= limits.max_embeddings
                ):
                    expanded = expanded[: limits.max_embeddings]
                    break
            embeddings = [gcs.to_original_embedding(e) for e in expanded]
        else:
            embeddings = [gcs.to_original_embedding(e) for e in raw]
            num_embeddings = (
                stats.embeddings_found
                if query.num_vertices > 0
                else len(embeddings)
            )

        return MatchResult(
            embeddings=embeddings,
            num_embeddings=num_embeddings,
            status=status,
            elapsed_seconds=elapsed,
            stats=stats,
            preprocessing_seconds=preprocessing,
            method="GuP",
        )

    def explain(
        self,
        query: Graph,
        mode: str = "plan",
        limits: Optional[SearchLimits] = None,
        workers: int = 1,
    ):
        """EXPLAIN (``mode="plan"``) / ANALYZE (``mode="analyze"``) a query.

        Returns ``(report, result)``.  *Plan* performs the real GCS
        build — matching order, filter stages, reservation generation —
        and reports what the search *would* do without running it
        (``result`` is ``None``).  *Analyze* then runs the ordinary
        :meth:`match` on that very GCS and attributes the work exactly:
        per-stage candidate counts, the guard-level pruning counters,
        and (for ``workers > 1``) per-root-partition task wall-clock.

        The differential rule is absolute: the returned ``result`` is
        byte-identical (embeddings, :class:`SearchStats`, status) to an
        unexplained ``match`` of the same query — every collector along
        the way is read-only (``tests/test_explain_differential.py``).
        """
        if mode not in ("plan", "analyze"):
            raise ValueError(
                f"unknown explain mode {mode!r}; expected 'plan' or 'analyze'"
            )
        from repro.obs.explain import (
            FilterStageLog,
            analyze_report,
            plan_report,
        )

        stage_log = FilterStageLog()
        with span("engine.build", explain=mode):
            gcs = self.build(query, stage_log=stage_log)
        report = plan_report(gcs, self.config, stage_log)
        if mode == "plan":
            return report, None
        tasks: list = []
        result = self.match(
            query, limits=limits, gcs=gcs, workers=workers,
            task_collector=tasks,
        )
        analyze_report(report, result, tasks, workers=workers)
        return report, result

    def match_many(
        self,
        queries: Iterable[Graph],
        limits: Optional[SearchLimits] = None,
        workers: int = 1,
        observer: Optional[object] = None,
    ) -> List[MatchResult]:
        """Match a whole query set; results in input order.

        The data-side filter artifacts are built once and reused across
        the set.  With ``workers > 1`` queries are dispatched
        dynamically over a process pool (one task per query; the data
        graph and its artifacts travel to each worker exactly once —
        :func:`repro.core.procpool.batch_match`).  Per-query results are
        identical to calling :meth:`match` sequentially.

        ``observer`` (see :meth:`match`) receives the concatenated event
        streams of all queries in input order; like :meth:`match`, an
        observed run stays in this process (sequential over queries).
        """
        queries = list(queries)
        limits = limits or SearchLimits()
        if workers <= 1 or observer is not None:
            return [
                self.match(query, limits=limits, observer=observer)
                for query in queries
            ]
        if len(queries) == 1:
            # Nothing to spread across queries — honor the worker budget
            # with intra-query root partitioning, but only when it keeps
            # this method's sequential-identity contract: time_limit /
            # max_recursions budgets apply per root task there (DESIGN.md
            # §6), so those runs stay sequential.
            intra = (
                workers
                if limits.time_limit is None and limits.max_recursions is None
                else 1
            )
            return [self.match(queries[0], limits=limits, workers=intra)]

        from repro.core.procpool import batch_match

        # Materialize the NLF tables before the data graph is pickled to
        # the workers, so they inherit them instead of recomputing (the
        # full artifacts are built per worker; only the NLF cache rides
        # along with the graph).
        if self.data.num_vertices > 0:
            self.data.neighbor_label_frequency(0)
        return batch_match(self.data, self.config, queries, limits, workers)


def match(
    query: Graph,
    data: Graph,
    config: Optional[GuPConfig] = None,
    limits: Optional[SearchLimits] = None,
) -> MatchResult:
    """One-shot GuP matching (see :class:`GuPEngine`)."""
    return GuPEngine(data, config).match(query, limits=limits)


def count_embeddings(
    query: Graph,
    data: Graph,
    config: Optional[GuPConfig] = None,
    limits: Optional[SearchLimits] = None,
) -> int:
    """Number of embeddings of ``query`` in ``data`` (not materialized).

    All limits are honored — including ``max_recursions`` virtual-time
    budgets — the run merely skips materializing the embeddings.
    """
    limits = limits or SearchLimits()
    counting = replace(limits, collect=False)
    return match(query, data, config=config, limits=counting).num_embeddings
