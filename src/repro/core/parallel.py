"""Parallel search model (§3.5.2, evaluated in §4.3.4 / Fig. 10).

The paper parallelizes backtracking by searching disjoint subtrees in
different threads: GuP splits the search tree *dynamically* (work
stealing), while DAF splits only at the candidates of ``u_0`` and
assigns those static tasks to threads.  Threads share the GCS and the
reservation guards but keep *thread-local nogood stores*.

CPython threads cannot run backtracking concurrently (GIL), so — as
documented in DESIGN.md — we reproduce Fig. 10 with a *scheduling
simulation over real work measurements*:

* the search space is partitioned at the root (one task per candidate
  of ``u_0``), and each task is *actually executed* as an independent
  search with its own nogood store — exactly the thread-local-guards
  setting of §4.3.4, so the "total recursions in parallel execution"
  measurement is real, not modeled;
* GuP's work-stealing makespan is the classic greedy bound for
  dynamically splittable tasks: ``max(total_work / P, unit)``;
* DAF's root-split makespan is the LPT schedule of its (unsplittable)
  root tasks onto ``P`` threads — which plateaus as soon as one root
  subtree dominates, reproducing the paper's observation.

Speedup is reported in work units (recursions), the same quantity the
paper uses to argue scalability.

The *real* multicore executor lives in :mod:`repro.core.procpool`; the
simulation here executes its tasks through the same root-partitioning
codepath (:func:`repro.core.procpool.root_partition` /
:func:`repro.core.procpool.run_root_task`), so the per-task work the
scheduling models chew on is byte-identical to what the process pool
runs — ``bench_fig10_parallel.py --real`` reports both side by side.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.baselines.backtracking import BacktrackingMatcher
from repro.core.backtrack import GuPSearch
from repro.core.config import GuPConfig
from repro.core.gcs import GuardedCandidateSpace, build_gcs
from repro.core.procpool import (
    restrict_cs_to_root,
    root_partition,
    run_root_task,
)
from repro.graph.graph import Graph
from repro.matching.limits import SearchLimits
from repro.matching.result import SearchStats


@dataclass
class ParallelRunReport:
    """Outcome of one simulated parallel run."""

    num_threads: int
    total_work: int
    """Recursions summed over all tasks (thread-local nogood stores)."""
    makespan: int
    """Work units on the busiest thread under the scheduling model."""
    task_costs: List[int] = field(default_factory=list)
    embeddings: int = 0

    @property
    def speedup_vs(self) -> float:
        """Speedup relative to running all the work on one thread."""
        if self.makespan == 0:
            return float(self.num_threads)
        return self.total_work / self.makespan


def _lpt_makespan(costs: Sequence[int], num_threads: int) -> int:
    """Longest-processing-time-first schedule (greedy, what static
    root-splitting achieves at best)."""
    if not costs:
        return 0
    loads = [0] * max(1, num_threads)
    heapq.heapify(loads)
    for cost in sorted(costs, reverse=True):
        lightest = heapq.heappop(loads)
        heapq.heappush(loads, lightest + cost)
    return max(loads)


def _work_stealing_makespan(total: int, costs: Sequence[int], num_threads: int) -> int:
    """Dynamically splittable tasks: perfect balance up to one unit."""
    if num_threads <= 1:
        return total
    ideal = -(-total // num_threads)  # ceil division
    return max(ideal, 1)


def _root_task_costs_gup(
    gcs: GuardedCandidateSpace,
    config: GuPConfig,
    limits: SearchLimits,
) -> Tuple[List[int], int, SearchStats]:
    """Execute one search per root candidate with a fresh nogood store.

    This *is* the thread-local-guard execution of §4.3.4: pruning
    information discovered in one subtree is invisible to the others.
    Tasks run through :func:`repro.core.procpool.run_root_task` — the
    exact codepath the real process pool executes — only inline.
    """
    costs: List[int] = []
    embeddings = 0
    merged = SearchStats()
    for task in root_partition(gcs):
        result = run_root_task(gcs, task, config, limits)
        costs.append(result.stats.recursions)
        embeddings += result.stats.embeddings_found
        merged.merge(result.stats)
    return costs, embeddings, merged


def simulate_gup_parallel(
    query: Graph,
    data: Graph,
    thread_counts: Sequence[int],
    config: Optional[GuPConfig] = None,
    limits: Optional[SearchLimits] = None,
) -> List[ParallelRunReport]:
    """Fig. 10, GuP side: work-stealing over root-partitioned tasks."""
    config = config or GuPConfig()
    limits = limits or SearchLimits(collect=False)
    gcs = build_gcs(query, data, config)
    costs, embeddings, _ = _root_task_costs_gup(gcs, config, limits)
    total = sum(costs)
    return [
        ParallelRunReport(
            num_threads=p,
            total_work=total,
            makespan=_work_stealing_makespan(total, costs, p),
            task_costs=list(costs),
            embeddings=embeddings,
        )
        for p in thread_counts
    ]


def sequential_gup_work(
    query: Graph,
    data: Graph,
    config: Optional[GuPConfig] = None,
    limits: Optional[SearchLimits] = None,
) -> int:
    """Recursions of the ordinary single-store sequential run (the
    §4.3.4 '1-thread' reference)."""
    config = config or GuPConfig()
    limits = limits or SearchLimits(collect=False)
    gcs = build_gcs(query, data, config)
    search = GuPSearch(gcs, config=config, limits=limits)
    search.run()
    return search.stats.recursions


def simulate_daf_parallel(
    query: Graph,
    data: Graph,
    thread_counts: Sequence[int],
    limits: Optional[SearchLimits] = None,
) -> List[ParallelRunReport]:
    """Fig. 10, DAF side: static split at the candidates of ``u_0``."""
    limits = limits or SearchLimits(collect=False)
    matcher = BacktrackingMatcher(
        name="DAF", filter_method="dagdp", ordering="gql", use_failing_set=True
    )
    reordered, _order, cs = matcher.prepare(query, data)

    costs: List[int] = []
    embeddings = 0
    for v in cs.candidates[0]:
        restricted = restrict_cs_to_root(cs, v)
        from repro.baselines.backtracking import _Search, ancestor_closures

        stats = SearchStats()
        searcher = _Search(
            restricted,
            limits,
            stats,
            use_failing_set=True,
            anc=ancestor_closures(reordered),
        )
        searcher.run()
        costs.append(stats.recursions)
        embeddings += stats.embeddings_found

    total = sum(costs)
    return [
        ParallelRunReport(
            num_threads=p,
            total_work=total,
            makespan=_lpt_makespan(costs, p),
            task_costs=list(costs),
            embeddings=embeddings,
        )
        for p in thread_counts
    ]
