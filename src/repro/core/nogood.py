"""Nogood guards and the search-node encoding (§3.3, §3.5.1).

A nogood guard is conceptually a set of assignments ``D`` such that
``D ∪ {(u_i, v)}`` (vertex guard) or ``D ∪ {(u_i, v), (u_j, v')}`` (edge
guard) is a nogood.  Storing ``D`` literally would make every match test
O(|D|); GuP instead *rounds ``D`` up* to the minimum partial embedding
containing it on the current search path (Definition 3.36) and stores the
triplet

``(node_id, length, dom_mask)``

where ``node_id`` identifies the search-tree node of that minimum
superset embedding, ``length`` its depth, and ``dom_mask`` the bitmask of
``dom(D)`` (needed for bounding sets and conflict masks).  A partial
embedding ``M'`` with ancestor array ``anc`` matches the guard iff
``anc[length] == node_id`` — O(1), Example 3.35.

The rounding-up makes the guard *more specific* (it can only match
descendants of the recorded node), never unsound.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

EncodedNogood = Tuple[int, int, int]
"""``(node_id, length, dom_mask)`` triplet."""

ROOT_NODE_ID = 0
"""The imaginary root search node, corresponding to the empty embedding."""


def encode_nogood(dom_mask: int, anc: Sequence[int]) -> EncodedNogood:
    """Encode nogood ``M[dom_mask]`` against the current ancestor array.

    ``anc[d]`` must hold the node id of the depth-``d`` ancestor of the
    current search node (``anc[0]`` is the imaginary root).  The minimum
    superset embedding of ``M[dom_mask]`` in ``M`` is ``M[: i + 1]``
    where ``i`` is the highest set bit, so the encoded node is
    ``anc[i + 1]``.  An empty mask encodes against the root and matches
    every embedding — the "never use this candidate again" guard of
    Example 3.29.
    """
    length = dom_mask.bit_length()  # highest set bit + 1; 0 for empty mask
    return (anc[length], length, dom_mask)


def nogood_matches(guard: EncodedNogood, anc: Sequence[int]) -> bool:
    """O(1) match test: is the recorded node an ancestor at its depth?"""
    node_id, length, _dom = guard
    return anc[length] == node_id


class NogoodStore:
    """Mutable store of vertex and edge nogood guards for one search.

    Vertex guards are keyed by candidate vertex ``(i, v)``, stored
    two-level as ``i -> v -> guard`` (the bitmap search holds the
    per-depth sub-dict, so the hot probe hashes a small int instead of a
    tuple); edge guards by candidate edge ``(i, v, j, v')`` with
    ``i < j`` (the direction the definition requires: the guard domain
    lies below ``i``), stored two-level as ``(i, v, j) -> v' -> guard``
    so the bitmap search can skip whole refinement directions with one
    :meth:`has_edge_guards` probe.  Recording overwrites (§3.3.2:
    "NV(u_i, v) is overwritten if it has an old value").

    This is the paper's *search-node-encoded* store (§3.5.1): O(1) match
    tests that only fire for descendants of the recorded node.
    :class:`ExplicitNogoodStore` is the un-encoded alternative used by
    the representation ablation bench.

    Parallel search gives each worker its own store (§3.5.2).
    """

    __slots__ = (
        "_vertex",
        "_edge",
        "_num_edge",
        "recorded_vertex",
        "recorded_edge",
    )

    representation = "search_node"

    def __init__(self) -> None:
        self._vertex: Dict[int, Dict[int, EncodedNogood]] = {}
        self._edge: Dict[Tuple[int, int, int], Dict[int, EncodedNogood]] = {}
        self._num_edge = 0
        self.recorded_vertex = 0
        self.recorded_edge = 0

    def vertex_guards_at(self, i: int) -> Dict[int, EncodedNogood]:
        """The (live) ``v -> guard`` sub-dict of query vertex ``i``.

        Created on demand; the bitmap search keeps one reference per
        depth and probes/writes it directly."""
        per = self._vertex.get(i)
        if per is None:
            per = self._vertex[i] = {}
        return per

    # -- representation-agnostic interface (used by the search) ---------

    def record_vertex_nogood(
        self, i: int, v: int, dom_mask: int, anc, embedding
    ) -> None:
        """Record ``NV(u_i, v)`` = the current embedding restricted to
        ``dom_mask`` (``embedding`` is unused by this representation)."""
        self.record_vertex(i, v, encode_nogood(dom_mask, anc))

    def record_edge_nogood(
        self, i: int, v: int, j: int, v2: int, dom_mask: int, anc, embedding
    ) -> None:
        self.record_edge(i, v, j, v2, encode_nogood(dom_mask, anc))

    def match_vertex(self, i: int, v: int, anc, embedding) -> Optional[int]:
        """Domain mask of the matched ``NV(u_i, v)`` guard, or ``None``."""
        per = self._vertex.get(i)
        guard = per.get(v) if per is not None else None
        if guard is not None and anc[guard[1]] == guard[0]:
            return guard[2]
        return None

    def match_edge(
        self, i: int, v: int, j: int, v2: int, anc, embedding
    ) -> Optional[int]:
        per_v2 = self._edge.get((i, v, j))
        if per_v2 is None:
            return None
        guard = per_v2.get(v2)
        if guard is not None and anc[guard[1]] == guard[0]:
            return guard[2]
        return None

    def has_edge_guards(self, i: int, v: int, j: int) -> bool:
        """Whether any candidate edge out of ``(u_i, v)`` toward ``u_j``
        carries a guard — the bitmap search's O(1) gate for skipping the
        per-candidate guard scan of one refinement direction."""
        return (i, v, j) in self._edge

    # -- vertex guards --------------------------------------------------

    def record_vertex(self, i: int, v: int, guard: EncodedNogood) -> None:
        """Store ``NV(u_i, v)``, overwriting any previous guard."""
        per = self._vertex.get(i)
        if per is None:
            per = self._vertex[i] = {}
        per[v] = guard
        self.recorded_vertex += 1

    def vertex_guard(self, i: int, v: int) -> Optional[EncodedNogood]:
        per = self._vertex.get(i)
        return per.get(v) if per is not None else None

    def vertex_matches(self, i: int, v: int, anc: Sequence[int]) -> Optional[EncodedNogood]:
        """The guard on ``(u_i, v)`` if the current path matches it."""
        guard = self.vertex_guard(i, v)
        if guard is not None and anc[guard[1]] == guard[0]:
            return guard
        return None

    def iter_vertex_guards(self):
        """Iterate over all stored vertex guards (analysis helpers)."""
        for per in self._vertex.values():
            yield from per.values()

    # -- edge guards ----------------------------------------------------

    def record_edge(
        self, i: int, v: int, j: int, v2: int, guard: EncodedNogood
    ) -> None:
        """Store ``NE((u_i, v), (u_j, v2))``; requires ``i < j``."""
        per_v2 = self._edge.get((i, v, j))
        if per_v2 is None:
            per_v2 = self._edge[(i, v, j)] = {}
        if v2 not in per_v2:
            self._num_edge += 1
        per_v2[v2] = guard
        self.recorded_edge += 1

    def edge_guard(
        self, i: int, v: int, j: int, v2: int
    ) -> Optional[EncodedNogood]:
        per_v2 = self._edge.get((i, v, j))
        return per_v2.get(v2) if per_v2 is not None else None

    def edge_matches(
        self, i: int, v: int, j: int, v2: int, anc: Sequence[int]
    ) -> Optional[EncodedNogood]:
        """The guard on the candidate edge if the current path matches."""
        guard = self.edge_guard(i, v, j, v2)
        if guard is not None and anc[guard[1]] == guard[0]:
            return guard
        return None

    # -- bookkeeping -----------------------------------------------------

    def clear(self) -> None:
        self._vertex.clear()
        self._edge.clear()
        self._num_edge = 0

    @property
    def num_vertex_guards(self) -> int:
        return sum(len(per) for per in self._vertex.values())

    @property
    def num_edge_guards(self) -> int:
        return self._num_edge

    def memory_estimate_bytes(self) -> Tuple[int, int]:
        """(vertex, edge) guard memory in the paper's cost model.

        Table 3 treats an encoded nogood as a triplet of machine words
        plus a query-vertex bit vector — 4 x 8 bytes per guard, plus one
        word for the key reference.
        """
        per_guard = 5 * 8
        return (
            self.num_vertex_guards * per_guard,
            self._num_edge * per_guard,
        )


class ExplicitNogoodStore:
    """Un-encoded nogood store: guards are literal assignment sets.

    The ablation counterpart of the search-node encoding (§3.5.1).  A
    guard is the tuple of ``(u_j, v')`` assignments of the recorded
    nogood; the match test compares each against the current partial
    embedding — O(|D|) instead of O(1), but *more general*: it fires on
    any partial embedding containing the assignments, not only on
    descendants of the recorded search node.  The representation
    ablation bench quantifies this trade
    (``benchmarks/bench_ablation_nogood_encoding.py``).
    """

    __slots__ = ("_vertex", "_edge", "_num_edge", "recorded_vertex", "recorded_edge")

    representation = "explicit"

    def __init__(self) -> None:
        self._vertex: Dict[Tuple[int, int], Tuple[Tuple[int, int], ...]] = {}
        self._edge: Dict[
            Tuple[int, int, int], Dict[int, Tuple[Tuple[int, int], ...]]
        ] = {}
        self._num_edge = 0
        self.recorded_vertex = 0
        self.recorded_edge = 0

    @staticmethod
    def _materialize(dom_mask: int, embedding) -> Tuple[Tuple[int, int], ...]:
        return tuple(
            (b, embedding[b])
            for b in range(dom_mask.bit_length())
            if dom_mask >> b & 1
        )

    @staticmethod
    def _matches(guard: Tuple[Tuple[int, int], ...], embedding) -> bool:
        for q, w in guard:
            if q >= len(embedding) or embedding[q] != w:
                return False
        return True

    @staticmethod
    def _dom(guard: Tuple[Tuple[int, int], ...]) -> int:
        mask = 0
        for q, _w in guard:
            mask |= 1 << q
        return mask

    def record_vertex_nogood(
        self, i: int, v: int, dom_mask: int, anc, embedding
    ) -> None:
        self._vertex[(i, v)] = self._materialize(dom_mask, embedding)
        self.recorded_vertex += 1

    def record_edge_nogood(
        self, i: int, v: int, j: int, v2: int, dom_mask: int, anc, embedding
    ) -> None:
        per_v2 = self._edge.get((i, v, j))
        if per_v2 is None:
            per_v2 = self._edge[(i, v, j)] = {}
        if v2 not in per_v2:
            self._num_edge += 1
        per_v2[v2] = self._materialize(dom_mask, embedding)
        self.recorded_edge += 1

    def match_vertex(self, i: int, v: int, anc, embedding) -> Optional[int]:
        guard = self._vertex.get((i, v))
        if guard is not None and self._matches(guard, embedding):
            return self._dom(guard)
        return None

    def match_edge(
        self, i: int, v: int, j: int, v2: int, anc, embedding
    ) -> Optional[int]:
        per_v2 = self._edge.get((i, v, j))
        if per_v2 is None:
            return None
        guard = per_v2.get(v2)
        if guard is not None and self._matches(guard, embedding):
            return self._dom(guard)
        return None

    def has_edge_guards(self, i: int, v: int, j: int) -> bool:
        """See :meth:`NogoodStore.has_edge_guards`."""
        return (i, v, j) in self._edge

    def iter_vertex_guards(self):
        """Iterate over all stored vertex guards (analysis helpers)."""
        return iter(self._vertex.values())

    def clear(self) -> None:
        self._vertex.clear()
        self._edge.clear()
        self._num_edge = 0

    @property
    def num_vertex_guards(self) -> int:
        return len(self._vertex)

    @property
    def num_edge_guards(self) -> int:
        return self._num_edge

    def memory_estimate_bytes(self) -> Tuple[int, int]:
        """Two words per stored assignment plus the key reference."""
        def cost(guards) -> int:
            return sum((2 * len(g) + 1) * 8 for g in guards.values())

        edge_cost = sum(
            cost(per_v2) for per_v2 in self._edge.values()
        )
        return cost(self._vertex), edge_cost


def make_nogood_store(representation: str = "search_node"):
    """Store factory keyed by :attr:`GuPConfig.nogood_representation`."""
    if representation == "search_node":
        return NogoodStore()
    if representation == "explicit":
        return ExplicitNogoodStore()
    raise ValueError(
        f"unknown nogood representation {representation!r}; "
        "expected 'search_node' or 'explicit'"
    )
