"""Unit tests for nogood storage and search-node encoding (§3.5.1)."""

from repro.core.nogood import (
    ROOT_NODE_ID,
    NogoodStore,
    encode_nogood,
    nogood_matches,
)


class TestEncoding:
    def test_empty_mask_encodes_to_root(self):
        anc = [0, 11, 12, 13]
        guard = encode_nogood(0, anc)
        assert guard == (ROOT_NODE_ID, 0, 0)
        # Matches every path: Example 3.29's "never use again" guard.
        assert nogood_matches(guard, [0, 99, 98])

    def test_minimum_superset_embedding(self):
        # dom = {u0, u2} -> minimum superset embedding is M[:3], whose
        # search node is anc[3] (Definition 3.36).
        anc = [0, 11, 12, 13, 14]
        guard = encode_nogood(0b101, anc)
        assert guard == (13, 3, 0b101)

    def test_match_requires_same_ancestor(self):
        anc = [0, 11, 12, 13, 14]
        guard = encode_nogood(0b101, anc)
        assert nogood_matches(guard, [0, 11, 12, 13])       # same path
        assert nogood_matches(guard, [0, 11, 12, 13, 99])   # descendant
        assert not nogood_matches(guard, [0, 11, 12, 77])   # sibling

    def test_example_3_35_subset_check(self):
        # m3 corresponds to M3, m5 to M5; anc of m5 holds m0,m1,m2,m4,m5.
        anc_m5 = [0, 1, 2, 4, 5]
        m3_guard = (3, 3, 0b111)  # encoded at node m3, length 3
        assert not nogood_matches(m3_guard, anc_m5)  # anc(3)=4 != 3


class TestStore:
    def test_vertex_roundtrip(self):
        store = NogoodStore()
        anc = [0, 5, 6]
        store.record_vertex(2, 77, encode_nogood(0b01, anc))
        assert store.vertex_guard(2, 77) == (5, 1, 0b01)
        assert store.vertex_matches(2, 77, anc) is not None
        assert store.vertex_matches(2, 77, [0, 9, 9]) is None
        assert store.vertex_matches(2, 78, anc) is None

    def test_vertex_overwrite(self):
        store = NogoodStore()
        store.record_vertex(1, 5, (1, 1, 0b1))
        store.record_vertex(1, 5, (2, 2, 0b11))
        assert store.vertex_guard(1, 5) == (2, 2, 0b11)
        assert store.num_vertex_guards == 1
        assert store.recorded_vertex == 2

    def test_edge_roundtrip(self):
        store = NogoodStore()
        anc = [0, 5]
        store.record_edge(1, 10, 3, 20, encode_nogood(0b1, anc))
        assert store.edge_guard(1, 10, 3, 20) == (5, 1, 0b1)
        assert store.edge_matches(1, 10, 3, 20, anc) is not None
        assert store.edge_matches(1, 10, 3, 21, anc) is None

    def test_clear(self):
        store = NogoodStore()
        store.record_vertex(0, 0, (0, 0, 0))
        store.record_edge(0, 0, 1, 1, (0, 0, 0))
        store.clear()
        assert store.num_vertex_guards == 0
        assert store.num_edge_guards == 0

    def test_memory_estimate(self):
        store = NogoodStore()
        assert store.memory_estimate_bytes() == (0, 0)
        store.record_vertex(0, 0, (0, 0, 0))
        nv, ne = store.memory_estimate_bytes()
        assert nv > 0 and ne == 0
