"""Unit tests for the core Graph class."""

import pytest

from repro.graph.builder import GraphBuilder, complete_graph, cycle_graph, path_graph
from repro.graph.graph import Graph


def build_labeled_path():
    b = GraphBuilder()
    b.add_vertices(["A", "B", "A", "C"])
    b.add_edges([(0, 1), (1, 2), (2, 3)])
    return b.build()


class TestBasics:
    def test_counts(self):
        g = build_labeled_path()
        assert g.num_vertices == 4
        assert g.num_edges == 3
        assert len(g) == 4

    def test_labels(self):
        g = build_labeled_path()
        assert g.label(0) == "A"
        assert g.label(3) == "C"
        assert g.labels == ("A", "B", "A", "C")

    def test_degree(self):
        g = build_labeled_path()
        assert g.degree(0) == 1
        assert g.degree(1) == 2
        assert g.degree_sequence() == [1, 2, 2, 1]

    def test_neighbors_sorted(self):
        b = GraphBuilder()
        b.add_vertices("XXXX")
        b.add_edges([(3, 0), (1, 3), (3, 2)])
        g = b.build()
        assert g.neighbors(3) == (0, 1, 2)

    def test_neighbor_set(self):
        g = build_labeled_path()
        assert g.neighbor_set(1) == {0, 2}

    def test_has_edge_symmetric(self):
        g = build_labeled_path()
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_edges_each_once(self):
        g = complete_graph("ABC")
        assert sorted(g.edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_empty_graph(self):
        g = Graph([], [])
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.average_degree() == 0.0

    def test_average_degree(self):
        g = cycle_graph("ABCD")
        assert g.average_degree() == pytest.approx(2.0)

    def test_repr_mentions_sizes(self):
        g = build_labeled_path()
        assert "num_vertices=4" in repr(g)


class TestValidation:
    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            Graph(["A"], [[0]])

    def test_rejects_duplicate_neighbor(self):
        with pytest.raises(ValueError, match="duplicate"):
            Graph(["A", "B"], [[1, 1], [0, 0]])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="same length"):
            Graph(["A", "B"], [[1]])

    def test_rejects_asymmetric_adjacency(self):
        with pytest.raises(ValueError):
            Graph(["A", "B", "C"], [[1], [0, 2], []])


class TestLabelIndex:
    def test_vertices_with_label(self):
        g = build_labeled_path()
        assert g.vertices_with_label("A") == (0, 2)
        assert g.vertices_with_label("B") == (1,)
        assert g.vertices_with_label("missing") == ()

    def test_label_set(self):
        g = build_labeled_path()
        assert g.label_set == {"A", "B", "C"}

    def test_nlf_table(self):
        g = build_labeled_path()
        assert g.neighbor_label_frequency(1) == {"A": 2}
        assert g.neighbor_label_frequency(2) == {"B": 1, "C": 1}
        assert g.neighbor_label_frequency(0) == {"B": 1}


class TestDerivedViews:
    def test_induced_subgraph(self):
        g = complete_graph("ABCD")
        sub, mapping = g.induced_subgraph([1, 2, 3])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3
        assert mapping == {1: 0, 2: 1, 3: 2}
        assert sub.labels == ("B", "C", "D")

    def test_induced_subgraph_drops_outside_edges(self):
        g = path_graph("ABCD")
        sub, _ = g.induced_subgraph([0, 2])
        assert sub.num_edges == 0

    def test_relabeled_roundtrip(self):
        g = build_labeled_path()
        perm = [3, 1, 0, 2]
        h = g.relabeled(perm)
        assert h.label(0) == g.label(3)
        # Edge (0,1) in g maps to (new(0), new(1)).
        new_of = {old: new for new, old in enumerate(perm)}
        for u, v in g.edges():
            assert h.has_edge(new_of[u], new_of[v])
        assert h.num_edges == g.num_edges

    def test_relabeled_identity(self):
        g = build_labeled_path()
        assert g.relabeled([0, 1, 2, 3]) == g

    def test_relabeled_rejects_non_permutation(self):
        g = build_labeled_path()
        with pytest.raises(ValueError):
            g.relabeled([0, 0, 1, 2])

    def test_equality_and_hash(self):
        g1 = build_labeled_path()
        g2 = build_labeled_path()
        assert g1 == g2
        assert hash(g1) == hash(g2)
        assert g1 != complete_graph("AB")
