"""Shared fixtures: small canonical graphs and the paper's example."""

from __future__ import annotations

import random

import pytest

from repro.graph.builder import (
    GraphBuilder,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.workload.paper_example import paper_example_data, paper_example_query


@pytest.fixture
def triangle_query():
    """A labeled triangle query (A-B-C)."""
    return cycle_graph(["A", "B", "C"])


@pytest.fixture
def two_triangles_data():
    """Two disjoint A-B-C triangles bridged by one edge."""
    b = GraphBuilder()
    b.add_vertices(["A", "B", "C", "A", "B", "C"])
    b.add_edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
    return b.build()


@pytest.fixture
def paper_query():
    return paper_example_query()


@pytest.fixture
def paper_data():
    return paper_example_data()


@pytest.fixture
def rng():
    return random.Random(20230612)


def make_random_pair(rng, max_query=6, max_data=14, max_labels=3):
    """A random connected query and a random data graph (for tests)."""
    from repro.graph.generators import erdos_renyi_graph, random_connected_graph

    nq = rng.randint(2, max_query)
    nd = rng.randint(4, max_data)
    labels = rng.randint(1, max_labels)
    query = random_connected_graph(
        nq, nq - 1 + rng.randint(0, 4), num_labels=labels, seed=rng.randint(0, 10**9)
    )
    data = erdos_renyi_graph(
        nd, rng.randint(0, nd * 2), num_labels=labels, seed=rng.randint(0, 10**9)
    )
    return query, data
