"""Property-based tests (hypothesis) for the dense-index invariants.

``tests/test_bitmap_cs.py`` proves end-to-end that the bitmap search
backend equals the list backend; these properties fuzz the PR-1 dense
index *directly* on random graphs:

* every candidate-edge direction's ``edge_bitmap`` decodes to exactly
  ``adjacent_candidates`` (the bitmap and list views of Definition
  3.18's refinement sets never disagree);
* ``positions`` is the inverse of the sorted ``C(u_j)``, and
  ``full_mask`` covers it exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filtering.candidate_space import FILTERS, build_candidate_space
from repro.graph.generators import erdos_renyi_graph, random_connected_graph


def _instance(seed, nq, nd, labels, extra_q, edge_factor):
    query = random_connected_graph(
        nq, nq - 1 + extra_q, num_labels=labels, seed=seed
    )
    data = erdos_renyi_graph(
        nd, int(nd * edge_factor), num_labels=labels, seed=seed + 1
    )
    return query, data


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**30),
    nq=st.integers(min_value=2, max_value=6),
    nd=st.integers(min_value=3, max_value=16),
    labels=st.integers(min_value=1, max_value=3),
    extra_q=st.integers(min_value=0, max_value=5),
    edge_factor=st.floats(min_value=0.0, max_value=2.5),
    method=st.sampled_from(FILTERS),
)
def test_edge_bitmaps_decode_to_adjacent_candidates(
    seed, nq, nd, labels, extra_q, edge_factor, method
):
    query, data = _instance(seed, nq, nd, labels, extra_q, edge_factor)
    cs = build_candidate_space(query, data, method=method)
    for i, j in query.edges():
        for a, b in ((i, j), (j, i)):
            table = cs.edge_bitmap_map(a, b)
            cands_b = cs.candidates[b]
            for v in cs.candidates[a]:
                bitmap = cs.edge_bitmap(a, v, b)
                decoded = tuple(
                    cands_b[p] for p in range(len(cands_b)) if bitmap >> p & 1
                )
                adjacent = cs.adjacent_candidates(a, v, b)
                assert decoded == adjacent
                # No bits beyond C(u_b); the prefetched table agrees.
                assert bitmap & ~cs.full_mask(b) == 0
                assert table.get(v, 0) == bitmap
                # The list view is consistent with the data graph.
                assert all(data.has_edge(v, w) for w in adjacent)
            # Bitmaps exist only for actual candidates of u_a.
            assert set(table) <= set(cs.candidates[a])


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**30),
    nq=st.integers(min_value=2, max_value=6),
    nd=st.integers(min_value=3, max_value=16),
    labels=st.integers(min_value=1, max_value=3),
    extra_q=st.integers(min_value=0, max_value=5),
    edge_factor=st.floats(min_value=0.0, max_value=2.5),
)
def test_positions_invert_sorted_candidates(
    seed, nq, nd, labels, extra_q, edge_factor
):
    query, data = _instance(seed, nq, nd, labels, extra_q, edge_factor)
    cs = build_candidate_space(query, data)
    for j in query.vertices():
        cands = cs.candidates[j]
        assert list(cands) == sorted(set(cands))
        assert cs.positions[j] == {v: p for p, v in enumerate(cands)}
        assert all(cs.position(j, v) == p for p, v in enumerate(cands))
        assert cs.full_mask(j) == (1 << len(cands)) - 1
        # Non-candidates resolve to the sentinel, never to a bit.
        outside = set(range(data.num_vertices)) - set(cands)
        for v in list(outside)[:5]:
            assert cs.position(j, v) == -1
