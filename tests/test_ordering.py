"""Unit tests for matching orders (VC, GQL, RI) and order plumbing."""

import pytest

from repro.filtering.nlf import nlf_candidates
from repro.graph.builder import GraphBuilder, cycle_graph, path_graph, star_graph
from repro.graph.generators import random_connected_graph
from repro.ordering import (
    ORDERINGS,
    apply_matching_order,
    gql_order,
    is_connected_order,
    make_order,
    repair_connected_order,
    ri_order,
    vc_order,
)
from tests.conftest import make_random_pair


class TestConnectedOrder:
    def test_path_orders(self):
        q = path_graph("ABCD")
        assert is_connected_order(q, [0, 1, 2, 3])
        assert is_connected_order(q, [1, 0, 2, 3])
        assert not is_connected_order(q, [0, 2, 1, 3])
        assert not is_connected_order(q, [0, 1, 1, 3])

    def test_repair(self):
        q = path_graph("ABCD")
        repaired = repair_connected_order(q, [0, 3, 2, 1])
        assert is_connected_order(q, repaired)
        assert repaired[0] == 0

    def test_apply(self):
        q = path_graph("ABC")
        reordered, order = apply_matching_order(q, [1, 0, 2])
        assert reordered.label(0) == "B"
        assert is_connected_order(reordered, [0, 1, 2])


class TestOrders:
    @pytest.mark.parametrize("name", ["vc", "gql", "ri"])
    def test_permutation_and_connected(self, name, rng):
        for _ in range(15):
            q, d = make_random_pair(rng, max_query=8)
            candidates = nlf_candidates(q, d)
            order = make_order(name, q, candidates)
            assert sorted(order) == list(q.vertices())
            assert is_connected_order(q, order)

    def test_registry_contents(self):
        assert {"vc", "gql", "ri"} <= set(ORDERINGS)

    def test_unknown_order(self):
        q = path_graph("AB")
        with pytest.raises(ValueError, match="unknown ordering"):
            make_order("nope", q, [[0], [1]])

    def test_gql_starts_at_fewest_candidates(self):
        q = path_graph("ABC")
        order = gql_order(q, [[1, 2, 3], [1], [1, 2]])
        assert order[0] == 1

    def test_ri_starts_at_max_degree(self):
        q = star_graph("C", "AAA")
        assert ri_order(q, [[]] * 4)[0] == 0

    def test_vc_prefers_cover_vertices(self):
        # Star: the cover is the center; VC must match it first.
        q = star_graph("C", "AAA")
        order = vc_order(q, [[0]] * 4)
        assert order[0] == 0

    def test_single_vertex(self):
        b = GraphBuilder()
        b.add_vertex("A")
        q = b.build()
        for name in ("vc", "gql", "ri"):
            assert make_order(name, q, [[0, 1]]) == [0]

    def test_empty_query(self):
        b = GraphBuilder()
        q = b.build()
        for name in ("vc", "gql", "ri"):
            assert make_order(name, q, []) == []
