"""Differential test: the bitmap backend is byte-identical to the seed.

The dense-index bitmap search (:mod:`repro.core.backtrack`) and the seed
list-based search (:mod:`repro.core.backtrack_ref`) must explore the
exact same search tree: identical embeddings *in order*, identical
termination status, and identical pruning/recording statistics — every
counter, not just the result set.  This is what licenses the hot-path
benchmark to compare their wall clocks as the same algorithm on two
candidate representations.

Covered here:

* the ``test_config_matrix`` configuration grid (guard combinations,
  representations, filters, orders, reservation limits, symmetry);
* random workloads with truncation (embedding caps and recursion
  budgets hit mid-search, exercising the abort paths);
* the synthetic benchmark workloads (one small set per dataset profile).
"""

import dataclasses
import itertools
import random

import pytest

from repro.core.config import GuPConfig
from repro.core.engine import match
from repro.graph.generators import erdos_renyi_graph, random_connected_graph
from repro.matching.limits import SearchLimits
from tests.test_config_matrix import CONFIGS


def assert_identical(query, data, config, limits=None):
    bitmap = match(query, data, config=config, limits=limits)
    listed = match(
        query,
        data,
        config=dataclasses.replace(config, candidate_backend="list"),
        limits=limits,
    )
    assert bitmap.embeddings == listed.embeddings  # ordered, not set-wise
    assert bitmap.num_embeddings == listed.num_embeddings
    assert bitmap.status == listed.status
    assert dataclasses.asdict(bitmap.stats) == dataclasses.asdict(listed.stats)


def _instances(seed, count, max_q=7, max_d=24):
    rng = random.Random(seed)
    for _ in range(count):
        nq = rng.randint(2, max_q)
        nd = rng.randint(5, max_d)
        labels = rng.randint(1, 3)
        query = random_connected_graph(
            nq, nq - 1 + rng.randint(0, 5), num_labels=labels,
            seed=rng.randint(0, 10**9),
        )
        data = erdos_renyi_graph(
            nd, rng.randint(nd, nd * 3), num_labels=labels,
            seed=rng.randint(0, 10**9),
        )
        yield query, data


@pytest.mark.parametrize("index", range(len(CONFIGS)))
def test_config_grid_identical(index):
    """Every config of the matrix on a handful of random instances."""
    config = CONFIGS[index]
    assert config.candidate_backend == "bitmap"  # the default
    for query, data in _instances(seed=index * 37 + 5, count=4):
        assert_identical(query, data, config)


def test_random_workloads_with_truncation():
    """Caps hit mid-search must abort identically in both backends."""
    rng = random.Random(20230730)
    combos = list(itertools.product((False, True), repeat=4))
    for t, (query, data) in enumerate(_instances(seed=99, count=40, max_q=8)):
        use_r, use_nv, use_ne, use_bj = combos[t % len(combos)]
        config = GuPConfig(
            use_reservation=use_r,
            use_nogood_vertex=use_nv,
            use_nogood_edge=use_ne,
            use_backjumping=use_bj,
            nogood_representation="explicit" if t % 5 == 0 else "search_node",
            break_symmetry=(t % 7 == 0),
        )
        limits = SearchLimits(
            max_embeddings=rng.choice([None, 1, 5, 50]),
            max_recursions=rng.choice([None, 25, 400]),
        )
        assert_identical(query, data, config, limits=limits)


def test_counting_mode_identical():
    """collect=False (counting) runs the same trees too."""
    for query, data in _instances(seed=4242, count=8):
        config = GuPConfig()
        limits = SearchLimits(collect=False, max_embeddings=100)
        assert_identical(query, data, config, limits=limits)


def test_benchmark_workload_identical():
    """One small query set per synthetic dataset profile."""
    from repro.workload.datasets import load_dataset
    from repro.workload.querygen import QuerySetSpec, generate_query_set

    for name, scale in (("yeast", 0.3), ("wordnet", 0.2)):
        data = load_dataset(name, scale=scale, seed=7)
        queries = generate_query_set(
            data, QuerySetSpec(8, "sparse"), count=3, seed=11
        )
        limits = SearchLimits(max_embeddings=500, max_recursions=4000)
        for query in queries:
            assert_identical(query, data, GuPConfig(), limits=limits)


def test_max_watches_zero_identical():
    """The watch cap path (no NE line-11 recording) matches too."""
    from repro.core.backtrack import GuPSearch
    from repro.core.backtrack_ref import ListGuPSearch
    from repro.core.gcs import build_gcs

    for query, data in _instances(seed=777, count=6):
        gcs_a = build_gcs(query, data)
        gcs_b = build_gcs(query, data)
        a = GuPSearch(gcs_a, max_watches=0)
        b = ListGuPSearch(gcs_b, max_watches=0)
        emb_a, status_a = a.run()
        emb_b, status_b = b.run()
        assert emb_a == emb_b
        assert status_a == status_b
        assert dataclasses.asdict(a.stats) == dataclasses.asdict(b.stats)
