"""Observability layer: metrics registry, structured logs, profiling.

The load-bearing property is *reconciliation by construction*: the
``stats`` op, ``healthz``, and ``/metrics`` all read the same
:class:`CounterGroup` storage, so their numbers must agree — asserted
here under forced overload and subscriber-drop fault plans, not just
on a happy path.  Trace propagation is proven end to end: one query
issued through a retrying client against a fault-injected server
leaves client-attempt, server-handling, and procpool-worker log lines
that share a single trace id across three processes.
"""

import json
import pickle
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.analysis.trace import TraceRecorder
from repro.core.engine import GuPEngine
from repro.dynamic.delta import GraphDelta
from repro.graph.builder import graph_from_adjacency
from repro.matching.limits import SearchLimits
from repro.obs import (
    CounterGroup,
    MetricsRegistry,
    Observability,
    SamplingProfiler,
    StructuredLog,
    current_log,
    current_trace,
    new_trace_id,
    parse_exposition,
    trace_context,
)
from repro.obs.metrics import MetricsError
from repro.service.catalog import GraphCatalog
from repro.service.client import RetryPolicy, ServiceClient
from repro.service.faults import FaultPlan, FaultRule
from repro.service.server import ServerThread
from repro.workload.datasets import load_dataset
from repro.workload.querygen import generate_query

SRC = Path(__file__).resolve().parent.parent / "src"


def bipartite_world():
    data = graph_from_adjacency(
        ["A", "B", "A", "C", "D", "C"],
        [(0, 1), (1, 2), (3, 4), (4, 5)],
    )
    ab_query = graph_from_adjacency(["A", "B"], [(0, 1)])
    return data, ab_query


def serve_world(tmp_path, faults=None, **server_kwargs):
    data, ab_query = bipartite_world()
    root = tmp_path / "catalog"
    GraphCatalog(root).add("g", data)
    catalog = GraphCatalog(root)
    if faults is not None:
        server_kwargs["faults"] = faults
    return ServerThread(catalog, **server_kwargs), ab_query


def flatten(text):
    """Exposition -> {family: summed value across label sets}."""
    out = {}
    for (name, _labels), value in parse_exposition(text).items():
        out[name] = out.get(name, 0) + value
    return out


class TestCounterGroup:
    def test_dict_drop_in(self):
        g = CounterGroup({"a": 0, "b": 0})
        g["a"] += 2
        g.inc("b")
        g.inc("b", 3)
        assert g["a"] == 2 and g["b"] == 4
        assert set(g) == {"a", "b"}
        assert "a" in g and "zzz" not in g
        assert dict(g) == {"a": 2, "b": 4}
        assert sorted(g.items()) == [("a", 2), ("b", 4)]
        assert g.get("zzz", 7) == 7
        assert len(g) == 2

    def test_pickles_as_snapshot(self):
        g = CounterGroup({"a": 0})
        g.inc("a", 5)
        clone = pickle.loads(pickle.dumps(g))
        assert dict(clone) == {"a": 5}
        clone.inc("a")  # lock survives the round trip
        assert clone["a"] == 6

    def test_concurrent_increments_do_not_lose_updates(self):
        g = CounterGroup({"n": 0})

        def bump():
            for _ in range(1000):
                g.inc("n")

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert g["n"] == 8000


class TestMetricsRegistry:
    def test_counter_gauge_histogram_render_and_parse(self):
        reg = MetricsRegistry()
        c = reg.counter("t_requests_total", "requests")
        c.inc()
        c.inc(2)
        gauge = reg.gauge("t_active", "active")
        gauge.set(3)
        hist = reg.histogram("t_seconds", "latency", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)

        text = reg.render()
        assert "# TYPE t_requests_total counter" in text
        assert "# TYPE t_seconds histogram" in text
        parsed = parse_exposition(text)
        assert parsed[("t_requests_total", ())] == 3
        assert parsed[("t_active", ())] == 3
        assert parsed[("t_seconds_bucket", (("le", "0.1"),))] == 1
        assert parsed[("t_seconds_bucket", (("le", "1"),))] == 2
        assert parsed[("t_seconds_bucket", (("le", "+Inf"),))] == 3
        assert parsed[("t_seconds_count", ())] == 3
        assert parsed[("t_seconds_sum", ())] == pytest.approx(5.55)

    def test_labeled_family(self):
        reg = MetricsRegistry()
        fam = reg.counter("t_ops_total", "ops", labelnames=["op"])
        fam.labels(op="read").inc(2)
        fam.labels(op="write").inc()
        parsed = parse_exposition(reg.render())
        assert parsed[("t_ops_total", (("op", "read"),))] == 2
        assert parsed[("t_ops_total", (("op", "write"),))] == 1

    def test_attached_group_renders_live_values(self):
        reg = MetricsRegistry()
        g = CounterGroup({"hits": 0})
        reg.attach_group("t_cache", g, labels={"data": "g"})
        g.inc("hits", 4)  # after attachment: render must see it
        parsed = parse_exposition(reg.render())
        assert parsed[("t_cache_hits_total", (("data", "g"),))] == 4

    def test_on_scrape_hook_runs_at_render(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("t_now", "")
        reg.on_scrape(lambda: gauge.set(42))
        parsed = parse_exposition(reg.render())
        assert parsed[("t_now", ())] == 42

    def test_reregistration_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("t_x_total", "")
        with pytest.raises(MetricsError):
            reg.gauge("t_x_total", "")


class TestStructuredLog:
    def test_memory_records(self):
        log = StructuredLog()
        record = log.emit("e", k=1, trace="t1")
        assert record["event"] == "e" and record["trace"] == "t1"
        assert log.read_records() == [record]

    def test_memory_is_bounded(self):
        log = StructuredLog(memory_limit=5)
        for i in range(20):
            log.emit("e", i=i)
        records = log.read_records()
        assert len(records) == 5
        assert records[-1]["i"] == 19

    def test_path_backed_round_trip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = StructuredLog(path=str(path))
        log.emit("one", n=1)
        log.emit("two", n=2)
        lines = path.read_text().splitlines()
        assert len(lines) == 2 and json.loads(lines[0])["event"] == "one"
        assert [r["n"] for r in log.read_records()] == [1, 2]

    def test_pickles_path_only(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = StructuredLog(path=str(path))
        clone = pickle.loads(pickle.dumps(log))
        clone.emit("from-clone")
        assert [r["event"] for r in log.read_records()] == ["from-clone"]

    def test_trace_context_nests_and_restores(self):
        log = StructuredLog()
        assert current_trace() is None
        with trace_context("outer", log):
            assert current_trace() == "outer"
            assert current_log() is log
            with trace_context("inner", None):
                assert current_trace() == "inner"
                assert current_log() is None
            assert current_trace() == "outer"
        assert current_trace() is None

    def test_emit_stamps_bound_trace(self):
        log = StructuredLog()
        with trace_context("t-bound", log):
            record = log.emit("e")
        assert record["trace"] == "t-bound"

    def test_new_trace_ids_unique(self):
        ids = {new_trace_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(len(t) == 16 for t in ids)


class TestSamplingProfiler:
    @pytest.fixture(scope="class")
    def world(self):
        data = load_dataset("wordnet", scale=0.1, seed=11)
        query = generate_query(data, 6, "sparse", seed=11)
        return data, query

    def test_stride_one_matches_full_recorder(self, world):
        data, query = world
        engine = GuPEngine(data)
        limits = SearchLimits(max_embeddings=50)
        recorder = TraceRecorder()
        engine.match(query, limits=limits, observer=recorder)
        profiler = SamplingProfiler(stride=1)
        engine.match(query, limits=limits, observer=profiler)
        summary = profiler.summary()
        descends = sum(
            1 for e in recorder.events if e.kind == "descend"
        )
        assert summary["descends"] == descends
        assert summary["max_depth"] >= 1

    def test_stride_scales_histograms(self, world):
        data, query = world
        engine = GuPEngine(data)
        limits = SearchLimits(max_embeddings=50)
        exact = SamplingProfiler(stride=1)
        engine.match(query, limits=limits, observer=exact)
        sampled = SamplingProfiler(stride=4)
        engine.match(query, limits=limits, observer=sampled)
        # Exact scalar counts are stride-independent...
        assert sampled.summary()["descends"] == exact.summary()["descends"]
        # ...while sampled histograms are scaled estimates of the truth.
        est = sum(sampled.summary()["depth_hist"].values())
        true = sum(exact.summary()["depth_hist"].values())
        assert est == pytest.approx(true, rel=0.5) or abs(est - true) <= 4

    def test_observed_match_results_identical(self, world):
        data, query = world
        engine = GuPEngine(data)
        limits = SearchLimits(max_embeddings=50)
        plain = engine.match(query, limits=limits)
        observed = engine.match(
            query, limits=limits, workers=2, observer=SamplingProfiler()
        )
        assert observed.embeddings == plain.embeddings
        assert observed.num_embeddings == plain.num_embeddings

    def test_stride_rare_events_stay_exact(self):
        # Driven directly through the observer hooks so the arithmetic
        # is deterministic: rare events (returns, embeddings, backjumps)
        # are never subsampled, whatever the stride.
        profiler = SamplingProfiler(stride=5)
        for _ in range(12):
            profiler.on_descend(3, 0, 0)
        for _ in range(7):
            profiler.on_conflict(3, 0, "empty", 0)
        for _ in range(4):
            profiler.on_return(3, 0, False, 0)
        for _ in range(3):
            profiler.on_backjump(2, 0)
        profiler.on_embedding((0, 1))
        profiler.on_embedding((2, 3))
        summary = profiler.summary()
        assert summary["descends"] == 12
        assert summary["conflicts"] == 7
        assert summary["returns"] == 4
        assert summary["backjumps"] == 3
        assert summary["embeddings"] == 2
        assert summary["max_depth"] == 3

    def test_stride_histograms_scale_back_exactly(self):
        # 12 descends at stride 5 sample the 5th and 10th events: two
        # histogram increments, reported as 2 * 5 = 10; 7 conflicts
        # sample once, reported as 5.  The scaled estimates are exact
        # multiples of the stride with string keys.
        profiler = SamplingProfiler(stride=5)
        for _ in range(12):
            profiler.on_descend(3, 0, 0)
        for _ in range(7):
            profiler.on_conflict(1, 0, "empty", 0)
        summary = profiler.summary()
        assert summary["depth_hist"] == {"3": 10}
        assert summary["conflicts_by_kind"] == {"empty": 5}
        # Below the stride nothing has been sampled yet: empty, not 0s.
        sparse = SamplingProfiler(stride=64)
        for _ in range(63):
            sparse.on_descend(1, 0, 0)
        assert sparse.summary()["depth_hist"] == {}
        assert sparse.summary()["descends"] == 63

    def test_zero_recursion_search_yields_empty_summary(self):
        # A query whose label exists nowhere in the data dies in the
        # filter: the search never descends and the profiler (stride>1)
        # must report exact zeros, not stale or scaled garbage.
        data, _ = bipartite_world()
        query = graph_from_adjacency(["Z"], [])
        engine = GuPEngine(data)
        profiler = SamplingProfiler(stride=4)
        result = engine.match(query, observer=profiler)
        assert result.num_embeddings == 0
        summary = profiler.summary()
        assert summary["descends"] == 0
        assert summary["conflicts"] == 0
        assert summary["embeddings"] == 0
        assert summary["max_depth"] == 0
        assert summary["depth_hist"] == {}
        assert summary["conflicts_by_kind"] == {}

    def test_embedding_cap_zero_counts_the_first_embedding(self):
        # The engine checks the cap after recording, so cap=0 still
        # yields the first embedding; the profiler's exact embedding
        # count must agree with the result at any stride.
        data, query = bipartite_world()
        engine = GuPEngine(data)
        limits = SearchLimits(max_embeddings=0)
        plain = engine.match(query, limits=limits)
        profiler = SamplingProfiler(stride=3)
        observed = engine.match(query, limits=limits, observer=profiler)
        assert observed.embeddings == plain.embeddings
        assert observed.num_embeddings == plain.num_embeddings
        assert profiler.summary()["embeddings"] == observed.num_embeddings


def http_get(host, port, path):
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(f"GET {path} HTTP/1.0\r\n\r\n".encode())
        raw = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            raw += chunk
    head, _, body = raw.partition(b"\r\n\r\n")
    return head.split(b"\r\n", 1)[0].decode(), body.decode()


class TestServerObservability:
    def test_three_surfaces_reconcile_under_forced_overload(self, tmp_path):
        plan = FaultPlan([FaultRule("server.admission", "overload", times=3)])
        thread, query = serve_world(tmp_path, faults=plan)
        retry = RetryPolicy(attempts=5, base_delay=0.01, jitter=0.0)
        with thread:
            with ServiceClient(*thread.address, retry=retry) as client:
                reply = client.query(query, "g")
                assert reply.num_embeddings == 2
                stats = client.stats()
                metrics = flatten(client.metrics())
                health = client.healthz()

            server = stats["server"]
            assert server["rejected"] == 3
            assert server["shed_normal"] == 3
            # stats <-> /metrics: same storage, same numbers.
            for counter, family in (
                ("queries", "repro_server_queries_total"),
                ("served", "repro_server_served_total"),
                ("rejected", "repro_server_rejected_total"),
                ("shed_normal", "repro_server_shed_normal_total"),
                ("errors", "repro_server_errors_total"),
            ):
                assert metrics[family] == server[counter], counter
            # healthz <-> /metrics: load gauges and pool counters.
            assert metrics["repro_server_active"] == health["active"]
            assert metrics["repro_server_capacity"] == health["capacity"]
            for key, value in health["pool"].items():
                assert metrics[f"repro_pool_{key}_total"] == value
            # catalog counters cross-check through the same exposition.
            for key, value in stats["catalog"].items():
                if isinstance(value, int):
                    assert metrics[f"repro_catalog_{key}_total"] == value

    def test_subscriber_drop_losses_surface_as_metric(self, tmp_path):
        plan = FaultPlan(
            [FaultRule("server.subscriber.send", "delay", seconds=1.5,
                       times=1)]
        )
        thread, query = serve_world(
            tmp_path, faults=plan, subscriber_queue=1,
            subscriber_policy="drop",
        )
        updates = [GraphDelta(add_edges=((0, u),)) for u in (3, 4, 5)]
        final = GraphDelta(add_edges=((1, 3),))
        with thread:
            sub_client = ServiceClient(*thread.address)
            updater = ServiceClient(*thread.address)
            try:
                sub_client.subscribe(query, "g")
                for delta in updates:
                    updater.update("g", delta)
                time.sleep(2.0)
                updater.update("g", final)
                delivered = lost = 0
                while delivered + lost < len(updates) + 1:
                    event = sub_client.next_event(timeout=30)
                    delivered += 1
                    lost += int(event.get("lost", 0))
                assert lost >= 1
                stats = updater.stats()
                metrics = flatten(updater.metrics())
                assert stats["server"]["events_dropped"] == lost
                assert metrics["repro_server_events_dropped_total"] == lost
                assert metrics["repro_server_updates_total"] == 4
                # The server's own log narrates each drop.
                drops = [
                    r for r in thread.server.obs.log.read_records()
                    if r["event"] == "subscriber.drop"
                ]
                assert sum(r["lost"] for r in drops) == lost
            finally:
                sub_client.close()
                updater.close()

    def test_http_get_metrics_and_healthz(self, tmp_path):
        thread, query = serve_world(tmp_path)
        with thread:
            with ServiceClient(*thread.address) as client:
                client.query(query, "g")
                op_families = set(flatten(client.metrics()))
            status, body = http_get(*thread.address, "/metrics")
            assert " 200 " in status
            assert set(flatten(body)) == op_families
            status, health = http_get(*thread.address, "/healthz")
            assert " 200 " in status
            assert json.loads(health)["status"] == "ok"
            status, _ = http_get(*thread.address, "/nope")
            assert " 404 " in status
            # The JSON-lines protocol still works on the same port.
            with ServiceClient(*thread.address) as client:
                assert client.ping()

    def test_query_header_reports_queue_wait_and_trace(self, tmp_path):
        thread, query = serve_world(tmp_path)
        with thread:
            with ServiceClient(*thread.address) as client:
                reply = client.query(query, "g")
                assert reply.queue_seconds >= 0.0
                assert reply.server_seconds >= reply.elapsed
                assert reply.trace and len(reply.trace) == 16
                assert reply.profile is None

    def test_profile_option_attaches_summary(self, tmp_path):
        thread, query = serve_world(tmp_path)
        with thread:
            with ServiceClient(*thread.address) as client:
                reply = client.query(query, "g", profile=True)
                assert reply.cache == "bypass"  # profiling skips the cache
                prof = reply.profile
                assert prof["stride"] == 1
                assert prof["descends"] > 0
                assert prof["embeddings"] == 2
                # Per-phase split rides the ordinary header fields.
                assert reply.queue_seconds >= 0.0

    def test_phase_histograms_count_served_queries(self, tmp_path):
        thread, query = serve_world(tmp_path)
        with thread:
            with ServiceClient(*thread.address) as client:
                for _ in range(3):
                    client.query(query, "g")
                parsed = parse_exposition(client.metrics())
        for phase in ("queue", "build", "search", "stream"):
            key = ("repro_server_phase_seconds_count", (("phase", phase),))
            assert parsed[key] == 3, phase
        assert parsed[("repro_server_request_seconds_count", ())] == 3


class TestTracePropagation:
    def test_one_trace_across_client_server_and_workers(self, tmp_path):
        server_log = tmp_path / "server.jsonl"
        plan = FaultPlan([FaultRule("server.admission", "overload", times=1)])
        thread, query = serve_world(
            tmp_path, faults=plan,
            obs=Observability(log=StructuredLog(path=str(server_log))),
        )
        client_log = StructuredLog()
        retry = RetryPolicy(attempts=3, base_delay=0.01, jitter=0.0)
        with thread:
            with ServiceClient(*thread.address, retry=retry,
                               log=client_log) as client:
                reply = client.query(query, "g", workers=2, cache=False)
                assert reply.num_embeddings == 2
        trace = reply.trace
        assert trace

        attempts = [
            r for r in client_log.read_records()
            if r["event"] == "client.attempt"
        ]
        assert [r["attempt"] for r in attempts] == [1, 2]
        assert {r["trace"] for r in attempts} == {trace}

        records = StructuredLog(path=str(server_log)).read_records()
        by_trace = [r for r in records if r.get("trace") == trace]
        outcomes = [
            r["outcome"] for r in by_trace if r["event"] == "query"
        ]
        assert outcomes == ["shed", "served"]  # attempt 1 shed, attempt 2 ok
        worker_lines = [r for r in by_trace if r["event"] == "procpool.task"]
        assert worker_lines, "no worker log lines carried the trace"
        assert all(r["pid"] != attempts[0]["pid"] for r in worker_lines)

    def test_trace_context_reaches_fault_free_pool_run(self, tmp_path):
        # Same propagation, no server: bind a context, dispatch to the
        # pool directly, and find the workers' lines in the file.
        data, query = bipartite_world()
        log_path = tmp_path / "pool.jsonl"
        log = StructuredLog(path=str(log_path))
        engine = GuPEngine(data)
        with trace_context("feedbeef00000001", log):
            result = engine.match(query, workers=2)
        assert result.num_embeddings == 2
        tasks = [
            r for r in log.read_records() if r["event"] == "procpool.task"
        ]
        assert tasks
        assert {r["trace"] for r in tasks} == {"feedbeef00000001"}


class TestCli:
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True, text=True, timeout=120,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )

    def test_stats_and_metrics_commands(self, tmp_path):
        thread, query = serve_world(tmp_path)
        with thread:
            with ServiceClient(*thread.address) as client:
                client.query(query, "g")
            host, port = thread.address
            stats = self.run_cli("stats", host, str(port))
            assert stats.returncode == 0, stats.stderr
            assert "served" in stats.stdout
            assert "query cache" in stats.stdout
            metrics = self.run_cli("metrics", host, str(port))
            assert metrics.returncode == 0, metrics.stderr
            assert "repro_server_served_total 1" in metrics.stdout

    def test_unreachable_server_exits_one(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = str(probe.getsockname()[1])
        for command in ("stats", "metrics"):
            proc = self.run_cli(command, "127.0.0.1", port)
            assert proc.returncode == 1
            assert "error" in proc.stderr

    def test_query_prints_queue_exec_split_and_profile(self, tmp_path):
        thread, query = serve_world(tmp_path)
        qpath = tmp_path / "q.graph"
        from repro.graph.io import save_graph

        save_graph(query, qpath)
        with thread:
            host, port = thread.address
            proc = self.run_cli(
                "query", str(qpath), "g", "--host", host,
                "--port", str(port), "--profile",
            )
        assert proc.returncode == 0, proc.stderr
        assert "queue " in proc.stdout and "exec " in proc.stdout
        assert "profile:" in proc.stdout
