"""Tests for the recursion-budget ("virtual time") harness mode."""

import pytest

from repro.baselines.registry import get_matcher
from repro.bench.runner import (
    BenchmarkScale,
    QueryRunRecord,
    VIRTUAL_SCALE,
    run_query_set,
)
from repro.bench.stats import average_cost_with_timeouts, threshold_counts
from repro.matching.limits import SearchLimits
from repro.matching.result import TerminationStatus
from repro.workload.datasets import load_dataset
from repro.workload.querygen import QuerySetSpec, generate_query_set


def record(seconds, recursions, status=TerminationStatus.COMPLETE):
    return QueryRunRecord(
        index=0,
        seconds=seconds,
        status=status,
        embeddings=0,
        recursions=recursions,
        futile_recursions=0,
    )


class TestScaleAccessors:
    def test_wall_mode(self):
        scale = BenchmarkScale(mode="wall", query_time_limit=2.0,
                               subgroup_budget=6.0, thresholds=(0.5, 1.0))
        r = record(1.5, 999)
        assert scale.cost(r) == 1.5
        assert scale.kill_cost == 2.0
        assert scale.budget == 6.0
        assert scale.cost_thresholds == (0.5, 1.0)
        limits = scale.limits()
        assert limits.time_limit == 2.0
        assert limits.max_recursions is None

    def test_recursion_mode(self):
        scale = BenchmarkScale(
            mode="recursions",
            query_recursion_limit=100,
            subgroup_recursion_budget=300,
            recursion_thresholds=(10, 100),
        )
        r = record(1.5, 42)
        assert scale.cost(r) == 42.0
        assert scale.kill_cost == 100.0
        assert scale.budget == 300.0
        assert scale.cost_thresholds == (10.0, 100.0)
        limits = scale.limits()
        assert limits.max_recursions == 100
        assert limits.time_limit is None

    def test_virtual_scale_constants(self):
        assert VIRTUAL_SCALE.mode == "recursions"
        assert VIRTUAL_SCALE.limits().collect is False


class TestRecursionLimitEnforcement:
    @pytest.mark.parametrize("method", ["GuP", "DAF", "GQL-G", "RM", "VF2"])
    def test_all_engines_honor_recursion_cap(self, method):
        data = load_dataset("wordnet", scale=0.4, seed=5)
        query = generate_query_set(data, QuerySetSpec(10, "sparse"), 1, seed=6)[0]
        limits = SearchLimits(max_recursions=5, collect=False)
        result = get_matcher(method).match(query, data, limits)
        # Either it finished within 5 recursions or it was killed at 5.
        assert result.stats.recursions <= 5
        if result.stats.recursions >= 5 and not result.complete:
            assert result.status is TerminationStatus.TIMEOUT

    def test_killed_query_reports_timeout(self):
        data = load_dataset("wordnet", scale=0.4, seed=5)
        query = generate_query_set(data, QuerySetSpec(12, "dense"), 1, seed=8)[0]
        result = get_matcher("GuP").match(
            query, data, SearchLimits(max_recursions=3, collect=False)
        )
        assert result.status in (
            TerminationStatus.TIMEOUT,
            TerminationStatus.COMPLETE,
        )


class TestRunnerInRecursionMode:
    def test_dnf_by_recursion_budget(self):
        data = load_dataset("wordnet", scale=0.4, seed=5)
        queries = generate_query_set(data, QuerySetSpec(8, "sparse"), 4, seed=9)
        scale = BenchmarkScale(
            mode="recursions",
            query_recursion_limit=1_000_000,
            subgroup_recursion_budget=1,  # one recursion blows the budget
            subgroup_size=4,
        )
        result = run_query_set(get_matcher("GuP"), data, queries, scale=scale)
        assert result.dnf

    def test_threshold_counts_use_recursion_cost(self):
        records = [
            record(99.0, 5),
            record(0.001, 500),
            record(0.001, 50_000, TerminationStatus.TIMEOUT),
        ]
        counts = threshold_counts(
            records, (10, 1000), clamp_timeouts_to=2000,
            cost_of=lambda r: float(r.recursions),
        )
        # Wall seconds are irrelevant; recursions decide the buckets.
        assert counts == {10: 2, 1000: 1}

    def test_average_cost(self):
        from repro.bench.runner import QuerySetResult

        result = QuerySetResult(method="m", set_name="s")
        result.records = [
            record(0.0, 10),
            record(0.0, 0, TerminationStatus.TIMEOUT),
        ]
        avg = average_cost_with_timeouts(
            result, lambda r: float(r.recursions), clamp_timeouts_to=90
        )
        assert avg == 50.0
