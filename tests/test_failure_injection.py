"""Failure injection: limits, aborts, and state isolation.

The dangerous failure mode of nogood learning is recording a "nogood"
from a subtree that was not exhaustively explored (embedding cap or
timeout hit inside it) — such a guard could prune real embeddings
later.  These tests abort searches at every possible embedding count
and verify the results are always a prefix-correct subset.
"""

import pytest

from repro.baselines.registry import get_matcher
from repro.core.config import GuPConfig
from repro.core.engine import match
from repro.graph.generators import powerlaw_cluster_graph
from repro.matching.limits import SearchLimits
from repro.matching.result import TerminationStatus
from repro.matching.verify import assert_all_embeddings_valid
from repro.workload.querygen import generate_query


@pytest.fixture(scope="module")
def multi_embedding_instance():
    data = powerlaw_cluster_graph(40, 3, 0.4, num_labels=2, seed=55)
    query = generate_query(data, 6, "sparse", seed=56)
    full = match(query, data)
    assert full.num_embeddings >= 5, "fixture needs several embeddings"
    return query, data, full.embedding_set()


class TestEmbeddingCapAtEveryCount:
    def test_gup_capped_results_are_valid_subsets(self, multi_embedding_instance):
        query, data, truth = multi_embedding_instance
        for cap in range(1, len(truth) + 2):
            result = match(query, data, limits=SearchLimits(max_embeddings=cap))
            assert result.num_embeddings == min(cap, len(truth))
            assert result.embedding_set() <= truth
            assert_all_embeddings_valid(query, data, result.embeddings)
            if cap <= len(truth):
                assert result.status is TerminationStatus.EMBEDDING_LIMIT
            else:
                assert result.status is TerminationStatus.COMPLETE

    @pytest.mark.parametrize("method", ["DAF", "GQL-G", "RM"])
    def test_baselines_capped_results_are_valid_subsets(
        self, method, multi_embedding_instance
    ):
        query, data, truth = multi_embedding_instance
        matcher = get_matcher(method)
        for cap in (1, 2, len(truth)):
            result = matcher.match(query, data, SearchLimits(max_embeddings=cap))
            assert result.num_embeddings == min(cap, len(truth))
            assert result.embedding_set() <= truth


class TestAbortDoesNotPoisonLaterRuns:
    def test_capped_then_full_run_is_exact(self, multi_embedding_instance):
        """A fresh engine run after an aborted one must be complete —
        guard state must not leak across runs."""
        query, data, truth = multi_embedding_instance
        from repro.core.engine import GuPEngine

        engine = GuPEngine(data)
        capped = engine.match(query, limits=SearchLimits(max_embeddings=1))
        assert capped.num_embeddings == 1
        full = engine.match(query)
        assert full.embedding_set() == truth

    def test_shared_gcs_after_abort_is_still_exact(self, multi_embedding_instance):
        query, data, truth = multi_embedding_instance
        from repro.core.engine import GuPEngine

        engine = GuPEngine(data)
        gcs = engine.build(query)
        engine.match(query, limits=SearchLimits(max_embeddings=1), gcs=gcs)
        result = engine.match(query, gcs=gcs)
        assert result.embedding_set() == truth


class TestCollectFlag:
    def test_counting_mode_returns_no_embeddings(self, multi_embedding_instance):
        query, data, truth = multi_embedding_instance
        result = match(
            query, data, limits=SearchLimits(collect=False)
        )
        assert result.embeddings == []
        assert result.num_embeddings == len(truth)


class TestDegenerateInputs:
    def test_query_larger_than_data(self):
        from repro.graph.builder import path_graph

        q = path_graph("AAAA")
        d = path_graph("AA")
        assert match(q, d).num_embeddings == 0

    def test_data_without_query_labels(self):
        from repro.graph.builder import path_graph

        q = path_graph("AB")
        d = path_graph("XY")
        result = match(q, d)
        assert result.num_embeddings == 0
        assert result.complete

    def test_disconnected_data(self):
        from repro.graph.builder import GraphBuilder, path_graph

        b = GraphBuilder()
        b.add_vertices(["A", "B", "A", "B"])
        b.add_edges([(0, 1), (2, 3)])
        d = b.build()
        q = path_graph("AB")
        assert match(q, d).num_embeddings == 2
