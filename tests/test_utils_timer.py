"""Unit tests for Stopwatch and Deadline."""

import time

from repro.utils.timer import Deadline, Stopwatch


class TestStopwatch:
    def test_elapsed_monotone(self):
        sw = Stopwatch()
        a = sw.elapsed()
        b = sw.elapsed()
        assert 0 <= a <= b

    def test_restart(self):
        sw = Stopwatch()
        time.sleep(0.01)
        sw.restart()
        assert sw.elapsed() < 0.01


class TestDeadline:
    def test_never_expires_without_limit(self):
        d = Deadline(None, check_every=1)
        assert not d.poll()
        assert not d.check_now()
        assert d.remaining() is None

    def test_expires(self):
        d = Deadline(0.0, check_every=1)
        time.sleep(0.001)
        assert d.poll()
        assert d.expired

    def test_expiry_is_sticky(self):
        d = Deadline(0.0, check_every=1)
        time.sleep(0.001)
        d.check_now()
        assert d.poll()
        assert d.poll()

    def test_poll_skips_clock_reads(self):
        # With a large check_every, early polls return False cheaply even
        # though the wall deadline has passed; check_now still catches it.
        d = Deadline(0.0, check_every=10_000)
        time.sleep(0.001)
        assert not d.poll()
        assert d.check_now()

    def test_remaining_nonnegative(self):
        d = Deadline(100.0)
        rem = d.remaining()
        assert rem is not None and 0 < rem <= 100.0
        d2 = Deadline(0.0)
        time.sleep(0.001)
        assert d2.remaining() == 0.0
