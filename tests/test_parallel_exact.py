"""Differential tests: the process-parallel engines are exact.

The contract under test (DESIGN.md §6): for any query/data/config,
root-partitioned execution with task-local nogood stores
(``GuPEngine.match(workers=N)`` / :mod:`repro.core.procpool`) and the
batch pool (``GuPEngine.match_many(workers=N)``) return results
*identical* to the sequential engine — the same embedding **list** (not
just set: guards prune only embedding-free subtrees, so root-order
concatenation reproduces the sequential enumeration order), the same
``num_embeddings``, and the same termination status — including under
``max_embeddings`` truncation and symmetry breaking.
"""

import pytest

from repro.cli import main as cli_main
from repro.core.config import GuPConfig
from repro.core.engine import GuPEngine
from repro.core.procpool import (
    match_parallel,
    merge_root_results,
    root_partition,
    run_root_task,
)
from repro.graph.generators import powerlaw_cluster_graph
from repro.graph.io import save_graph
from repro.matching.limits import SearchLimits
from repro.matching.result import TerminationStatus
from repro.workload.datasets import load_dataset
from repro.workload.querygen import QuerySetSpec, generate_query, generate_query_set

WORKERS = 2  # enough to exercise the pool without forking storms


@pytest.fixture(scope="module")
def instances():
    """Small but search-heavy (query, data) pairs."""
    pairs = []
    for seed, n, size, density in (
        (77, 80, 8, "dense"),
        (123, 70, 7, "sparse"),
        (9, 60, 6, "dense"),
    ):
        data = powerlaw_cluster_graph(n, 3, 0.35, num_labels=3, seed=seed)
        pairs.append((generate_query(data, size, density, seed=seed + 1), data))
    return pairs


def assert_identical(seq, par):
    assert par.embeddings == seq.embeddings
    assert par.num_embeddings == seq.num_embeddings
    assert par.status == seq.status


CONFIGS = {
    "full": GuPConfig(),
    "baseline": GuPConfig.baseline(),
    "symmetry": GuPConfig(break_symmetry=True),
    "list_backend": GuPConfig(candidate_backend="list"),
    "explicit_nogoods": GuPConfig(nogood_representation="explicit"),
}


class TestMatchWorkersExact:
    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    def test_procpool_identical_to_sequential(self, instances, config_name):
        config = CONFIGS[config_name]
        for query, data in instances:
            engine = GuPEngine(data, config)
            assert_identical(
                engine.match(query), engine.match(query, workers=WORKERS)
            )

    @pytest.mark.parametrize("cap", [1, 3, 7])
    def test_truncation_is_prefix_exact(self, instances, cap):
        """max_embeddings keeps the sequential prefix, bit for bit."""
        limits = SearchLimits(max_embeddings=cap)
        for query, data in instances:
            engine = GuPEngine(data)
            seq = engine.match(query, limits=limits)
            par = engine.match(query, limits=limits, workers=WORKERS)
            assert_identical(seq, par)
            if engine.match(query).num_embeddings > cap:
                assert seq.status is TerminationStatus.EMBEDDING_LIMIT

    def test_zero_cap_matches_sequential(self, instances):
        """max_embeddings=0: the sequential search still yields the
        first embedding (the cap is checked after recording); the merge
        must mirror that, and stay COMPLETE when nothing exists."""
        limits = SearchLimits(max_embeddings=0)
        for query, data in instances:
            engine = GuPEngine(data)
            assert_identical(
                engine.match(query, limits=limits),
                engine.match(query, limits=limits, workers=WORKERS),
            )

    def test_truncation_under_symmetry(self, instances):
        limits = SearchLimits(max_embeddings=4)
        for query, data in instances:
            engine = GuPEngine(data, GuPConfig(break_symmetry=True))
            assert_identical(
                engine.match(query, limits=limits),
                engine.match(query, limits=limits, workers=WORKERS),
            )

    def test_count_only_runs(self, instances):
        """collect=False: counts and status still merge exactly."""
        limits = SearchLimits(collect=False)
        query, data = instances[0]
        engine = GuPEngine(data)
        seq = engine.match(query, limits=limits)
        par = engine.match(query, limits=limits, workers=WORKERS)
        assert par.embeddings == [] == seq.embeddings
        assert par.num_embeddings == seq.num_embeddings
        assert par.status == seq.status

    def test_match_parallel_convenience(self, instances):
        query, data = instances[0]
        assert_identical(
            GuPEngine(data).match(query),
            match_parallel(query, data, workers=WORKERS),
        )

    def test_results_independent_of_worker_count(self, instances):
        query, data = instances[0]
        engine = GuPEngine(data)
        runs = [engine.match(query, workers=w) for w in (1, 2, 3)]
        for other in runs[1:]:
            assert_identical(runs[0], other)


class TestInlinePartitionExact:
    """The shared partitioning codepath itself, without processes."""

    def test_merged_root_tasks_equal_sequential(self, instances):
        config = GuPConfig()
        limits = SearchLimits()
        for query, data in instances:
            engine = GuPEngine(data, config)
            gcs = engine.build(query)
            results = [
                run_root_task(gcs, task, config, limits)
                for task in root_partition(gcs)
            ]
            raw, status, stats = merge_root_results(results, gcs, limits)
            seq = engine.match(query, gcs=engine.build(query))
            assert [gcs.to_original_embedding(e) for e in raw] == seq.embeddings
            assert status == seq.status
            assert stats.embeddings_found == seq.num_embeddings

    def test_partition_covers_root_candidates(self, instances):
        query, data = instances[0]
        gcs = GuPEngine(data).build(query)
        tasks = root_partition(gcs)
        assert [t.vertex for t in tasks] == list(gcs.cs.candidates[0])
        assert [t.index for t in tasks] == list(range(len(tasks)))
        assert all(t.mask == 1 << t.index for t in tasks)


class TestMatchManyExact:
    def test_batch_identical_to_sequential(self, instances):
        queries = [q for q, _ in instances]
        data = instances[0][1]
        # All queries against one data graph (the batch contract).
        engine = GuPEngine(data)
        seq = engine.match_many(queries)
        par = engine.match_many(queries, workers=3)
        assert len(seq) == len(par) == len(queries)
        for a, b in zip(seq, par):
            assert_identical(a, b)

    def test_batch_respects_limits(self, instances):
        queries = [q for q, _ in instances]
        data = instances[0][1]
        limits = SearchLimits(max_embeddings=2)
        engine = GuPEngine(data)
        for a, b in zip(
            engine.match_many(queries, limits=limits),
            engine.match_many(queries, limits=limits, workers=WORKERS),
        ):
            assert_identical(a, b)
            assert a.num_embeddings <= 2

    def test_empty_and_single_query_sets(self, instances):
        query, data = instances[0]
        engine = GuPEngine(data)
        assert engine.match_many([], workers=WORKERS) == []
        (only,) = engine.match_many([query], workers=WORKERS)
        assert_identical(engine.match(query), only)


class TestFig6WorkloadBatch:
    """The acceptance-criterion workload: a fig6-style query set against
    the wordnet stand-in, 4 workers, embedding sets identical."""

    @pytest.fixture(scope="class")
    def workload(self):
        data = load_dataset("wordnet", scale=0.25, seed=2023)
        queries = generate_query_set(
            data, QuerySetSpec(8, "sparse"), count=4, seed=2023
        )
        return data, list(queries)

    def test_batch_workers4_identical(self, workload):
        data, queries = workload
        limits = SearchLimits(max_embeddings=1_000)
        engine = GuPEngine(data)
        seq = engine.match_many(queries, limits=limits)
        par = engine.match_many(queries, limits=limits, workers=4)
        for a, b in zip(seq, par):
            assert b.embedding_set() == a.embedding_set()
            assert_identical(a, b)

    def test_cli_batch_workers4(self, workload, tmp_path, capsys):
        data, queries = workload
        save_graph(data, str(tmp_path / "data.graph"))
        for i, query in enumerate(queries):
            save_graph(query, str(tmp_path / f"q{i}.graph"))
        rc = cli_main(
            [
                "batch",
                str(tmp_path / "q*.graph"),
                str(tmp_path / "data.graph"),
                "--workers",
                "4",
                "--limit",
                "1000",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        engine = GuPEngine(data)
        expected = sum(
            r.num_embeddings
            for r in engine.match_many(
                queries, limits=SearchLimits(max_embeddings=1_000)
            )
        )
        assert f"total embeddings: {expected}" in out
