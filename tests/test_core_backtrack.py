"""Behavioral tests for the guarded backtracking (Algorithm 2).

These pin down the paper's mechanisms: guard pruning actually fires,
backjumping skips siblings, ablation configs form a pruning ladder, and
aborted runs never record guards.
"""

import pytest

from repro.core.backtrack import GuPSearch
from repro.core.config import GuPConfig
from repro.core.engine import match
from repro.core.gcs import build_gcs
from repro.graph.builder import GraphBuilder
from repro.graph.generators import powerlaw_cluster_graph, random_connected_graph
from repro.matching.limits import SearchLimits
from repro.matching.result import TerminationStatus


def hard_instance(seed=11, nq=10, nd=60):
    """Satisfiable cyclic query on a clustered graph: deadend-rich search.

    Extracting the query from the data graph (random walk) guarantees at
    least one embedding, so filtering cannot empty the candidate space
    and the backtracking actually explores.
    """
    from repro.workload.querygen import generate_query

    data = powerlaw_cluster_graph(nd, 3, 0.35, num_labels=4, seed=seed + 1)
    query = generate_query(data, nq, "dense", seed=seed)
    return query, data


class TestGuardFiring:
    def test_reservation_prunes_on_paper_example(self, paper_query, paper_data):
        result = match(paper_query, paper_data, config=GuPConfig.reservation_only())
        # Fig. 3 / Example 3.34: R(u2, v5) fires during the search.
        assert result.stats.pruned_reservation >= 1

    def test_nv_guards_fire(self):
        q, d = hard_instance()
        result = match(q, d, config=GuPConfig.r_nv())
        assert result.stats.nogoods_recorded_vertex > 0
        # Recording alone is not the point; matches must prune.
        total = 0
        for seed in range(6):
            q, d = hard_instance(seed=seed * 7 + 1)
            total += match(q, d, config=GuPConfig.r_nv()).stats.pruned_nogood_vertex
        assert total > 0

    def test_ne_guards_fire(self):
        total_rec = total_pruned = 0
        for seed in range(8):
            q, d = hard_instance(seed=seed * 13 + 3)
            r = match(q, d, config=GuPConfig.r_nv_ne())
            total_rec += r.stats.nogoods_recorded_edge
            total_pruned += r.stats.pruned_nogood_edge
        assert total_rec > 0
        assert total_pruned > 0

    def test_backjumps_happen(self):
        total = 0
        for seed in range(6):
            q, d = hard_instance(seed=seed * 3 + 2)
            total += match(q, d, config=GuPConfig.full()).stats.backjumps
        assert total > 0


class TestAblationLadder:
    def test_each_guard_reduces_futile_recursions(self):
        """Fig. 9's qualitative shape over a small workload."""
        configs = [
            ("baseline", GuPConfig.baseline()),
            ("R", GuPConfig.reservation_only()),
            ("R+NV", GuPConfig.r_nv()),
            ("R+NV+NE", GuPConfig.r_nv_ne()),
            ("All", GuPConfig.full()),
        ]
        futile = {}
        for name, config in configs:
            total = 0
            for seed in range(12):
                q, d = hard_instance(seed=seed * 17 + 5)
                total += match(q, d, config=config).stats.futile_recursions
            futile[name] = total
        assert futile["R"] <= futile["baseline"]
        assert futile["R+NV"] <= futile["R"]
        assert futile["R+NV+NE"] <= futile["R+NV"]
        assert futile["All"] <= futile["R+NV+NE"]
        # And the whole ladder is a strict improvement end to end.
        assert futile["All"] < futile["baseline"]


class TestAbortSafety:
    def test_no_recording_after_embedding_limit(self):
        q, d = hard_instance(seed=29)
        gcs = build_gcs(q, d)
        limits = SearchLimits(max_embeddings=1, collect=False)
        search = GuPSearch(gcs, limits=limits)
        _, status = search.run()
        if status is TerminationStatus.EMBEDDING_LIMIT:
            # Recording stops at the abort; the counters must agree with
            # the store contents (no post-abort writes).
            assert search.stats.embeddings_found == 1

    def test_timeout_fires_on_long_searches(self):
        # An unlabeled path in a dense unlabeled graph: astronomically
        # many embeddings, so the search must hit the deadline poll.
        data = random_connected_graph(40, 300, num_labels=1, seed=1)
        from repro.workload.querygen import generate_query

        query = generate_query(data, 8, "dense", seed=2)
        result = match(
            query,
            data,
            limits=SearchLimits(time_limit=0.0, collect=False),
        )
        assert result.status is TerminationStatus.TIMEOUT

    def test_tiny_searches_may_finish_before_the_poll(self, paper_query, paper_data):
        # Deadline polling is amortized (every ~2k recursions): a search
        # that small legitimately completes despite a 0-second limit.
        result = match(
            paper_query, paper_data, limits=SearchLimits(time_limit=0.0)
        )
        assert result.status in (
            TerminationStatus.COMPLETE,
            TerminationStatus.TIMEOUT,
        )

    def test_fresh_search_not_reusable_state(self, paper_query, paper_data):
        gcs = build_gcs(paper_query, paper_data)
        s1 = GuPSearch(gcs)
        r1, _ = s1.run()
        s2 = GuPSearch(gcs)
        r2, _ = s2.run()
        assert r1 == r2


class TestWatchAccounting:
    def test_watches_fully_released(self):
        """The watch accounting must drain back to zero."""
        for seed in (3, 5, 7):
            q, d = hard_instance(seed=seed)
            gcs = build_gcs(q, d)
            search = GuPSearch(gcs)
            search.run()
            assert search._watch_total == 0

    def test_max_watches_zero_disables_ne_recording_only(self):
        q, d = hard_instance(seed=41)
        gcs = build_gcs(q, d)
        search = GuPSearch(gcs, max_watches=0)
        embeddings, _ = search.run()
        reference = GuPSearch(build_gcs(q, d))
        ref_embeddings, _ = reference.run()
        assert sorted(embeddings) == sorted(ref_embeddings)
