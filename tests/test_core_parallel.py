"""Tests for the parallel search model (§3.5.2 / §4.3.4)."""

import pytest

from repro.core.parallel import (
    ParallelRunReport,
    _lpt_makespan,
    _work_stealing_makespan,
    sequential_gup_work,
    simulate_daf_parallel,
    simulate_gup_parallel,
)
from repro.graph.generators import powerlaw_cluster_graph
from repro.matching.limits import SearchLimits
from repro.workload.querygen import generate_query


@pytest.fixture(scope="module")
def instance():
    data = powerlaw_cluster_graph(60, 3, 0.35, num_labels=3, seed=77)
    query = generate_query(data, 8, "dense", seed=78)
    return query, data


class TestSchedulingModels:
    def test_lpt_single_thread(self):
        assert _lpt_makespan([5, 3, 2], 1) == 10

    def test_lpt_more_threads_than_tasks(self):
        # Extra threads idle; the longest task sets the makespan.
        assert _lpt_makespan([4, 2], 8) == 4
        assert _lpt_makespan([7], 3) == 7

    def test_lpt_zero_threads_treated_as_one(self):
        assert _lpt_makespan([5, 3], 0) == 8

    def test_work_stealing_empty(self):
        # Zero total work still costs the one-unit floor on P > 1.
        assert _work_stealing_makespan(0, [], 4) == 1
        assert _work_stealing_makespan(0, [], 1) == 0

    def test_work_stealing_single_thread_is_total(self):
        assert _work_stealing_makespan(17, [9, 8], 1) == 17

    def test_work_stealing_more_threads_than_work(self):
        assert _work_stealing_makespan(3, [3], 100) == 1


class TestParallelRunReport:
    def test_speedup_vs(self):
        report = ParallelRunReport(
            num_threads=4, total_work=100, makespan=25
        )
        assert report.speedup_vs == pytest.approx(4.0)

    def test_speedup_with_zero_makespan(self):
        # Degenerate empty run: defined as the ideal P-fold speedup.
        report = ParallelRunReport(num_threads=8, total_work=0, makespan=0)
        assert report.speedup_vs == 8.0

    def test_defaults(self):
        report = ParallelRunReport(num_threads=2, total_work=6, makespan=3)
        assert report.task_costs == []
        assert report.embeddings == 0

    def test_lpt_balances(self):
        assert _lpt_makespan([5, 3, 2], 2) == 5

    def test_lpt_plateaus_on_dominant_task(self):
        # One huge root subtree caps the speedup — the paper's DAF story.
        costs = [100, 1, 1, 1]
        assert _lpt_makespan(costs, 8) == 100

    def test_lpt_empty(self):
        assert _lpt_makespan([], 4) == 0

    def test_work_stealing_perfect_split(self):
        assert _work_stealing_makespan(100, [100], 4) == 25
        assert _work_stealing_makespan(100, [50, 50], 1) == 100

    def test_work_stealing_ceils(self):
        assert _work_stealing_makespan(101, [101], 4) == 26


class TestSimulations:
    def test_gup_reports(self, instance):
        query, data = instance
        reports = simulate_gup_parallel(query, data, [1, 2, 4])
        assert [r.num_threads for r in reports] == [1, 2, 4]
        total = reports[0].total_work
        assert total > 0
        assert all(r.total_work == total for r in reports)
        # Monotone non-increasing makespan => non-decreasing speedup.
        speedups = [r.speedup_vs for r in reports]
        assert speedups == sorted(speedups)
        assert speedups[0] == pytest.approx(1.0)

    def test_daf_reports(self, instance):
        query, data = instance
        reports = simulate_daf_parallel(query, data, [1, 2, 4, 8])
        speedups = [r.speedup_vs for r in reports]
        assert speedups == sorted(speedups)
        # Static root splitting cannot exceed the task-count bound.
        assert all(
            r.speedup_vs <= max(1, len(r.task_costs)) + 1e-9 for r in reports
        )

    def test_gup_scales_better_than_daf_at_high_thread_counts(self, instance):
        query, data = instance
        p = 16
        gup = simulate_gup_parallel(query, data, [p])[0]
        daf = simulate_daf_parallel(query, data, [p])[0]
        assert gup.speedup_vs >= daf.speedup_vs * 0.9  # GuP at least comparable

    def test_thread_local_stores_change_total_work_only_mildly(self, instance):
        """§4.3.4: parallel total recursions stay close to sequential."""
        query, data = instance
        seq = sequential_gup_work(query, data)
        par = simulate_gup_parallel(query, data, [4])[0].total_work
        assert par > 0 and seq > 0
        assert par <= seq * 4  # sanity bound: no pathological blowup

    def test_embeddings_preserved_across_partitions(self, instance):
        query, data = instance
        from repro.core.engine import count_embeddings

        expected = count_embeddings(query, data)
        report = simulate_gup_parallel(query, data, [2])[0]
        assert report.embeddings == expected

    def test_simulation_work_equals_real_executor_work(self, instance):
        """The simulation and the process pool share one partitioning
        codepath: their total (thread-local-store) work is identical."""
        from repro.core.engine import GuPEngine

        query, data = instance
        simulated = simulate_gup_parallel(query, data, [4])[0]
        real = GuPEngine(data).match(
            query, limits=SearchLimits(collect=False), workers=2
        )
        assert real.stats.recursions == simulated.total_work

    def test_daf_restriction_uses_shared_helper(self, instance):
        from repro.core.procpool import restrict_cs_to_root
        from repro.filtering.candidate_space import build_candidate_space

        query, data = instance
        cs = build_candidate_space(query, data)
        if not cs.candidates[0]:
            pytest.skip("no root candidates")
        v = cs.candidates[0][0]
        restricted = restrict_cs_to_root(cs, v)
        assert restricted.candidates[0] == (v,)
        assert restricted.candidates[1:] == cs.candidates[1:]
