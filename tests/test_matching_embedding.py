"""Unit tests for embedding helpers."""

from repro.matching.embedding import (
    embedding_image,
    embedding_to_dict,
    extend,
    images_of_mask,
    restrict_embedding,
)


class TestHelpers:
    def test_to_dict(self):
        assert embedding_to_dict((5, 7)) == {0: 5, 1: 7}

    def test_image(self):
        assert embedding_image((5, 7, 5)) == {5, 7}

    def test_extend(self):
        assert extend((1, 2), 9) == (1, 2, 9)
        assert extend([], 3) == (3,)

    def test_restrict_by_mask(self):
        # M[K] with K = {u0, u2}
        assert restrict_embedding((4, 5, 6), 0b101) == ((0, 4), (2, 6))

    def test_restrict_ignores_unassigned_bits(self):
        # The mask may mention vertices the prefix has not reached.
        assert restrict_embedding((4,), 0b110 | 1) == ((0, 4),)

    def test_images_of_mask(self):
        assert images_of_mask((4, 5, 6), 0b110) == {5, 6}
        assert images_of_mask((4, 5, 6), 0) == frozenset()
