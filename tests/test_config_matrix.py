"""Config-matrix differential test: every feature combination is exact.

The engine now has many orthogonal knobs (guards, backjumping, nogood
representation, reservation limit, symmetry breaking, filter, order).
This test sweeps a structured sample of the cross-product and checks
the embedding set against the VF2 oracle on randomized instances —
the guard combinations must compose without interfering.
"""

import itertools
import random

import pytest

from repro.baselines.vf2 import Vf2Matcher
from repro.core.config import GuPConfig
from repro.core.engine import GuPEngine, match
from repro.dynamic.continuous import ContinuousMatcher
from repro.dynamic.delta import GraphDelta
from repro.graph.generators import erdos_renyi_graph, random_connected_graph
from repro.workload.datasets import load_dataset
from repro.workload.querygen import QuerySetSpec, generate_query_set

ORACLE = Vf2Matcher()


def configs():
    """A structured sample of the configuration cross-product."""
    out = []
    for use_r, use_nv, use_ne, use_bj in itertools.product((False, True), repeat=4):
        out.append(
            GuPConfig(
                use_reservation=use_r,
                use_nogood_vertex=use_nv,
                use_nogood_edge=use_ne,
                use_backjumping=use_bj,
            )
        )
    for representation in ("search_node", "explicit"):
        for symmetry in (False, True):
            out.append(
                GuPConfig(
                    nogood_representation=representation,
                    break_symmetry=symmetry,
                )
            )
    for filt in ("ldf", "nlf", "nlf2", "dagdp", "gql"):
        for order in ("vc", "gql", "ri"):
            out.append(GuPConfig(filter_method=filt, ordering=order))
    for r in (0, 1, None):
        out.append(GuPConfig(reservation_limit=r, ne_two_core_only=False))
    return out


CONFIGS = configs()


def instances(seed, count):
    rng = random.Random(seed)
    for _ in range(count):
        nq = rng.randint(2, 5)
        nd = rng.randint(4, 12)
        labels = rng.randint(1, 3)
        query = random_connected_graph(
            nq, nq - 1 + rng.randint(0, 4), num_labels=labels,
            seed=rng.randint(0, 10**9),
        )
        data = erdos_renyi_graph(
            nd, rng.randint(0, nd * 2), num_labels=labels,
            seed=rng.randint(0, 10**9),
        )
        yield query, data


@pytest.mark.parametrize("index", range(0, len(CONFIGS), 3))
def test_config_sample_is_exact(index):
    config = CONFIGS[index]
    for query, data in instances(seed=index * 31 + 7, count=10):
        expected = ORACLE.match(query, data).embedding_set()
        got = match(query, data, config=config).embedding_set()
        assert got == expected, config


def test_every_config_on_one_instance():
    rng = random.Random(99)
    query = random_connected_graph(5, 7, num_labels=2, seed=1)
    data = erdos_renyi_graph(14, 30, num_labels=2, seed=2)
    expected = ORACLE.match(query, data).embedding_set()
    for config in CONFIGS:
        got = match(query, data, config=config).embedding_set()
        assert got == expected, config


# -- mask_backend twin grid ------------------------------------------------
#
# The words mask backend must be bit-for-bit the int twin: not just the
# same embedding *set*, but the same embedding list (enumeration order),
# the same SearchStats (every recursion, every guard firing), and the
# same termination status — crossed with the other backend knobs so a
# kernel bug can't hide behind a particular candidate or build pipeline.

MASK_CROSS = [
    {},
    {"candidate_backend": "list"},
    {"build_backend": "set"},
    {"candidate_backend": "list", "build_backend": "set"},
    {"filter_method": "dagdp", "ordering": "ri"},
    {"use_reservation": False, "use_backjumping": False,
     "use_nogood_vertex": False, "use_nogood_edge": False},
]


def _twin_configs(knobs):
    return (
        GuPConfig(mask_backend="int", **knobs),
        GuPConfig(mask_backend="words", **knobs),
    )


def assert_twin_results(int_result, words_result, context):
    assert words_result.embeddings == int_result.embeddings, context
    assert words_result.num_embeddings == int_result.num_embeddings, context
    assert words_result.status == int_result.status, context
    assert words_result.stats == int_result.stats, context


class TestMaskBackendTwin:
    @pytest.mark.parametrize(
        "index", range(len(MASK_CROSS)),
        ids=["+".join(sorted(k)) or "defaults" for k in MASK_CROSS],
    )
    def test_words_twin_on_randomized_instances(self, index):
        knobs = MASK_CROSS[index]
        int_cfg, words_cfg = _twin_configs(knobs)
        for query, data in instances(seed=index * 101 + 13, count=8):
            assert_twin_results(
                match(query, data, config=int_cfg),
                match(query, data, config=words_cfg),
                knobs,
            )

    @pytest.fixture(scope="class")
    def fig6_workload(self):
        data = load_dataset("wordnet", scale=0.25, seed=2023)
        queries = generate_query_set(
            data, QuerySetSpec(8, "sparse"), count=3, seed=7
        )
        return data, list(queries)

    def test_words_twin_on_fig6_set(self, fig6_workload):
        data, queries = fig6_workload
        int_cfg, words_cfg = _twin_configs({})
        int_engine = GuPEngine(data, int_cfg)
        words_engine = GuPEngine(data, words_cfg)
        for query in queries:
            assert_twin_results(
                int_engine.match(query), words_engine.match(query), "fig6"
            )

    def test_words_twin_through_procpool(self, fig6_workload):
        # The pool pickles DataArtifacts into workers; the words engine
        # must round-trip through that and still replay the int twin's
        # exact enumeration (root-order concatenation, DESIGN.md §6).
        data, queries = fig6_workload
        int_cfg, words_cfg = _twin_configs({})
        int_engine = GuPEngine(data, int_cfg)
        words_engine = GuPEngine(data, words_cfg)
        for query in queries:
            par = words_engine.match(query, workers=2)
            assert_twin_results(
                int_engine.match(query, workers=2), par, "fig6+procpool"
            )
            # and the pool itself is exact: same list as sequential words
            assert par.embeddings == words_engine.match(query).embeddings

    def test_words_twin_through_delta_sequence(self):
        # ContinuousMatcher patches artifacts in place via apply_delta;
        # the words engine routes the bit flips through flip_edge_bits,
        # and every epoch's standing-match set must stay identical.
        rng = random.Random(4242)
        data = erdos_renyi_graph(16, 30, num_labels=2, seed=5)
        query = random_connected_graph(3, 3, num_labels=2, seed=6)
        int_cfg, words_cfg = _twin_configs({})
        matchers = (
            ContinuousMatcher(data, int_cfg),
            ContinuousMatcher(data, words_cfg),
        )
        assert matchers[0].register("q", query) == matchers[1].register(
            "q", query
        )
        for step in range(6):
            edges = list(matchers[0].graph.edges())
            remove = tuple(rng.sample(edges, min(2, len(edges))))
            add = []
            while len(add) < 2:
                u, v = rng.randrange(16), rng.randrange(16)
                e = (min(u, v), max(u, v))
                if u != v and not matchers[0].graph.has_edge(u, v) \
                        and e not in add and e not in remove:
                    add.append(e)
            delta = GraphDelta(add_edges=tuple(add), remove_edges=remove)
            diffs = [m.apply(delta) for m in matchers]
            assert diffs[0]["q"].added == diffs[1]["q"].added, step
            assert diffs[0]["q"].removed == diffs[1]["q"].removed, step
            assert matchers[0].matches("q") == matchers[1].matches("q"), step
            assert matchers[0].counters == matchers[1].counters, step
