"""Config-matrix differential test: every feature combination is exact.

The engine now has many orthogonal knobs (guards, backjumping, nogood
representation, reservation limit, symmetry breaking, filter, order).
This test sweeps a structured sample of the cross-product and checks
the embedding set against the VF2 oracle on randomized instances —
the guard combinations must compose without interfering.
"""

import itertools
import random

import pytest

from repro.baselines.vf2 import Vf2Matcher
from repro.core.config import GuPConfig
from repro.core.engine import match
from repro.graph.generators import erdos_renyi_graph, random_connected_graph

ORACLE = Vf2Matcher()


def configs():
    """A structured sample of the configuration cross-product."""
    out = []
    for use_r, use_nv, use_ne, use_bj in itertools.product((False, True), repeat=4):
        out.append(
            GuPConfig(
                use_reservation=use_r,
                use_nogood_vertex=use_nv,
                use_nogood_edge=use_ne,
                use_backjumping=use_bj,
            )
        )
    for representation in ("search_node", "explicit"):
        for symmetry in (False, True):
            out.append(
                GuPConfig(
                    nogood_representation=representation,
                    break_symmetry=symmetry,
                )
            )
    for filt in ("ldf", "nlf", "nlf2", "dagdp", "gql"):
        for order in ("vc", "gql", "ri"):
            out.append(GuPConfig(filter_method=filt, ordering=order))
    for r in (0, 1, None):
        out.append(GuPConfig(reservation_limit=r, ne_two_core_only=False))
    return out


CONFIGS = configs()


def instances(seed, count):
    rng = random.Random(seed)
    for _ in range(count):
        nq = rng.randint(2, 5)
        nd = rng.randint(4, 12)
        labels = rng.randint(1, 3)
        query = random_connected_graph(
            nq, nq - 1 + rng.randint(0, 4), num_labels=labels,
            seed=rng.randint(0, 10**9),
        )
        data = erdos_renyi_graph(
            nd, rng.randint(0, nd * 2), num_labels=labels,
            seed=rng.randint(0, 10**9),
        )
        yield query, data


@pytest.mark.parametrize("index", range(0, len(CONFIGS), 3))
def test_config_sample_is_exact(index):
    config = CONFIGS[index]
    for query, data in instances(seed=index * 31 + 7, count=10):
        expected = ORACLE.match(query, data).embedding_set()
        got = match(query, data, config=config).embedding_set()
        assert got == expected, config


def test_every_config_on_one_instance():
    rng = random.Random(99)
    query = random_connected_graph(5, 7, num_labels=2, seed=1)
    data = erdos_renyi_graph(14, 30, num_labels=2, seed=2)
    expected = ORACLE.match(query, data).embedding_set()
    for config in CONFIGS:
        got = match(query, data, config=config).embedding_set()
        assert got == expected, config
