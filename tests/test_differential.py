"""Differential tests: every engine must agree with the VF2 oracle.

This is the central correctness argument of the reproduction: on
randomized instances, GuP under every ablation configuration and every
baseline matcher produces exactly the same *set* of embeddings as the
brute-force oracle.
"""

import random

import pytest

from repro.baselines.registry import get_matcher
from repro.baselines.vf2 import Vf2Matcher
from repro.core.config import GuPConfig
from repro.core.engine import match
from repro.workload.querygen import generate_query
from repro.graph.generators import (
    erdos_renyi_graph,
    powerlaw_cluster_graph,
    random_connected_graph,
)

ORACLE = Vf2Matcher()

GUP_CONFIGS = {
    "All": GuPConfig.full(),
    "baseline": GuPConfig.baseline(),
    "R": GuPConfig.reservation_only(),
    "R+NV": GuPConfig.r_nv(),
    "R+NV+NE": GuPConfig.r_nv_ne(),
    "NE-only": GuPConfig(
        use_reservation=False,
        use_nogood_vertex=False,
        use_nogood_edge=True,
        use_backjumping=False,
    ),
    "NV+BJ": GuPConfig(
        use_reservation=False,
        use_nogood_vertex=True,
        use_nogood_edge=False,
        use_backjumping=True,
    ),
    "r=0": GuPConfig(reservation_limit=0),
    "r=inf": GuPConfig(reservation_limit=None),
    "no-2core": GuPConfig(ne_two_core_only=False),
}


def random_instances(seed, count, max_query=6, max_data=14):
    rng = random.Random(seed)
    for _ in range(count):
        nq = rng.randint(2, max_query)
        nd = rng.randint(4, max_data)
        labels = rng.randint(1, 3)
        query = random_connected_graph(
            nq, nq - 1 + rng.randint(0, 4), num_labels=labels,
            seed=rng.randint(0, 10**9),
        )
        data = erdos_renyi_graph(
            nd, rng.randint(0, nd * 2), num_labels=labels,
            seed=rng.randint(0, 10**9),
        )
        yield query, data


def satisfiable_instances(seed, count, size=7):
    rng = random.Random(seed)
    for _ in range(count):
        data = powerlaw_cluster_graph(
            rng.randint(25, 50), 3, 0.35, num_labels=rng.randint(2, 4),
            seed=rng.randint(0, 10**9),
        )
        density = rng.choice(["sparse", "dense"])
        query = generate_query(data, size, density, seed=rng.randint(0, 10**9))
        yield query, data


@pytest.mark.parametrize("name", sorted(GUP_CONFIGS))
def test_gup_configs_match_oracle_random(name):
    config = GUP_CONFIGS[name]
    for query, data in random_instances(seed=hash(name) % 2**31, count=25):
        expected = ORACLE.match(query, data).embedding_set()
        got = match(query, data, config=config).embedding_set()
        assert got == expected, (
            f"{name}: {len(got)} vs {len(expected)} on "
            f"q={list(query.edges())}/{query.labels} "
            f"d={list(data.edges())}/{data.labels}"
        )


@pytest.mark.parametrize("name", ["All", "R+NV+NE", "no-2core"])
def test_gup_configs_match_oracle_satisfiable(name):
    config = GUP_CONFIGS[name]
    for query, data in satisfiable_instances(seed=len(name), count=8):
        expected = ORACLE.match(query, data).embedding_set()
        got = match(query, data, config=config).embedding_set()
        assert got == expected


@pytest.mark.parametrize("method", ["DAF", "GQL-G", "GQL-R", "RM", "Baseline"])
def test_baselines_match_oracle(method):
    matcher = get_matcher(method)
    for query, data in random_instances(seed=len(method) * 77, count=20):
        expected = ORACLE.match(query, data).embedding_set()
        got = matcher.match(query, data).embedding_set()
        assert got == expected


@pytest.mark.parametrize("method", ["DAF", "RM"])
def test_baselines_match_oracle_satisfiable(method):
    matcher = get_matcher(method)
    for query, data in satisfiable_instances(seed=len(method) * 13, count=6):
        expected = ORACLE.match(query, data).embedding_set()
        got = matcher.match(query, data).embedding_set()
        assert got == expected


def test_all_methods_agree_pairwise_on_one_hard_instance():
    data = powerlaw_cluster_graph(60, 3, 0.4, num_labels=3, seed=99)
    query = generate_query(data, 9, "dense", seed=100)
    reference = None
    for method in ("GuP", "DAF", "GQL-G", "GQL-R", "RM", "Baseline", "VF2"):
        got = get_matcher(method).match(query, data).embedding_set()
        if reference is None:
            reference = got
        assert got == reference, method
