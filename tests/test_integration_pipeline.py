"""Integration: the full evaluation pipeline on a small grid.

dataset -> query sets -> every paper method -> harness statistics.
This mirrors exactly what the benchmark scripts do, at a tiny scale, so
a green run here means the benchmark suite can only fail on scale, not
on plumbing.
"""

import pytest

from repro.baselines.registry import PAPER_METHODS, get_matcher
from repro.bench.runner import BenchmarkScale, run_query_set
from repro.bench.stats import (
    average_time_with_timeouts,
    threshold_counts,
    total_recursions,
)
from repro.core.config import GuPConfig
from repro.core.engine import match
from repro.matching.limits import SearchLimits
from repro.workload.datasets import load_dataset
from repro.workload.querygen import QuerySetSpec, generate_query_set

SCALE = BenchmarkScale(
    max_embeddings=500,
    query_time_limit=2.0,
    subgroup_size=5,
    subgroup_budget=20.0,
    thresholds=(0.01, 0.1, 2.0),
)


@pytest.fixture(scope="module")
def workload():
    data = load_dataset("yeast", scale=0.6, seed=21)
    queries = generate_query_set(data, QuerySetSpec(8, "sparse"), count=6, seed=22)
    return data, queries


class TestFullPipeline:
    @pytest.mark.parametrize("method", PAPER_METHODS)
    def test_method_completes_set(self, method, workload):
        data, queries = workload
        result = run_query_set(
            get_matcher(method), data, queries, scale=SCALE, set_name="8S"
        )
        assert len(result.records) >= 1
        assert total_recursions(result) > 0
        counts = threshold_counts(
            result.records, SCALE.thresholds, SCALE.query_time_limit
        )
        assert counts[0.01] >= counts[0.1] >= counts[2.0]
        assert average_time_with_timeouts(result, SCALE.query_time_limit) >= 0

    def test_methods_agree_on_embedding_counts(self, workload):
        data, queries = workload
        limits = SearchLimits(max_embeddings=500, collect=False)
        for query in queries[:3]:
            counts = {
                m: get_matcher(m).match(query, data, limits).num_embeddings
                for m in PAPER_METHODS
            }
            assert len(set(counts.values())) == 1, counts

    def test_dense_set_runs(self):
        data = load_dataset("human", scale=0.4, seed=31)
        queries = generate_query_set(data, QuerySetSpec(8, "dense"), count=3, seed=32)
        result = run_query_set(get_matcher("GuP"), data, queries, scale=SCALE)
        assert result.records

    def test_ablation_grid_runs(self, workload):
        data, queries = workload
        limits = SearchLimits(max_embeddings=200, collect=False)
        configs = {
            "Baseline": GuPConfig.baseline(),
            "R": GuPConfig.reservation_only(),
            "R+NV": GuPConfig.r_nv(),
            "R+NV+NE": GuPConfig.r_nv_ne(),
            "All": GuPConfig.full(),
        }
        counts = {}
        for name, config in configs.items():
            counts[name] = sum(
                match(q, data, config=config, limits=limits).num_embeddings
                for q in queries[:3]
            )
        assert len(set(counts.values())) == 1, counts
