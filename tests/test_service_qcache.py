"""Query canonicalization and result-cache semantics.

Two contracts under test:

* :func:`repro.service.qcache.canonical_form` keys are equal *iff* the
  graphs are isomorphic (respecting labels) — including pairs that 1-WL
  color refinement alone cannot separate — and the witness permutation
  really is an isomorphism onto the canonical form.
* :class:`repro.service.qcache.QueryCache` serves capped requests
  byte-identically to a fresh engine run (the engine's truncation is
  prefix-exact, DESIGN.md §6): a complete entry serves any cap, a
  truncated entry serves only caps ≤ its own.
"""

import random

import pytest

from repro.core.engine import GuPEngine
from repro.graph.builder import GraphBuilder, complete_graph, cycle_graph
from repro.graph.generators import powerlaw_cluster_graph
from repro.matching.limits import SearchLimits
from repro.matching.result import TerminationStatus
from repro.matching.verify import is_embedding
from repro.service.qcache import QueryCache, canonical_form, refine_colors
from repro.workload.querygen import generate_query


def shuffled(graph, seed=0):
    perm = list(range(graph.num_vertices))
    random.Random(seed).shuffle(perm)
    return graph.relabeled(perm), perm


class TestCanonicalForm:
    def test_isomorphic_same_key(self):
        data = powerlaw_cluster_graph(60, 3, 0.3, num_labels=3, seed=5)
        query = generate_query(data, 8, "sparse", seed=6)
        for seed in range(5):
            relabeled, _ = shuffled(query, seed)
            assert canonical_form(relabeled).key == canonical_form(query).key

    def test_key_is_exact_for_small_queries(self):
        form = canonical_form(cycle_graph(["A"] * 6))
        assert form.exact

    def test_perm_is_isomorphism_witness(self):
        query = generate_query(
            powerlaw_cluster_graph(50, 3, 0.3, num_labels=2, seed=9),
            7, "dense", seed=10,
        )
        relabeled, _ = shuffled(query, 3)
        f1, f2 = canonical_form(query), canonical_form(relabeled)
        # Map query vertex -> canonical position -> relabeled vertex.
        pos = {u: p for p, u in enumerate(f1.perm)}
        iso = {u: f2.perm[pos[u]] for u in query.vertices()}
        assert sorted(iso.values()) == list(relabeled.vertices())
        for u in query.vertices():
            assert query.label(u) == relabeled.label(iso[u])
        for u, v in query.edges():
            assert relabeled.has_edge(iso[u], iso[v])

    def test_wl_indistinguishable_pair_separated(self):
        """C6 vs 2xC3 (uniform labels): same refinement coloring, not
        isomorphic — the backtracking step must separate them."""
        c6 = cycle_graph(["A"] * 6)
        b = GraphBuilder()
        b.add_vertices(["A"] * 6)
        b.add_edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
        two_triangles = b.build()
        assert len(set(refine_colors(c6))) == 1
        assert len(set(refine_colors(two_triangles))) == 1
        assert canonical_form(c6).key != canonical_form(two_triangles).key

    def test_labels_distinguish(self):
        assert (
            canonical_form(cycle_graph(["A", "A", "B"])).key
            != canonical_form(cycle_graph(["A", "B", "B"])).key
        )

    def test_extra_edge_distinguishes(self):
        path = GraphBuilder()
        path.add_vertices(["A"] * 4)
        path.add_edges([(0, 1), (1, 2), (2, 3)])
        cycle = cycle_graph(["A"] * 4)
        assert canonical_form(path.build()).key != canonical_form(cycle).key

    def test_budget_fallback_is_sound(self):
        """Past the node budget the key degrades to the exact encoding:
        identical graphs still share it, rotations may not — never a
        false positive."""
        ring = cycle_graph(["A"] * 8)
        form = canonical_form(ring, leaf_budget=1)
        assert not form.exact
        assert form.perm == tuple(range(8))
        assert canonical_form(ring, leaf_budget=1).key == form.key
        k7 = complete_graph(["A"] * 7)
        assert not canonical_form(k7, leaf_budget=10).exact

    def test_empty_and_singleton(self):
        empty = GraphBuilder().build()
        assert canonical_form(empty).perm == ()
        one = GraphBuilder()
        one.add_vertices(["X"])
        assert canonical_form(one.build()).exact


@pytest.fixture(scope="module")
def workload():
    data = powerlaw_cluster_graph(70, 3, 0.35, num_labels=3, seed=41)
    query = generate_query(data, 7, "sparse", seed=42)
    engine = GuPEngine(data)
    return data, query, engine


class TestQueryCacheCapSemantics:
    def store_full(self, engine, query):
        cache = QueryCache()
        limits = SearchLimits()
        full = engine.match(query, limits=limits)
        _, form = cache.lookup(query, limits)
        assert cache.store(form, limits, full)
        return cache, full

    def test_full_entry_serves_any_cap_prefix_exact(self, workload):
        _, query, engine = workload
        cache, full = self.store_full(engine, query)
        assert full.num_embeddings > 3
        for cap in (None, 0, 1, 2, full.num_embeddings,
                    full.num_embeddings + 5):
            limits = SearchLimits(max_embeddings=cap)
            direct = engine.match(query, limits=limits)
            served, _ = cache.lookup(query, limits)
            assert served is not None, f"cap {cap} should hit"
            assert served.embeddings == direct.embeddings
            assert served.num_embeddings == direct.num_embeddings
            assert served.status == direct.status

    def test_truncated_entry_serves_lower_caps_only(self, workload):
        _, query, engine = workload
        cache = QueryCache()
        limits3 = SearchLimits(max_embeddings=3)
        capped = engine.match(query, limits=limits3)
        assert capped.status is TerminationStatus.EMBEDDING_LIMIT
        _, form = cache.lookup(query, limits3)
        assert cache.store(form, limits3, capped)
        for cap in (0, 1, 2, 3):
            limits = SearchLimits(max_embeddings=cap)
            direct = engine.match(query, limits=limits)
            served, _ = cache.lookup(query, limits)
            assert served is not None
            assert served.embeddings == direct.embeddings
            assert served.num_embeddings == direct.num_embeddings
            assert served.status == direct.status
        for cap in (4, None):
            served, _ = cache.lookup(
                query, SearchLimits(max_embeddings=cap)
            )
            assert served is None, "higher caps must miss a truncated entry"

    def test_full_entry_replaces_truncated(self, workload):
        _, query, engine = workload
        cache = QueryCache()
        limits2 = SearchLimits(max_embeddings=2)
        _, form = cache.lookup(query, limits2)
        cache.store(form, limits2, engine.match(query, limits=limits2))
        assert cache.lookup(query, SearchLimits())[0] is None
        full_limits = SearchLimits()
        cache.store(form, full_limits, engine.match(query, limits=full_limits))
        served, _ = cache.lookup(query, SearchLimits())
        assert served is not None
        assert served.status is TerminationStatus.COMPLETE
        # The reverse direction must NOT downgrade: re-offering a
        # truncated run keeps the complete entry.
        cache.store(form, limits2, engine.match(query, limits=limits2))
        assert cache.lookup(query, SearchLimits())[0] is not None

    def test_count_only_served_from_full_entry(self, workload):
        _, query, engine = workload
        cache, full = self.store_full(engine, query)
        limits = SearchLimits(collect=False)
        direct = engine.match(query, limits=limits)
        served, _ = cache.lookup(query, limits)
        assert served is not None
        assert served.embeddings == []
        assert served.num_embeddings == direct.num_embeddings
        assert served.status == direct.status

    def test_timeout_results_never_cached(self, workload):
        _, query, engine = workload
        cache = QueryCache()
        limits = SearchLimits(max_recursions=1)
        result = engine.match(query, limits=limits)
        assert result.status is TerminationStatus.TIMEOUT
        _, form = cache.lookup(query, limits)
        assert not cache.store(form, limits, result)
        assert cache.counters["uncacheable"] == 1

    def test_isomorphic_query_served_translated(self, workload):
        data, query, engine = workload
        cache, full = self.store_full(engine, query)
        relabeled, _ = shuffled(query, seed=11)
        served, _ = cache.lookup(relabeled, SearchLimits())
        assert served is not None
        assert cache.counters["translated_hits"] == 1
        direct = engine.match(relabeled)
        assert served.num_embeddings == direct.num_embeddings
        assert served.embedding_set() == direct.embedding_set()
        for e in served.embeddings:
            assert is_embedding(relabeled, data, e)

    def test_isomorphic_capped_hit_is_valid_prefix(self, workload):
        """A capped translated hit returns cap-many correct, distinct
        embeddings drawn from the full set (the representative's prefix;
        order-identity to a direct run only holds for same-numbering
        repeats — DESIGN.md §7)."""
        data, query, engine = workload
        cache, full = self.store_full(engine, query)
        relabeled, _ = shuffled(query, seed=12)
        cap = 3
        served, _ = cache.lookup(relabeled, SearchLimits(max_embeddings=cap))
        assert served is not None
        assert served.num_embeddings == cap
        assert served.status is TerminationStatus.EMBEDDING_LIMIT
        assert len(set(served.embeddings)) == cap
        direct_full = engine.match(relabeled)
        for e in served.embeddings:
            assert is_embedding(relabeled, data, e)
            assert tuple(e) in direct_full.embedding_set()

    def test_lru_eviction(self, workload):
        data, _, engine = workload
        cache = QueryCache(max_entries=2)
        limits = SearchLimits(max_embeddings=5)
        queries = [
            generate_query(data, 5, "sparse", seed=100 + i) for i in range(3)
        ]
        for q in queries:
            _, form = cache.lookup(q, limits)
            cache.store(form, limits, engine.match(q, limits=limits))
        assert len(cache) == 2
        assert cache.counters["evictions"] >= 1
