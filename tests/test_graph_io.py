"""Unit tests for .graph format I/O."""

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.io import (
    GraphFormatError,
    graph_from_edge_list,
    load_graph,
    loads_graph,
    save_graph,
    saves_graph,
)

SAMPLE = """\
t 3 2
v 0 10 1
v 1 20 2
v 2 10 1
e 0 1
e 1 2
"""


class TestParsing:
    def test_loads_basic(self):
        g = loads_graph(SAMPLE)
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.labels == (10, 20, 10)
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_comments_and_blanks_ignored(self):
        text = "# comment\n\n% other\n" + SAMPLE
        assert loads_graph(text).num_vertices == 3

    def test_string_labels(self):
        text = "t 2 1\nv 0 foo 1\nv 1 bar 1\ne 0 1\n"
        g = loads_graph(text)
        assert g.labels == ("foo", "bar")

    def test_duplicate_edges_deduped(self):
        text = "t 2 1\nv 0 0 1\nv 1 0 1\ne 0 1\ne 1 0\n"
        assert loads_graph(text).num_edges == 1

    def test_strict_checks_counts(self):
        bad = SAMPLE.replace("t 3 2", "t 3 7")
        loads_graph(bad)  # lenient mode passes
        with pytest.raises(GraphFormatError, match="declares 7 edges"):
            loads_graph(bad, strict=True)

    def test_strict_checks_degrees(self):
        bad = SAMPLE.replace("v 1 20 2", "v 1 20 9")
        with pytest.raises(GraphFormatError, match="degree"):
            loads_graph(bad, strict=True)

    def test_rejects_noncontiguous_ids(self):
        text = "t 2 0\nv 0 0 0\nv 5 0 0\n"
        with pytest.raises(GraphFormatError, match="0 .. n-1"):
            loads_graph(text)

    def test_rejects_duplicate_vertex(self):
        text = "t 2 0\nv 0 0 0\nv 0 1 0\n"
        with pytest.raises(GraphFormatError, match="duplicate vertex"):
            loads_graph(text)

    def test_rejects_unknown_record(self):
        with pytest.raises(GraphFormatError, match="unknown record"):
            loads_graph("x 1 2\n")

    def test_rejects_dangling_edge(self):
        text = "t 1 1\nv 0 0 1\ne 0 3\n"
        with pytest.raises(GraphFormatError, match="unknown vertex"):
            loads_graph(text)


class TestRoundTrip:
    def test_saves_then_loads(self):
        g = loads_graph(SAMPLE)
        assert loads_graph(saves_graph(g)) == g

    def test_file_roundtrip(self, tmp_path):
        g = loads_graph(SAMPLE)
        path = tmp_path / "g.graph"
        save_graph(g, path)
        assert load_graph(path, strict=True) == g

    def test_saved_header_is_consistent(self):
        g = loads_graph(SAMPLE)
        first = saves_graph(g).splitlines()[0]
        assert first == "t 3 2"


class TestEdgeList:
    def test_default_labels(self):
        g = graph_from_edge_list([(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.labels == (0, 0, 0)

    def test_dict_labels_with_isolated(self):
        g = graph_from_edge_list([(0, 1)], labels={0: "A", 1: "B", 2: "C"})
        assert g.num_vertices == 3
        assert g.degree(2) == 0

    def test_list_labels_must_cover(self):
        with pytest.raises(ValueError):
            graph_from_edge_list([(0, 2)], labels=["A", "B"])
