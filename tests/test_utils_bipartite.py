"""Unit + property tests for bipartite matching."""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bipartite import has_saturating_matching, maximum_matching_size


class TestSaturating:
    def test_trivial(self):
        assert has_saturating_matching([], lambda l: [])

    def test_perfect(self):
        adj = {0: [10], 1: [11]}
        assert has_saturating_matching([0, 1], lambda l: adj[l])

    def test_needs_augmenting_path(self):
        # 0 prefers 10; 1 can only use 10 -> must re-route 0 to 11.
        adj = {0: [10, 11], 1: [10]}
        assert has_saturating_matching([0, 1], lambda l: adj[l])

    def test_impossible(self):
        adj = {0: [10], 1: [10]}
        assert not has_saturating_matching([0, 1], lambda l: adj[l])

    def test_isolated_left_vertex(self):
        adj = {0: [], 1: [10]}
        assert not has_saturating_matching([0, 1], lambda l: adj[l])


class TestMaximumSize:
    def test_counts(self):
        adj = {0: [10], 1: [10], 2: [11]}
        assert maximum_matching_size([0, 1, 2], lambda l: adj[l]) == 2


def _hall_oracle(left, adj):
    """Exhaustive Hall's-condition check (exponential, tiny inputs)."""
    for r in range(1, len(left) + 1):
        for subset in itertools.combinations(left, r):
            neighborhood = set()
            for l in subset:
                neighborhood.update(adj[l])
            if len(neighborhood) < len(subset):
                return False
    return True


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=5),
       st.integers(min_value=0, max_value=2**30))
def test_matches_halls_condition(nl, nr, seed):
    rng = random.Random(seed)
    left = list(range(nl))
    adj = {
        l: [r for r in range(nr) if rng.random() < 0.45] for l in left
    }
    assert has_saturating_matching(left, lambda l: adj[l]) == _hall_oracle(left, adj)
