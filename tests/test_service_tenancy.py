"""Multi-tenant admission control (DESIGN.md §13).

Three layers, matching the module split:

* :class:`TokenBucket` / :class:`TenantTable` — deterministic unit
  tests under an injectable fake clock: refill arithmetic, exact
  ``retry_after`` hints, quota decisions, tenant isolation.
* :class:`FairSlots` — the weighted deficit-round-robin gate, driven
  on a real event loop: weight-proportional grant order, priority
  order within one tenant, cancellation safety.
* Server integration — tenant-labeled sheds over the wire, the
  three-surface reconciliation (``stats`` / ``/metrics`` / reply
  fields) for ``repro_tenant_*`` counters, and the client honoring
  the server's ``retry_after`` hint.
"""

import asyncio
import json

import pytest

from repro.graph.builder import graph_from_adjacency
from repro.obs import parse_exposition
from repro.service.catalog import GraphCatalog
from repro.service.client import RetryPolicy, ServiceClient, ServiceOverloaded
from repro.service.faults import FaultPlan, FaultRule, InjectedCrash
from repro.service.server import ServerThread
from repro.service.tenancy import (
    DEFAULT_TENANT,
    FairSlots,
    TenancyError,
    TenantSpec,
    TenantTable,
    TokenBucket,
    tenant_from_spec,
    tenants_from_file,
    tenants_from_json,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def bipartite_world():
    data = graph_from_adjacency(
        ["A", "B", "A", "C", "D", "C"],
        [(0, 1), (1, 2), (3, 4), (4, 5)],
    )
    ab_query = graph_from_adjacency(["A", "B"], [(0, 1)])
    return data, ab_query


def serve_world(tmp_path, faults=None, **server_kwargs):
    data, ab_query = bipartite_world()
    root = tmp_path / "catalog"
    GraphCatalog(root).add("g", data)
    catalog = GraphCatalog(root)
    if faults is not None:
        server_kwargs["faults"] = faults
    return ServerThread(catalog, **server_kwargs), ab_query


class TestTokenBucket:
    def test_burst_then_exact_retry_after(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        assert bucket.try_take() == (True, 0.0)
        assert bucket.try_take() == (True, 0.0)
        ok, wait = bucket.try_take()
        assert not ok
        assert wait == pytest.approx(0.5)  # 1 token / (2 tokens/s)
        clock.advance(0.5)
        assert bucket.try_take() == (True, 0.0)

    def test_unlimited_when_rate_is_none(self):
        bucket = TokenBucket(rate=None, clock=FakeClock())
        for _ in range(1000):
            assert bucket.try_take() == (True, 0.0)

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        for _ in range(3):
            assert bucket.try_take()[0]
        clock.advance(3600.0)  # a long idle refills to burst, not more
        for _ in range(3):
            assert bucket.try_take()[0]
        assert not bucket.try_take()[0]

    def test_partial_refill_is_exact(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=1.0, clock=clock)
        assert bucket.try_take()[0]
        clock.advance(0.125)  # half a token back
        ok, wait = bucket.try_take()
        assert not ok
        assert wait == pytest.approx(0.125)

    def test_refill_fault_hook_fires(self):
        plan = FaultPlan([FaultRule("tenancy.bucket.refill", "crash")])
        bucket = TokenBucket(rate=1.0, clock=FakeClock(), faults=plan)
        with pytest.raises(InjectedCrash):
            bucket.try_take()


class TestTenantSpecValidation:
    @pytest.mark.parametrize("kwargs", [
        {"rate": 0.0},
        {"rate": -1.0},
        {"burst": 0.5},
        {"max_inflight": 0},
        {"weight": 0},
        {"max_workers": 0},
    ])
    def test_bad_field_raises(self, kwargs):
        with pytest.raises(TenancyError):
            TenantSpec("t", **kwargs)


class TestSpecParsing:
    def test_json_nested_shape(self):
        specs = tenants_from_json(json.dumps({
            "default": {"rate": 5, "weight": 1},
            "tenants": {"gold": {"weight": 4}, "free": {"rate": 0.5}},
        }))
        assert set(specs) == {"default", "gold", "free"}
        assert specs["default"].rate == 5.0
        assert specs["gold"].weight == 4
        assert specs["free"].rate == 0.5

    def test_json_flat_shape(self):
        specs = tenants_from_json(
            '{"a": {"max_inflight": 2}, "default": {"burst": 3}}'
        )
        assert specs["a"].max_inflight == 2
        assert specs["default"].burst == 3.0

    @pytest.mark.parametrize("text", [
        "not json",
        "[1, 2]",
        '{"t": {"bogus_field": 1}}',
        '{"t": {"rate": "fast"}}',
        '{"t": 42}',
        '{"tenants": [1]}',
    ])
    def test_bad_json_raises(self, text):
        with pytest.raises(TenancyError):
            tenants_from_json(text)

    def test_inline_spec(self):
        spec = tenant_from_spec("paid:rate=2.5,weight=4,max_workers=2")
        assert spec.name == "paid"
        assert spec.rate == 2.5
        assert spec.weight == 4
        assert spec.max_workers == 2
        assert tenant_from_spec("bare").rate is None  # name only is fine

    @pytest.mark.parametrize("text", [
        ":rate=1",
        "t:notkeyvalue",
        "t:rate",
        "t:speed=9",
    ])
    def test_bad_inline_spec_raises(self, text):
        with pytest.raises(TenancyError):
            tenant_from_spec(text)

    def test_file_round_trip_and_missing_file(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text('{"x": {"weight": 2}}', encoding="utf-8")
        assert tenants_from_file(path)["x"].weight == 2
        with pytest.raises(TenancyError, match="cannot read"):
            tenants_from_file(tmp_path / "missing.json")


class TestTenantTable:
    def test_default_tenant_for_legacy_clients(self):
        table = TenantTable(clock=FakeClock())
        state = table.resolve(None)
        assert state.spec.name == DEFAULT_TENANT
        assert table.resolve("") is state
        assert table.resolve("default") is state

    def test_unknown_tenants_are_isolated(self):
        # Unknown names inherit the default class but get private
        # buckets: one noisy unknown cannot spend another's tokens.
        clock = FakeClock()
        default = TenantSpec(DEFAULT_TENANT, rate=1.0, burst=1.0)
        table = TenantTable(default_spec=default, clock=clock)
        a, b = table.resolve("a"), table.resolve("b")
        assert a is not b
        assert a.spec.rate == 1.0
        assert table.admit(a) is None
        assert table.admit(a).reason == "rate"  # a exhausted its bucket
        assert table.admit(b) is None           # b still has its own

    def test_rate_rejection_carries_exact_hint(self):
        clock = FakeClock()
        table = TenantTable(
            [TenantSpec("t", rate=0.5, burst=1.0)], clock=clock
        )
        state = table.resolve("t")
        assert table.admit(state) is None
        rejection = table.admit(state)
        assert rejection.reason == "rate"
        assert rejection.retry_after == pytest.approx(2.0)

    def test_quota_rejection_uses_slot_hint(self):
        table = TenantTable(
            [TenantSpec("t", max_inflight=2)],
            clock=FakeClock(), slot_retry_after=0.125,
        )
        state = table.resolve("t")
        state.inflight = 2
        rejection = table.admit(state)
        assert rejection.reason == "quota"
        assert rejection.retry_after == 0.125
        state.inflight = 1
        assert table.admit(state) is None

    def test_on_create_fires_once_per_tenant(self):
        created = []
        table = TenantTable(clock=FakeClock(), on_create=lambda name, state:
                            created.append(name))
        table.resolve("x")
        table.resolve("x")
        table.resolve("y")
        assert created == ["x", "y"]

    def test_known_and_stats(self):
        table = TenantTable([TenantSpec("cfg")], clock=FakeClock())
        assert table.known() == ["cfg", "default"]
        assert table.stats() == {}  # no traffic yet
        table.resolve("cfg").counters.inc("queries")
        stats = table.stats()
        assert stats["cfg"]["queries"] == 1
        assert stats["cfg"]["inflight"] == 0
        assert stats["cfg"]["weight"] == 1


def run(coro):
    return asyncio.run(coro)


class TestFairSlots:
    def test_uncontended_fast_path(self):
        async def scenario():
            slots = FairSlots(2)
            await slots.acquire("a")
            await slots.acquire("b")
            assert slots.free == 0
            slots.release()
            assert slots.free == 1
            slots.release()
            assert slots.free == 2

        run(scenario())

    def test_weighted_deficit_round_robin_order(self):
        # Capacity 1; tenant a (weight 2) and b (weight 1) each queue 4
        # waiters.  DRR grants a two serves per rotation and b one, so
        # a's backlog drains twice as fast — and b is never starved.
        async def scenario():
            slots = FairSlots(1)
            order = []

            async def worker(tenant, i, weight):
                await slots.acquire(tenant, weight=weight)
                order.append(f"{tenant}{i}")
                await asyncio.sleep(0)
                slots.release()

            tasks = []
            for i in range(4):
                tasks.append(asyncio.ensure_future(worker("a", i, 2)))
            for i in range(4):
                tasks.append(asyncio.ensure_future(worker("b", i, 1)))
            await asyncio.gather(*tasks)
            return order

        order = run(scenario())
        assert len(order) == 8
        # a0 takes the free slot before anyone queues; thereafter the
        # 2:1 weighting shows in every prefix of the contended grants.
        assert order[0] == "a0"
        first_six = order[:6]
        assert sum(1 for g in first_six if g.startswith("a")) >= 4
        assert any(g.startswith("b") for g in order[:4]), \
            "weight 1 tenant must not be starved by weight 2 backlog"
        # Within one tenant the order is FIFO.
        for tenant in ("a", "b"):
            seq = [g for g in order if g.startswith(tenant)]
            assert seq == sorted(seq)

    def test_priority_order_within_one_tenant(self):
        async def scenario():
            slots = FairSlots(1)
            await slots.acquire("hold")  # saturate
            order = []

            async def worker(label, rank):
                await slots.acquire("t", rank=rank)
                order.append(label)
                slots.release()

            tasks = [
                asyncio.ensure_future(worker("low", 2)),
                asyncio.ensure_future(worker("normal", 1)),
                asyncio.ensure_future(worker("high", 0)),
            ]
            await asyncio.sleep(0)  # all three queued
            slots.release()
            await asyncio.gather(*tasks)
            return order

        assert run(scenario()) == ["high", "normal", "low"]

    def test_cancelled_waiter_is_discarded(self):
        async def scenario():
            slots = FairSlots(1)
            await slots.acquire("hold")
            task = asyncio.ensure_future(slots.acquire("t"))
            await asyncio.sleep(0)
            assert slots.pending("t") == 1
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            assert slots.pending() == 0
            slots.release()
            assert slots.free == 1  # nothing was leaked to the dead waiter

        run(scenario())

    def test_single_tenant_fifo_without_weights(self):
        async def scenario():
            slots = FairSlots(1)
            await slots.acquire("t")
            order = []

            async def worker(i):
                await slots.acquire("t")
                order.append(i)
                slots.release()

            tasks = [asyncio.ensure_future(worker(i)) for i in range(5)]
            await asyncio.sleep(0)
            slots.release()
            await asyncio.gather(*tasks)
            return order

        assert run(scenario()) == [0, 1, 2, 3, 4]


class TestServerTenantAdmission:
    def test_rate_limited_tenant_sheds_with_hint(self, tmp_path):
        tenants = TenantTable([TenantSpec("slow", rate=0.001, burst=1.0)])
        thread, query = serve_world(tmp_path, tenants=tenants)
        with thread:
            with ServiceClient(*thread.address, tenant="slow") as client:
                assert client.query(query, "g").num_embeddings == 2
                with pytest.raises(ServiceOverloaded) as info:
                    client.query(query, "g", cache=False)
                assert info.value.reason == "rate"
                assert info.value.retry_after is not None
                assert info.value.retry_after > 100  # ~1000s to next token
                stats = client.stats()
            slow = stats["tenants"]["slow"]
            assert slow["queries"] == 2
            assert slow["admitted"] == 1
            assert slow["served"] == 1
            assert slow["shed_rate"] == 1

    def test_quota_shed_when_tenant_at_max_inflight(self, tmp_path):
        tenants = TenantTable([TenantSpec("q", max_inflight=1)])
        thread, query = serve_world(tmp_path, tenants=tenants)
        with thread:
            state = thread.server.tenants.resolve("q")
            state.inflight = 1  # as if one query were mid-flight
            try:
                with ServiceClient(*thread.address, tenant="q") as client:
                    with pytest.raises(ServiceOverloaded) as info:
                        client.query(query, "g")
                    assert info.value.reason == "quota"
                    assert info.value.retry_after is not None
            finally:
                state.inflight = 0
            with ServiceClient(*thread.address, tenant="q") as client:
                assert client.query(query, "g").num_embeddings == 2

    def test_tenant_counters_reconcile_with_metrics(self, tmp_path):
        tenants = TenantTable([TenantSpec("slow", rate=0.001, burst=1.0)])
        thread, query = serve_world(tmp_path, tenants=tenants)
        with thread:
            with ServiceClient(*thread.address, tenant="slow") as client:
                client.query(query, "g")
                with pytest.raises(ServiceOverloaded):
                    client.query(query, "g", cache=False)
                stats = client.stats()
                exposition = parse_exposition(client.metrics())
            for counter in ("queries", "admitted", "served", "shed_rate"):
                key = (
                    f"repro_tenant_{counter}_total",
                    (("tenant", "slow"),),
                )
                assert exposition[key] == stats["tenants"]["slow"][counter]
            assert exposition[
                ("repro_tenant_inflight", (("tenant", "slow"),))
            ] == 0

    def test_unknown_tenants_isolated_over_the_wire(self, tmp_path):
        default = TenantSpec("default", rate=0.001, burst=1.0)
        thread, query = serve_world(
            tmp_path, tenants=TenantTable(default_spec=default)
        )
        with thread:
            with ServiceClient(*thread.address, tenant="a") as a, \
                    ServiceClient(*thread.address, tenant="b") as b:
                assert a.query(query, "g").num_embeddings == 2
                with pytest.raises(ServiceOverloaded):
                    a.query(query, "g", cache=False)
                # b inherits the same class but owns a private bucket.
                assert b.query(query, "g").num_embeddings == 2
                stats = b.stats()
            assert stats["tenants"]["a"]["shed_rate"] == 1
            assert stats["tenants"]["b"]["shed_rate"] == 0

    def test_bad_tenant_field_is_clean_error(self, tmp_path):
        thread, query = serve_world(tmp_path)
        with thread:
            with ServiceClient(*thread.address) as client:
                client.tenant = 42  # bypass the constructor's typing
                with pytest.raises(Exception, match="tenant"):
                    client.query(query, "g")
                client.tenant = None
                assert client.ping()  # connection survived

    def test_legacy_clients_land_on_default_tenant(self, tmp_path):
        thread, query = serve_world(tmp_path)
        with thread:
            with ServiceClient(*thread.address) as client:
                client.query(query, "g")
                stats = client.stats()
            assert stats["tenants"]["default"]["served"] == 1

    def test_max_workers_clamp_still_serves_exactly(self, tmp_path):
        tenants = TenantTable([TenantSpec("capped", max_workers=1)])
        thread, query = serve_world(tmp_path, tenants=tenants)
        with thread:
            with ServiceClient(*thread.address, tenant="capped") as client:
                reply = client.query(query, "g", workers=4, cache=False)
                assert reply.num_embeddings == 2
                stats = client.stats()
            # The clamp forced workers=1: no procpool dispatch happened.
            assert stats["server"]["procpool_dispatches"] == 0


class TestClientRetryAfterHint:
    def test_hint_replaces_exponential_backoff(self, tmp_path):
        plan = FaultPlan([FaultRule("server.admission", "overload", times=2)])
        thread, query = serve_world(
            tmp_path, faults=plan, retry_after_hint=0.015
        )
        sleeps = []
        retry = RetryPolicy(
            attempts=4, base_delay=5.0, multiplier=2.0, jitter=0.0,
            sleep=sleeps.append,
        )
        with thread:
            with ServiceClient(*thread.address, retry=retry) as client:
                reply = client.query(query, "g")
                assert reply.num_embeddings == 2
        # Without the hint this schedule would be [5.0, 10.0].
        assert sleeps == [0.015, 0.015]

    def test_hint_is_jittered_and_capped(self):
        retry = RetryPolicy(jitter=0.5, max_delay=1.0,
                            rng=__import__("random").Random(7))
        delay = retry.delay_for(0, retry_after=0.5)
        assert 0.5 <= delay <= 0.75
        assert retry.delay_for(0, retry_after=99.0) <= 1.5  # capped+jitter
        plain = RetryPolicy(jitter=0.0)
        assert plain.delay_for(3, retry_after=None) == plain.backoff(3)
