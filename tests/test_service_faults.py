"""Fault-injection suite: every recovery path, forced and verified.

The crash-point sweep is the core proof: for each catalog operation it
kills the process (``InjectedCrash``) at *every* declared persistence
point (:func:`repro.service.catalog.txn_points`), reopens the store
cold, and asserts the entry is **byte-identical** to either the state
before the operation or the state after an uninterrupted run — never
anything in between.  The point list is generated, so adding a hook to
the catalog automatically extends the sweep.

Alongside it: forged torn states (partial writes journaling could not
have produced), procpool worker-death differentials, client
retry/backoff with a recorded schedule, priority load shedding, slow
subscribers under both backpressure policies, ``healthz``, and the
clean-signal-shutdown regression for ``repro serve``.
"""

import errno
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.engine import GuPEngine
from repro.core.procpool import (
    POOL_COUNTERS,
    reset_pool_counters,
    run_partitioned,
)
from repro.dynamic.delta import GraphDelta
from repro.graph.builder import graph_from_adjacency
from repro.matching.limits import SearchLimits
from repro.service.catalog import (
    ARTIFACTS_FILE,
    GRAPH_FILE,
    JOURNAL_FILE,
    META_FILE,
    CatalogError,
    GraphCatalog,
    _sha256,
    txn_points,
)
from repro.service.client import (
    RetryPolicy,
    ServiceClient,
    ServiceError,
    ServiceOverloaded,
    ServiceUnavailable,
)
from repro.service.faults import (
    FaultPlan,
    FaultRule,
    InjectedCrash,
    crash_at,
)
from repro.service.server import MatchingServer, ServerThread

SRC = Path(__file__).resolve().parent.parent / "src"

DELTA = GraphDelta(add_edges=((0, 3),))


def bipartite_world():
    """Two label-disjoint components: A-B path and C-D path."""
    data = graph_from_adjacency(
        ["A", "B", "A", "C", "D", "C"],
        [(0, 1), (1, 2), (3, 4), (4, 5)],
    )
    ab_query = graph_from_adjacency(["A", "B"], [(0, 1)])
    return data, ab_query


def snapshot(directory: Path):
    """``{filename: bytes}`` for one entry directory ({} if absent)."""
    if not directory.exists():
        return {}
    return {
        child.name: child.read_bytes()
        for child in sorted(directory.iterdir())
        if child.is_file()
    }


def recover(root: Path, name: str):
    """Open the store cold and force recovery of ``name``.

    Returns the fresh catalog (entry may legitimately not exist)."""
    fresh = GraphCatalog(root)
    try:
        fresh.engine(name)
    except CatalogError:
        pass
    return fresh


def expected_side(op: str, point: str) -> str:
    """Which state a kill at ``point`` must recover to.

    The journal write is the pivot: before it is durable nothing may
    survive; from it on, everything must."""
    if op == "remove":
        return "old" if point == "catalog.remove.begin" else "new"
    if point == "catalog.txn.begin" or ".txn.tmp." in point:
        return "old"
    return "new"


def rollforward_expected(op: str, point: str) -> bool:
    """Whether recovery itself must do work (vs. a completed commit)."""
    if op == "remove":
        return point not in ("catalog.remove.begin", "catalog.remove.commit")
    return point == "catalog.txn.journal" or ".txn.rename." in point


class TestCrashPointSweep:
    """Kill at every declared point; recover to old-or-new, byte for byte."""

    @pytest.mark.parametrize("point", txn_points("add"))
    def test_add(self, tmp_path, point):
        data, _ = bipartite_world()
        # The uninterrupted run, for the "new"-side reference bytes.
        GraphCatalog(tmp_path / "ref").add("g", data)
        after = snapshot(tmp_path / "ref" / "g")

        root = tmp_path / "store"
        plan = crash_at(point)
        with pytest.raises(InjectedCrash):
            GraphCatalog(root, faults=plan).add("g", data)
        assert plan.fired() == 1, f"{point} was not on the executed path"

        fresh = recover(root, "g")
        state = snapshot(root / "g")
        if expected_side("add", point) == "old":
            assert state == {}
            with pytest.raises(CatalogError):
                fresh.info("g")
        else:
            assert state == after
            assert fresh.info("g")["epoch"] == 1
        assert fresh.counters["txn_rollbacks"] == 0
        assert fresh.counters["txn_rollforwards"] == (
            1 if rollforward_expected("add", point) else 0
        )

    @pytest.mark.parametrize("point", txn_points("update"))
    def test_update(self, tmp_path, point):
        data, _ = bipartite_world()
        root = tmp_path / "store"
        GraphCatalog(root).add("g", data)
        before = snapshot(root / "g")
        # Reference: the same update, uninterrupted, on a tree copy.
        shutil.copytree(root, tmp_path / "ref")
        GraphCatalog(tmp_path / "ref").update("g", DELTA)
        after = snapshot(tmp_path / "ref" / "g")
        assert before != after

        plan = crash_at(point)
        with pytest.raises(InjectedCrash):
            GraphCatalog(root, faults=plan).update("g", DELTA)
        assert plan.fired() == 1, f"{point} was not on the executed path"

        fresh = recover(root, "g")
        side = expected_side("update", point)
        assert snapshot(root / "g") == (before if side == "old" else after)
        info = fresh.info("g")
        engine = fresh.engine("g")
        if side == "old":
            assert info["epoch"] == 1
            assert not engine.data.has_edge(0, 3)
        else:
            assert info["epoch"] == 2
            assert engine.data.has_edge(0, 3)
        assert fresh.counters["artifact_rebuilds"] == 0
        assert fresh.counters["txn_rollbacks"] == 0
        assert fresh.counters["txn_rollforwards"] == (
            1 if rollforward_expected("update", point) else 0
        )

    @pytest.mark.parametrize("point", txn_points("remove"))
    def test_remove(self, tmp_path, point):
        data, _ = bipartite_world()
        root = tmp_path / "store"
        GraphCatalog(root).add("g", data)
        before = snapshot(root / "g")

        plan = crash_at(point)
        with pytest.raises(InjectedCrash):
            GraphCatalog(root, faults=plan).remove("g")
        assert plan.fired() == 1, f"{point} was not on the executed path"

        if expected_side("remove", point) == "new":
            # Even before recovery runs, a durable remove intent hides
            # the entry from listings.
            assert "g" not in GraphCatalog(root).names()
        fresh = recover(root, "g")
        if expected_side("remove", point) == "old":
            assert snapshot(root / "g") == before
            assert fresh.info("g")["epoch"] == 1
            assert fresh.counters["txn_rollforwards"] == 0
        else:
            assert not (root / "g").exists()
            with pytest.raises(CatalogError):
                fresh.info("g")
            assert fresh.counters["txn_rollforwards"] == (
                1 if rollforward_expected("remove", point) else 0
            )
        assert fresh.counters["txn_rollbacks"] == 0

    def test_every_declared_point_is_reached(self, tmp_path):
        """The sweep's point lists are exactly the executed hook path."""
        data, _ = bipartite_world()
        plan = FaultPlan()
        plan.record_history = True
        catalog = GraphCatalog(tmp_path, faults=plan)
        catalog.add("g", data)
        catalog.update("g", DELTA)
        catalog.remove("g")
        assert tuple(plan.history) == (
            txn_points("add") + txn_points("update") + txn_points("remove")
        )

    @pytest.mark.parametrize(
        "point", ["catalog.txn.tmp.artifacts.bin", "catalog.txn.journal"]
    )
    def test_disk_full_is_reported_and_recoverable(self, tmp_path, point):
        """ENOSPC surfaces as OSError; the store still recovers clean."""
        data, _ = bipartite_world()
        GraphCatalog(tmp_path).add("g", data)
        before = snapshot(tmp_path / "g")
        shutil.copytree(tmp_path / "g", tmp_path / "ref")
        GraphCatalog(tmp_path).update("g", DELTA)
        shutil.rmtree(tmp_path / "g")
        shutil.move(tmp_path / "ref", tmp_path / "g")

        plan = FaultPlan([FaultRule(point, "oserror")])
        with pytest.raises(OSError) as exc_info:
            GraphCatalog(tmp_path, faults=plan).update("g", DELTA)
        assert exc_info.value.errno == errno.ENOSPC

        fresh = recover(tmp_path, "g")
        side = expected_side("update", point)
        info = fresh.info("g")
        if side == "old":
            assert snapshot(tmp_path / "g") == before
            assert info["epoch"] == 1
        else:
            assert info["epoch"] == 2


class TestForgedTornStates:
    """Partial-write states the journal protocol cannot produce itself.

    Forged directly on disk (the pre-journaling failure modes); ``_load``
    must still converge on a consistent epoch, with the honest counters.
    """

    def setup_store(self, root):
        data, _ = bipartite_world()
        GraphCatalog(root).add("g", data)
        # Materialize the epoch-2 file contents via a real update on a
        # scratch copy, then restore the epoch-1 store.
        scratch = root.parent / "scratch"
        shutil.copytree(root, scratch)
        GraphCatalog(scratch).update("g", DELTA)
        new = snapshot(scratch / "g")
        shutil.rmtree(scratch)
        return new

    def test_graph_written_meta_stale(self, tmp_path):
        new = self.setup_store(tmp_path)
        (tmp_path / "g" / GRAPH_FILE).write_bytes(new[GRAPH_FILE])

        fresh = GraphCatalog(tmp_path)
        engine = fresh.engine("g")
        assert engine.data.has_edge(0, 3)  # the graph file wins
        assert fresh.counters["artifact_rebuilds"] == 1
        assert fresh.counters["txn_rollbacks"] == 0
        # No journal -> no transaction to attribute the graph to: the
        # stale sidecar's epoch is all the history we honestly have.
        assert fresh.info("g")["epoch"] == 1
        # The rebuild repaired the store: a second cold open is clean.
        again = GraphCatalog(tmp_path)
        again.engine("g")
        assert again.counters["artifact_loads"] == 1
        assert again.counters["artifact_rebuilds"] == 0

    def test_artifacts_torn(self, tmp_path):
        self.setup_store(tmp_path)
        blob = (tmp_path / "g" / ARTIFACTS_FILE).read_bytes()
        (tmp_path / "g" / ARTIFACTS_FILE).write_bytes(blob[: len(blob) // 2])

        fresh = GraphCatalog(tmp_path)
        fresh.engine("g")
        assert fresh.counters["artifact_rebuilds"] == 1
        assert fresh.info("g")["epoch"] == 1

    def test_journal_dangling_after_partial_rename(self, tmp_path):
        """Graph renamed to epoch 2, artifacts/meta old, tmps gone."""
        new = self.setup_store(tmp_path)
        (tmp_path / "g" / GRAPH_FILE).write_bytes(new[GRAPH_FILE])
        journal = {
            "op": "write",
            "epoch": 2,
            "files": {name: _sha256(new[name]) for name in new},
        }
        (tmp_path / "g" / JOURNAL_FILE).write_text(json.dumps(journal))

        fresh = GraphCatalog(tmp_path)
        engine = fresh.engine("g")
        assert engine.data.has_edge(0, 3)
        # Unrecoverable as a transaction (staged bytes missing), but the
        # journal proves the graph content *is* epoch 2 — the rebuilt
        # sidecar must say so instead of reviving epoch 1.
        assert fresh.counters["txn_rollbacks"] == 1
        assert fresh.counters["artifact_rebuilds"] == 1
        assert fresh.info("g")["epoch"] == 2
        assert not (tmp_path / "g" / JOURNAL_FILE).exists()

    def test_journal_corrupt(self, tmp_path):
        self.setup_store(tmp_path)
        (tmp_path / "g" / JOURNAL_FILE).write_text("{not json")

        fresh = GraphCatalog(tmp_path)
        fresh.engine("g")
        assert fresh.counters["txn_rollbacks"] == 1
        assert fresh.counters["artifact_loads"] == 1
        assert fresh.info("g")["epoch"] == 1
        assert not (tmp_path / "g" / JOURNAL_FILE).exists()

    def test_dangling_tmps_without_journal(self, tmp_path):
        new = self.setup_store(tmp_path)
        for name in new:
            (tmp_path / "g" / (name + ".tmp")).write_bytes(new[name])

        fresh = GraphCatalog(tmp_path)
        fresh.engine("g")
        # Pre-journal garbage: silently discarded, clean load, epoch 1.
        assert fresh.counters["artifact_loads"] == 1
        assert fresh.counters["artifact_rebuilds"] == 0
        assert fresh.counters["txn_rollbacks"] == 0
        assert fresh.info("g")["epoch"] == 1
        assert not list((tmp_path / "g").glob("*.tmp"))


@pytest.fixture(scope="module")
def pool_workload():
    """A path graph whose A-B-A query fans out into many root tasks."""
    n = 24
    data = graph_from_adjacency(
        ["A" if i % 2 == 0 else "B" for i in range(n)],
        [(i, i + 1) for i in range(n - 1)],
    )
    query = graph_from_adjacency(["A", "B", "A"], [(0, 1), (1, 2)])
    return data, query


class TestWorkerCrashRecovery:
    """A dying pool worker must not change a single embedding."""

    def run_pool(self, gcs, config, limits, faults=None):
        reset_pool_counters()
        return run_partitioned(gcs, config, limits, workers=2, faults=faults)

    @pytest.mark.parametrize("cap", [None, 5])
    def test_respawn_differential(self, pool_workload, cap):
        data, query = pool_workload
        engine = GuPEngine(data)
        gcs = engine.build(query)
        from repro.core.procpool import root_partition

        assert len(root_partition(gcs)) > 2  # the kill point must exist
        limits = SearchLimits(max_embeddings=cap)
        base_raw, base_status, base_stats = self.run_pool(
            gcs, engine.config, limits
        )
        assert POOL_COUNTERS["respawns"] == 0

        plan = FaultPlan([FaultRule("procpool.task.1", "die")])
        raw, status, stats = self.run_pool(
            gcs, engine.config, limits, faults=plan
        )
        assert POOL_COUNTERS["respawns"] == 1
        assert POOL_COUNTERS["tasks_rerun"] >= 1
        assert raw == base_raw
        assert status == base_status
        assert stats.embeddings_found == base_stats.embeddings_found


def serve_world(tmp_path, faults=None, **server_kwargs):
    """A small live server (tiny graph) with an injectable fault plan."""
    data, ab_query = bipartite_world()
    root = tmp_path / "catalog"
    GraphCatalog(root).add("g", data)
    catalog = GraphCatalog(root)
    if faults is not None:
        server_kwargs["faults"] = faults
    return ServerThread(catalog, **server_kwargs), ab_query


class TestClientRetryBackoff:
    def test_shed_request_retried_with_recorded_backoff(self, tmp_path):
        plan = FaultPlan([FaultRule("server.admission", "overload", times=2)])
        thread, query = serve_world(tmp_path, faults=plan)
        sleeps = []
        retry = RetryPolicy(
            attempts=4, base_delay=0.05, multiplier=2.0, jitter=0.0,
            sleep=sleeps.append,
        )
        with thread:
            with ServiceClient(*thread.address, retry=retry) as client:
                reply = client.query(query, "g")
                assert reply.num_embeddings == 2
                assert client.counters["retries"] == 2
                # Capacity sheds carry the server's retry_after hint
                # (0.05s default), which replaces the exponential
                # schedule — both waits are the hint, not 0.05/0.1.
                assert sleeps == [0.05, 0.05]
                stats = client.stats()
                assert stats["server"]["rejected"] == 2
                assert stats["server"]["shed_normal"] == 2

    def test_shed_without_policy_raises_overloaded(self, tmp_path):
        plan = FaultPlan([FaultRule("server.admission", "overload")])
        thread, query = serve_world(tmp_path, faults=plan)
        with thread:
            with ServiceClient(*thread.address) as client:
                with pytest.raises(ServiceOverloaded):
                    client.query(query, "g", priority="low")
                stats = client.stats()
                assert stats["server"]["shed_low"] == 1

    def test_refused_connection_reconnects(self, tmp_path):
        plan = FaultPlan([FaultRule("server.accept", "refuse", times=1)])
        thread, _ = serve_world(tmp_path, faults=plan)
        sleeps = []
        retry = RetryPolicy(attempts=3, jitter=0.0, sleep=sleeps.append)
        with thread:
            # The TCP connect succeeds; the handler refuses before
            # reading, so the first request sees EOF.
            with ServiceClient(*thread.address, retry=retry) as client:
                assert client.ping()
                assert client.counters["retries"] == 1
                assert client.counters["reconnects"] == 1
                assert len(sleeps) == 1
                stats = client.stats()
                assert stats["server"]["connections_refused"] == 1

    def test_delayed_accept_just_waits(self, tmp_path):
        plan = FaultPlan(
            [FaultRule("server.accept", "delay", seconds=0.3, times=1)]
        )
        thread, _ = serve_world(tmp_path, faults=plan)
        with thread:
            started = time.monotonic()
            with ServiceClient(*thread.address) as client:
                assert client.ping()
                assert time.monotonic() - started >= 0.25
                assert client.counters["retries"] == 0

    def test_mutating_ops_are_never_retried(self, tmp_path):
        plan = FaultPlan([FaultRule("server.accept", "refuse", times=None)])
        thread, _ = serve_world(tmp_path, faults=plan)
        retry = RetryPolicy(attempts=5, jitter=0.0, sleep=lambda _s: None)
        with thread:
            client = ServiceClient(*thread.address, retry=retry)
            try:
                with pytest.raises(ServiceUnavailable):
                    client.update("g", DELTA)
                assert client.counters["retries"] == 0
            finally:
                client.close()

    def test_connect_to_dead_port_raises_unavailable(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ServiceUnavailable):
            ServiceClient("127.0.0.1", port, timeout=5)

    def test_deadline_exceeded_before_send(self, tmp_path):
        thread, query = serve_world(tmp_path)
        with thread:
            with ServiceClient(*thread.address) as client:
                time.sleep(0.01)  # ensure the 1e-9 budget is gone
                with pytest.raises(ServiceError, match="deadline"):
                    client.query(query, "g", deadline=1e-9)

    def test_deadline_blocks_retry_that_cannot_finish(self, tmp_path):
        plan = FaultPlan([FaultRule("server.admission", "overload", times=5)])
        thread, query = serve_world(
            tmp_path, faults=plan, retry_after_hint=30.0
        )
        sleeps = []
        retry = RetryPolicy(
            attempts=5, base_delay=30.0, max_delay=60.0, jitter=0.0,
            sleep=sleeps.append,
        )
        with thread:
            with ServiceClient(*thread.address, retry=retry) as client:
                # The server's retry_after hint (30s) would overshoot
                # the 1s budget: fail now, not sleep past the deadline.
                with pytest.raises(ServiceOverloaded):
                    client.query(query, "g", deadline=1.0)
                assert sleeps == []
                assert client.counters["retries"] == 0

    def test_deadline_serves_within_budget(self, tmp_path):
        thread, query = serve_world(tmp_path)
        with thread:
            with ServiceClient(*thread.address) as client:
                reply = client.query(query, "g", deadline=30.0)
                assert reply.num_embeddings == 2
                assert reply.status == "complete"


class TestLoadShedding:
    def test_admission_thresholds(self, tmp_path):
        data, _ = bipartite_world()
        root = tmp_path / "catalog"
        GraphCatalog(root).add("g", data)
        server = MatchingServer(
            GraphCatalog(root), max_inflight=2, max_pending=3, high_headroom=1
        )
        assert server._admission_limit("low") == 2
        assert server._admission_limit("normal") == 5
        assert server._admission_limit("high") == 6

    def test_invalid_priority_rejected(self, tmp_path):
        thread, query = serve_world(tmp_path)
        with thread:
            with ServiceClient(*thread.address) as client:
                with pytest.raises(ServiceError, match="priority"):
                    client.query(query, "g", priority="urgent")

    def test_rejection_reply_names_priority(self, tmp_path):
        plan = FaultPlan([FaultRule("server.admission", "overload")])
        thread, query = serve_world(tmp_path, faults=plan)
        with thread:
            with ServiceClient(*thread.address) as client:
                with pytest.raises(ServiceOverloaded):
                    client.query(query, "g", priority="high")
                stats = client.stats()
                assert stats["server"]["shed_high"] == 1
                assert stats["server"]["shed_normal"] == 0


class TestSlowSubscriber:
    """Backpressure: a stalled subscriber never blocks the update path."""

    UPDATES = [
        GraphDelta(add_edges=((0, 3),)),
        GraphDelta(add_edges=((0, 4),)),
        GraphDelta(add_edges=((0, 5),)),
        GraphDelta(add_edges=((1, 3),)),
    ]
    FINAL = GraphDelta(add_edges=((1, 4),))

    def test_drop_policy_counts_losses(self, tmp_path):
        plan = FaultPlan(
            [FaultRule("server.subscriber.send", "delay", seconds=1.5,
                       times=1)]
        )
        thread, query = serve_world(
            tmp_path, faults=plan, subscriber_queue=1,
            subscriber_policy="drop",
        )
        with thread:
            sub_client = ServiceClient(*thread.address)
            updater = ServiceClient(*thread.address)
            try:
                sub_client.subscribe(query, "g")
                for delta in self.UPDATES:
                    updater.update("g", delta)
                # Past the injected stall; the queue has fully drained
                # by the time this event arrives, so it must carry the
                # cumulative loss marker and conservation must hold.
                time.sleep(2.0)
                updater.update("g", self.FINAL)
                delivered = lost = 0
                while delivered + lost < len(self.UPDATES) + 1:
                    event = sub_client.next_event(timeout=30)
                    delivered += 1
                    lost += int(event.get("lost", 0))
                assert lost >= 1  # a 1-slot queue cannot hold the burst
                stats = updater.stats()
                assert stats["server"]["events_dropped"] == lost
                assert stats["server"]["subscribers_dropped"] == 0
            finally:
                sub_client.close()
                updater.close()

    def test_disconnect_policy_drops_subscriber(self, tmp_path):
        plan = FaultPlan(
            [FaultRule("server.subscriber.send", "delay", seconds=1.5,
                       times=1)]
        )
        thread, query = serve_world(
            tmp_path, faults=plan, subscriber_queue=1,
            subscriber_policy="disconnect",
        )
        with thread:
            sub_client = ServiceClient(*thread.address)
            updater = ServiceClient(*thread.address)
            try:
                sub_client.subscribe(query, "g")
                for delta in self.UPDATES:
                    reply = updater.update("g", delta)
                assert reply.subscribers_notified == 0  # already gone
                stats = updater.stats()
                assert stats["server"]["subscribers_dropped"] == 1
                assert stats["server"]["events_dropped"] == 0
                with pytest.raises((ServiceError, OSError)):
                    while True:  # drain queued events, then hit EOF
                        sub_client.next_event(timeout=30)
            finally:
                sub_client.close()
                updater.close()


class TestHealthz:
    def test_reports_load_epochs_and_pool(self, tmp_path):
        thread, query = serve_world(tmp_path, max_inflight=2, max_pending=3)
        with thread:
            with ServiceClient(*thread.address) as client:
                health = client.healthz()
                assert health["status"] == "ok"
                assert health["active"] == 0
                assert health["capacity"] == 5
                assert health["entries"] == {"g": 1}
                assert health["subscriptions"] == 0
                assert set(health["pool"]) == set(POOL_COUNTERS)
                assert health["uptime_seconds"] >= 0.0

                client.update("g", DELTA)
                client.subscribe(query, "g")
                health = client.healthz()
                assert health["entries"] == {"g": 2}
                assert health["subscriptions"] == 1


class TestServerThreadStop:
    def test_stop_raises_when_thread_hangs(self, tmp_path):
        data, _ = bipartite_world()
        root = tmp_path / "catalog"
        GraphCatalog(root).add("g", data)
        thread = ServerThread(GraphCatalog(root))
        # Stand in a thread that ignores the shutdown request, the
        # exact bug class stop() must no longer swallow.
        hang = threading.Event()
        thread._thread = threading.Thread(target=hang.wait, daemon=True)
        thread._thread.start()
        try:
            with pytest.raises(RuntimeError, match="failed to stop"):
                thread.stop(timeout=0.2)
        finally:
            hang.set()

    def test_stop_clean_is_silent(self, tmp_path):
        thread, _ = serve_world(tmp_path)
        thread.start()
        thread.stop()  # must not raise


class TestServeSignalShutdown:
    """``repro serve`` exits 0 on SIGINT/SIGTERM via the orderly path."""

    @pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
    def test_clean_exit_on_signal(self, tmp_path, signum):
        data, _ = bipartite_world()
        root = tmp_path / "catalog"
        GraphCatalog(root).add("g", data)
        env = {**os.environ, "PYTHONPATH": str(SRC)}
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--root", str(root),
             "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = []

            def read_banner():
                banner.append(proc.stdout.readline())

            reader = threading.Thread(target=read_banner, daemon=True)
            reader.start()
            reader.join(timeout=60)
            assert banner and banner[0], "server printed no banner"
            port = int(banner[0].rsplit(":", 1)[1])
            with ServiceClient(port=port, timeout=60) as client:
                assert client.ping()  # fully up before we signal
            proc.send_signal(signum)
            stdout, stderr = proc.communicate(timeout=60)
            assert proc.returncode == 0, stderr
            assert "server stopped" in stdout
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
