"""The paper's worked examples, end to end (Fig. 1/2/3, Examples 3.x).

These tests pin the implementation to the paper's own numbers wherever
the text states them explicitly.
"""

import pytest

from repro.baselines.vf2 import Vf2Matcher
from repro.core.config import GuPConfig
from repro.core.engine import match
from repro.core.gcs import build_gcs
from repro.filtering.nlf import nlf_candidates
from repro.filtering.candidate_space import CandidateSpace
from repro.core.reservation import generate_reservation_guards
from repro.workload.paper_example import (
    PAPER_FULL_EMBEDDING,
    paper_example_data,
    paper_example_query,
)


@pytest.fixture(scope="module")
def graphs():
    return paper_example_query(), paper_example_data()


class TestFigure1:
    def test_sizes(self, graphs):
        q, d = graphs
        assert q.num_vertices == 5
        assert d.num_vertices == 14

    def test_unique_full_embedding(self, graphs):
        """Fig. 3: the search tree contains exactly one full embedding."""
        q, d = graphs
        result = Vf2Matcher().match(q, d)
        assert result.embeddings == [PAPER_FULL_EMBEDDING]

    def test_intro_example_structure(self, graphs):
        # §1's M maps u0..u4 to v1, v4, v7, v10, v0.
        q, d = graphs
        m = PAPER_FULL_EMBEDDING
        for a, b in q.edges():
            assert d.has_edge(m[a], m[b])


class TestSection31:
    def test_candidate_sets_label_only_except_v13(self, graphs):
        q, d = graphs
        c = nlf_candidates(q, d)
        assert c[0] == [0, 1]          # v13 removed by NLF
        assert c[1] == [2, 3, 4]
        assert c[2] == [5, 6, 7, 8]
        assert c[3] == [9, 10, 11, 12]
        assert c[4] == [0, 1, 13]


class TestExample34:
    def test_subembeddings_rooted_at_u1_v3(self, graphs):
        """Example 3.4 lists exactly four subembeddings, all hitting
        {v0, v1}."""
        from tests.test_core_reservation import rooted_subembeddings

        q, d = graphs
        cs = CandidateSpace(q, d, nlf_candidates(q, d))
        subs = rooted_subembeddings(cs, 1, 3)
        as_sets = sorted(tuple(sorted(s.items())) for s in subs)
        expected = sorted(
            tuple(sorted(s.items()))
            for s in [
                {1: 3, 2: 5, 3: 9, 4: 0},
                {1: 3, 2: 7, 3: 10, 4: 0},
                {1: 3, 2: 8, 3: 11, 4: 1},
                {1: 3, 2: 8, 3: 12, 4: 1},
            ]
        )
        assert as_sets == expected
        for s in subs:
            assert {0, 1} & set(s.values())


class TestExample313:
    def test_reservation_guards(self, graphs):
        q, d = graphs
        cs = CandidateSpace(q, d, nlf_candidates(q, d))
        R = generate_reservation_guards(cs, size_limit=3)
        assert R[(4, 0)] == frozenset({0})
        assert R[(4, 13)] == frozenset({13})
        assert R[(3, 9)] == frozenset({0})
        assert R[(2, 5)] == frozenset({0})


class TestExample320:
    def test_local_candidates_after_u0(self, graphs):
        q, d = graphs
        c = nlf_candidates(q, d)
        nbr_v0 = d.neighbor_set(0)
        assert [v for v in c[2] if v in nbr_v0] == [5, 6, 7]
        # u1's assignment (v3) does not shrink it further.
        nbr_v3 = d.neighbor_set(3)
        assert [v for v in c[2] if v in nbr_v0 and v in nbr_v3] == [5, 6, 7]


class TestExample324:
    def test_no_candidate_conflict(self, graphs):
        q, d = graphs
        c = nlf_candidates(q, d)
        common = (
            set(d.neighbor_set(6)) & set(d.neighbor_set(11)) & set(c[4])
        )
        assert common == set()


class TestGuPOnExample:
    @pytest.mark.parametrize(
        "config",
        [
            GuPConfig.full(),
            GuPConfig.baseline(),
            GuPConfig.reservation_only(),
            GuPConfig.r_nv(),
            GuPConfig.r_nv_ne(),
        ],
        ids=["All", "baseline", "R", "R+NV", "R+NV+NE"],
    )
    def test_every_config_finds_the_unique_embedding(self, graphs, config):
        q, d = graphs
        result = match(q, d, config=config)
        assert result.embeddings == [PAPER_FULL_EMBEDDING]

    def test_guards_prune_relative_to_baseline(self, graphs):
        """The shaded-node pruning of Fig. 3: GuP explores less."""
        q, d = graphs
        full = match(q, d, config=GuPConfig.full())
        base = match(q, d, config=GuPConfig.baseline())
        assert full.stats.recursions <= base.stats.recursions
        assert full.stats.futile_recursions <= base.stats.futile_recursions
