"""Property tests for the workload generators."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.algorithms import is_connected
from repro.graph.generators import random_connected_graph
from repro.workload.querygen import (
    SPARSE_THRESHOLD,
    _sparsify,
    classify_density,
    generate_query,
)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**30),
    size=st.integers(min_value=2, max_value=10),
)
def test_generated_queries_are_connected_subgraph_patterns(seed, size):
    data = random_connected_graph(80, 200, num_labels=3, seed=seed)
    query = generate_query(data, size, "sparse", seed=seed)
    assert query.num_vertices == size
    assert is_connected(query)
    assert classify_density(query) in ("sparse", "dense")
    # Every query label exists in the data graph (walk extraction).
    assert set(query.labels) <= set(data.labels)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**30),
    n=st.integers(min_value=2, max_value=12),
    extra=st.integers(min_value=0, max_value=25),
)
def test_sparsify_keeps_connectivity_and_density(seed, n, extra):
    graph = random_connected_graph(n, n - 1 + extra, num_labels=2, seed=seed)
    rng = random.Random(seed)
    sparse = _sparsify(graph, rng, SPARSE_THRESHOLD - 0.01)
    assert sparse.num_vertices == graph.num_vertices
    assert is_connected(sparse)
    # Result is a subgraph of the input.
    for u, v in sparse.edges():
        assert graph.has_edge(u, v)
    assert sparse.labels == graph.labels


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**30))
def test_generate_query_deterministic(seed):
    data = random_connected_graph(60, 140, num_labels=3, seed=7)
    a = generate_query(data, 6, "sparse", seed=seed)
    b = generate_query(data, 6, "sparse", seed=seed)
    assert a == b
