"""Unit tests for embedding verification (Definition 2.1)."""

import pytest

from repro.graph.builder import GraphBuilder, cycle_graph
from repro.matching.verify import (
    assert_all_embeddings_valid,
    constraint_violations,
    is_embedding,
    is_partial_embedding,
)


@pytest.fixture
def pair():
    query = cycle_graph(["A", "B", "C"])
    b = GraphBuilder()
    b.add_vertices(["A", "B", "C", "A"])
    b.add_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
    return query, b.build()


class TestFullEmbedding:
    def test_valid(self, pair):
        q, d = pair
        assert is_embedding(q, d, (0, 1, 2))

    def test_wrong_label_reported(self, pair):
        q, d = pair
        problems = constraint_violations(q, d, (1, 0, 2))
        assert any("label" in p for p in problems)

    def test_adjacency_violation(self, pair):
        q, d = pair
        # v3 has label A but lacks the edge to v1.
        problems = constraint_violations(q, d, (3, 1, 2))
        assert any("adjacency" in p for p in problems)

    def test_injectivity_violation(self):
        q = cycle_graph(["A", "A", "A"])
        b = GraphBuilder()
        b.add_vertices(["A", "A", "A"])
        b.add_edges([(0, 1), (1, 2), (2, 0)])
        d = b.build()
        problems = constraint_violations(q, d, (0, 1, 0))
        assert any("injectivity" in p for p in problems)

    def test_length_mismatch(self, pair):
        q, d = pair
        assert constraint_violations(q, d, (0, 1)) != []

    def test_out_of_range_vertex(self, pair):
        q, d = pair
        assert constraint_violations(q, d, (0, 1, 99)) != []


class TestPartialEmbedding:
    def test_prefixes_of_valid(self, pair):
        q, d = pair
        for k in range(4):
            assert is_partial_embedding(q, d, (0, 1, 2)[:k])

    def test_detects_backward_edge_violation(self, pair):
        q, d = pair
        assert not is_partial_embedding(q, d, (0, 1, 3))  # v3 not adj v0? v3-v0 missing

    def test_detects_duplicate(self, pair):
        q, d = pair
        assert not is_partial_embedding(q, d, (0, 0))

    def test_too_long(self, pair):
        q, d = pair
        assert not is_partial_embedding(q, d, (0, 1, 2, 3))


class TestAssertHelper:
    def test_passes_on_valid(self, pair):
        q, d = pair
        assert_all_embeddings_valid(q, d, [(0, 1, 2)])

    def test_raises_with_details(self, pair):
        q, d = pair
        with pytest.raises(AssertionError, match="invalid embedding"):
            assert_all_embeddings_valid(q, d, [(0, 1, 2), (1, 0, 2)])
